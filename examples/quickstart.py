#!/usr/bin/env python
"""Quickstart: build a small synthetic internet and run SquatPhi end to end.

Covers the whole paper pipeline in one script: squatting detection over a
DNS snapshot, a two-profile crawl, ground-truth collection from a simulated
PhishTank feed, classifier training with 10-fold CV, in-the-wild detection,
verification, and the evasion summary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PipelineConfig, SquatPhi, build_world, tiny_config
from repro.analysis import measure_evasion
from repro.analysis.figures import squat_type_histogram, top_targeted_brands
from repro.analysis.render import bar_chart, table


def main() -> None:
    print("Building a tiny synthetic internet (seed 1803)...")
    world = build_world(tiny_config())
    print(f"  DNS records:      {len(world.zone):>6}")
    print(f"  hosted sites:     {len(world.host):>6}")
    print(f"  planted phishing: {len(world.phishing_sites):>6}")
    print()

    pipeline = SquatPhi(world, PipelineConfig(cv_folds=5, rf_trees=15))

    print("Stage 1 - squatting detection over the DNS snapshot")
    matches = pipeline.detect_squatting()
    print(bar_chart(squat_type_histogram(matches),
                    title=f"{len(matches)} squatting domains by type"))
    print()

    print("Stage 2-5 - crawl, ground truth, training, wild detection")
    result = pipeline.run(follow_up_snapshots=False)
    print(table(
        ["model", "FP", "FN", "AUC", "ACC"],
        [
            [name, f"{r.false_positive_rate:.3f}", f"{r.false_negative_rate:.3f}",
             f"{r.auc:.3f}", f"{r.accuracy:.3f}"]
            for name, r in result.cv_reports.items()
        ],
        title="classifier cross-validation (Table 7 shape)",
    ))
    print()
    print(f"flagged pages:    {len(result.flagged)}")
    print(f"verified domains: {len(result.verified)} "
          f"(world planted {len(world.phishing_sites)})")
    print()

    print("Top targeted brands (Fig 13 shape):")
    for brand, web, mobile in top_targeted_brands(result.verified, n=8):
        print(f"  {brand:<12} web={web:<3} mobile={mobile}")
    print()

    squat_evasion = measure_evasion(result.evasion_squatting, "squatting")
    print("Evasion of verified squatting phish (Table 11 shape):")
    print(f"  layout distance {squat_evasion.layout_mean:.1f} "
          f"± {squat_evasion.layout_std:.1f}")
    print(f"  string obfuscated {100 * squat_evasion.string_rate:.0f}%")
    print(f"  code obfuscated   {100 * squat_evasion.code_rate:.0f}%")


if __name__ == "__main__":
    main()
