#!/usr/bin/env python
"""Offline snapshot workflow: write an ActiveDNS-style dump, scan it later.

The paper consumed a 224M-record ActiveDNS snapshot file.  This example
shows the file-based workflow a downstream user would follow with their own
zone data:

1. export a synthetic world's DNS records to an ActiveDNS-style TSV dump;
2. stream-load the dump into an indexed zone store (as if it were foreign
   data);
3. scan it for squats of a chosen brand list and print the per-type and
   per-brand breakdown.

Run:  python examples/dns_snapshot_scan.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import build_world, tiny_config
from repro.analysis.render import bar_chart, table
from repro.dns.activedns import load_snapshot, write_snapshot
from repro.squatting.detector import SquattingDetector


def main() -> None:
    world = build_world(tiny_config())

    with tempfile.TemporaryDirectory() as tmp:
        dump = Path(tmp) / "activedns-snapshot.tsv.gz"
        count = write_snapshot(iter(world.zone), dump)
        size_kb = dump.stat().st_size / 1024
        print(f"wrote {count} records to {dump.name} ({size_kb:.0f} KiB gzip)")

        # pretend this is someone else's dump: re-load from disk
        zone = load_snapshot(dump)
        print(f"re-loaded: {zone.stats()}\n")

        detector = SquattingDetector(world.catalog)
        matches = detector.scan(zone)

        print(bar_chart(
            {t.value: c for t, c in detector.scan_counts(zone).items()},
            title=f"{len(matches)} squatting domains by type (Fig 2 shape)",
        ))
        print()

        top = Counter(m.brand for m in matches).most_common(8)
        print(table(
            ["brand", "squat domains", "percent"],
            [[brand, count, f"{100 * count / len(matches):.1f}%"]
             for brand, count in top],
            title="brands attracting the most squats (Fig 4 shape)",
        ))
        print()

        examples = [m for m in matches if m.brand == "facebook"][:8]
        print(table(
            ["domain", "type", "evidence"],
            [[m.domain, m.squat_type.value, m.detail or ""] for m in examples],
            title="facebook squat examples (Table 1 shape)",
        ))


if __name__ == "__main__":
    main()
