#!/usr/bin/env python
"""Single-brand squatting monitor (the §7 deployment scenario).

The paper suggests individual online services run their own dedicated
scanner: watch newly-registered domains for squats of *their* brand, crawl
the candidates, classify, and hand suspicious hits to reviewers.  This
example runs that whole loop with the library APIs:

1. train a SquatPhi pipeline once on the PhishTank ground truth;
2. start a :class:`~repro.core.monitor.BrandMonitor` for PayPal and
   Facebook, baselined on today's DNS snapshot;
3. feed it two "daily" snapshots containing fresh registrations (including
   a live phishing domain the world already hosts);
4. push the phishing-scored alerts through a crowdsourced
   :class:`~repro.core.review.ReviewQueue` for confirmation.

Run:  python examples/brand_monitoring.py
"""

from __future__ import annotations

from repro import PipelineConfig, SquatPhi, build_world, tiny_config
from repro.analysis.render import table
from repro.core.monitor import BrandMonitor
from repro.core.review import ReviewQueue, default_crowd
from repro.dns.zone import ZoneStore

WATCHED = ["paypal", "facebook"]


def main() -> None:
    world = build_world(tiny_config())
    print(f"Watching brands: {', '.join(WATCHED)}")

    print("\nTraining the phishing classifier on PhishTank ground truth ...")
    pipeline = SquatPhi(world, PipelineConfig(cv_folds=4, rf_trees=15))
    matches = pipeline.detect_squatting()
    pipeline.train(pipeline.collect_ground_truth(matches), evaluate_all=False)

    monitor = BrandMonitor(pipeline, brands=WATCHED)
    known = monitor.baseline(world.zone)
    print(f"baseline: {known} registered domains on day 0")

    # --- day 1: speculator registrations -------------------------------
    day1 = ZoneStore(iter(world.zone))
    for domain in ("paypal-wallet-help.com", "secure-paypal.tk",
                   "unrelated-newsite.org"):
        day1.add_name(domain, ip="203.0.113.7", source="new-reg")
    alerts = monitor.observe(day1)
    print(f"\nday 1: {len(alerts)} new squat(s)")

    # --- day 2: an attacker "registers" a domain the world hosts -------
    day2 = ZoneStore(iter(day1))
    live_phish = [d for d in world.phishing_domains()
                  if world.squat_truth[d][0] in WATCHED]
    for domain in live_phish:
        monitor._known_domains.discard(domain)   # pretend it is brand new
    day2.add_name("paypals-billing.net", ip="203.0.113.9", source="new-reg")
    day2_alerts = monitor.observe(day2)
    print(f"day 2: {len(day2_alerts)} new squat(s), "
          f"{len(monitor.alerts)} alerts total")

    print()
    print(table(
        ["domain", "brand", "type", "live", "score", "verdict"],
        [[a.domain, a.brand, a.squat_type, a.live,
          f"{a.score:.2f}" if a.score is not None else "-",
          "PHISHING" if a.is_phishing else "watch"]
         for a in monitor.alerts],
        title="monitor alert log",
    ))

    # --- crowd review of the phishing-scored alerts ---------------------
    queue = ReviewQueue(default_crowd(size=9), votes_per_item=3)
    for alert in monitor.phishing_alerts():
        queue.submit(alert.domain, alert.brand,
                     truth=world.label_of(alert.domain) == "phishing")
    stats = queue.process()
    print(f"\ncrowd review: {stats.items} items, {stats.votes_cast} votes, "
          f"{stats.confirmed} confirmed, accuracy {stats.accuracy:.0%}")
    for domain in queue.confirmed_domains():
        print(f"  CONFIRMED {domain}")


if __name__ == "__main__":
    main()
