#!/usr/bin/env python
"""Evasion case study: how obfuscated phishing defeats classic detectors.

Reproduces §4.2's measurement logic on concrete pages and shows why the
OCR-based features survive where HTML keyword matching fails:

1. build one phishing page per evasion family (layout / string / code);
2. run the three evasion tests against each;
3. show what a keyword matcher sees vs what the OCR pipeline sees;
4. render the string-obfuscated page as ASCII art (a Fig 14-style case).

Run:  python examples/evasion_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.evasion import measure_page
from repro.brands import Brand
from repro.features.extraction import FeatureExtractor
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
)
from repro.phishworld.sites import brand_original_page
from repro.web.html import parse_html
from repro.web.screenshot import render_page, to_ascii_art

BRAND = Brand(name="paypal", domain="paypal.com", sensitivity="payment")


def build_variant(name: str, evasion: EvasionProfile, variant: int = 0):
    builder = PhishingPageBuilder(np.random.default_rng(7))
    spec = PhishingPageSpec(brand=BRAND, theme="login", evasion=evasion,
                            layout_variant=variant)
    page = builder.build(spec)
    return name, page


def main() -> None:
    original = brand_original_page(BRAND)
    original_pixels = render_page(parse_html(original.to_html())).pixels

    variants = [
        build_variant("no evasion", EvasionProfile()),
        build_variant("layout obfuscation", EvasionProfile(layout=True), variant=5),
        build_variant("string obfuscation", EvasionProfile(string=True)),
        build_variant("code obfuscation", EvasionProfile(code=True)),
        build_variant("everything", EvasionProfile(layout=True, string=True,
                                                   code=True), variant=3),
    ]

    extractor = FeatureExtractor(extra_lexicon=[BRAND.name])

    print(f"target brand: {BRAND.name} ({BRAND.domain})\n")
    header = f"{'variant':<22} {'layout-dist':>11} {'string-obf':>10} {'code-obf':>9}"
    print(header)
    print("-" * len(header))
    for name, page in variants:
        html = page.to_html()
        pixels = render_page(parse_html(html)).pixels
        measurement = measure_page("example.test", BRAND.name, html,
                                   pixels, original_pixels)
        print(f"{name:<22} {measurement.layout_distance:>11} "
              f"{str(measurement.string_obfuscated):>10} "
              f"{str(measurement.code_obfuscated):>9}")

    # --- what each detector family sees on the string-obfuscated page ---
    _, hidden_page = build_variant("string obfuscation", EvasionProfile(string=True))
    html = hidden_page.to_html()
    pixels = render_page(parse_html(html)).pixels
    features = extractor.extract(html, pixels)

    print("\nstring-obfuscated page, as seen by each feature family:")
    print(f"  HTML keyword matcher sees brand name: "
          f"{BRAND.name in features.lexical_tokens}")
    print(f"  OCR on the screenshot sees brand name: "
          f"{BRAND.name in features.ocr_tokens}")
    print(f"  form features: forms={features.form_count} "
          f"password_inputs={features.password_input_count}")

    print("\nscreenshot of the string-obfuscated page (ASCII rendering):")
    shot = render_page(parse_html(html))
    print(to_ascii_art(shot, max_width=90))


if __name__ == "__main__":
    main()
