#!/usr/bin/env python
"""Reproduce every exhibit in one run and archive a JSON report.

This is the long-form driver behind EXPERIMENTS.md: builds a world, runs
the full SquatPhi pipeline (all four weekly snapshots), prints each exhibit,
and saves the structured results to ``squatphi_report.json``.

Scale is configurable; the default is small enough for a laptop coffee
break.  Pass ``--scale bench`` for the benchmark-suite scale.

Run:  python examples/reproduce_all.py [--scale tiny|bench] [--out report.json]
"""

from __future__ import annotations

import argparse
import time

from repro import PipelineConfig, SquatPhi, build_world
from repro.analysis import measure_evasion
from repro.analysis.figures import (
    brand_accumulation_curve,
    phish_squat_type_histogram,
    squat_type_histogram,
    top_brands_by_count,
    top_targeted_brands,
)
from repro.analysis.render import bar_chart, table
from repro.analysis.tables import (
    blacklist_coverage,
    crawl_stats,
    ground_truth_decay,
    wild_detection_rows,
)
from repro.core.reporting import build_report
from repro.phishworld.world import WorldConfig, tiny_config

SCALES = {
    "tiny": tiny_config(),
    "bench": WorldConfig(n_organic_domains=2500, n_squat_domains=2500,
                         n_phish_domains=150, phishtank_reports=700),
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    parser.add_argument("--out", default="squatphi_report.json")
    args = parser.parse_args()

    started = time.time()
    print(f"building the '{args.scale}' world ...")
    world = build_world(SCALES[args.scale])
    pipeline = SquatPhi(world, PipelineConfig())
    print("running the full pipeline (4 snapshots) ...")
    result = pipeline.run(follow_up_snapshots=True)
    print(f"pipeline done in {time.time() - started:.0f}s\n")

    # --- Fig 2-4: the squatting landscape -----------------------------
    print(bar_chart(squat_type_histogram(result.squat_matches),
                    title="Fig 2 - squatting domains by type"))
    curve = brand_accumulation_curve(result.squat_matches)
    print(f"\nFig 3 - top-20 brands cover {curve[19]:.1f}% of squats")
    print(table(["brand", "count", "%"],
                [[b, c, f"{p:.2f}"] for b, c, p in
                 top_brands_by_count(result.squat_matches, 5)],
                title="\nFig 4 - top squatted brands"))

    # --- Table 2: crawling ---------------------------------------------
    rows = crawl_stats(result.crawl_snapshots[0], result.squat_matches,
                       world.catalog)
    print(table(["profile", "live", "no-redir", "original", "market", "other"],
                [[r.profile, r.live_domains, r.no_redirect,
                  r.redirect_original, r.redirect_market, r.redirect_other]
                 for r in rows],
                title="\nTable 2 - crawl statistics"))

    # --- Table 5 / Table 7 ---------------------------------------------
    print(table(["brand", "URLs", "valid"],
                [[r.brand, r.reported_urls, r.valid_phishing]
                 for r in ground_truth_decay(world.phishtank)],
                title="\nTable 5 - PhishTank ground-truth decay"))
    print(table(["model", "FP", "FN", "AUC", "ACC"],
                [[n, f"{r.false_positive_rate:.3f}",
                  f"{r.false_negative_rate:.3f}", f"{r.auc:.3f}",
                  f"{r.accuracy:.3f}"] for n, r in result.cv_reports.items()],
                title="\nTable 7 - classifier cross-validation"))

    # --- Table 8 / Fig 12-13 --------------------------------------------
    print(table(["population", "flagged", "confirmed", "brands"],
                [[r.population, r.classified_phishing, r.confirmed,
                  r.related_brands]
                 for r in wild_detection_rows(result, len(result.squat_matches))],
                title="\nTable 8 - in-the-wild detection"))
    print(bar_chart(phish_squat_type_histogram(result.verified),
                    title="\nFig 12 - verified phishing by squat type"))
    print(table(["brand", "web", "mobile"],
                [[b, w, m] for b, w, m in
                 top_targeted_brands(result.verified, 10)],
                title="\nFig 13 - top targeted brands"))

    # --- Table 11 / 12 ----------------------------------------------------
    squat_summary = measure_evasion(result.evasion_squatting, "squatting")
    reported_summary = measure_evasion(result.evasion_reported, "non-squatting")
    print(table(["population", "layout", "string", "code"],
                [[s.population,
                  f"{s.layout_mean:.1f}±{s.layout_std:.1f}",
                  f"{100 * s.string_rate:.0f}%",
                  f"{100 * s.code_rate:.0f}%"]
                 for s in (squat_summary, reported_summary)],
                title="\nTable 11 - evasion comparison"))
    print(table(["service", "detected", "rate"],
                [[r.service, r.detected, f"{100 * r.rate:.1f}%"]
                 for r in blacklist_coverage(world.blacklists,
                                             result.verified_domains())],
                title="\nTable 12 - blacklist coverage"))

    report = build_report(result, world)
    report.save(args.out)
    print(f"\nstructured report written to {args.out}")


if __name__ == "__main__":
    main()
