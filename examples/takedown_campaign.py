#!/usr/bin/env python
"""Abuse-reporting campaign: the operational tail of the measurement (§7).

After verifying 1,175 squatting-phishing domains, the paper reported the
1,015 still-online ones to Google Safe Browsing — manually, one by one,
through rate limits and CAPTCHAs.  This example runs that campaign against
the simulated portal and reports what a deployment team actually faces:
wall-clock cost, CAPTCHA churn, and how much of the list is actually taken
down a month later.

Run:  python examples/takedown_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import build_world, tiny_config
from repro.analysis.render import table
from repro.phishworld.takedown import ReportingCampaign, SafeBrowsingPortal


def main() -> None:
    world = build_world(tiny_config())
    targets = [f"http://{domain}/" for domain in world.phishing_domains()]
    print(f"{len(targets)} verified squatting-phishing URLs to report\n")

    portal = SafeBrowsingPortal(
        np.random.default_rng(23),
        max_per_window=10,        # strict rate limit
        window_minutes=60.0,
        captcha_pass_rate=0.95,
    )
    campaign = ReportingCampaign(portal, minutes_per_submission=1.5)
    stats = campaign.run(targets)

    print(table(
        ["metric", "value"],
        [
            ["URLs submitted", stats.urls],
            ["accepted", stats.accepted],
            ["CAPTCHA failures", stats.captcha_failures],
            ["rate-limit stalls", stats.rate_limit_stalls],
            ["wall-clock hours", f"{stats.elapsed_hours:.1f}"],
            ["taken down within 30 days", stats.taken_down_30d],
        ],
        title="reporting campaign outcome",
    ))

    takedown_rate = stats.taken_down_30d / stats.accepted if stats.accepted else 0
    print(f"\nonly {takedown_rate:.0%} of reported squatting phish are gone "
          "after a month —")
    print("consistent with §6.3: these pages survive far longer than "
          "ordinary phishing.")


if __name__ == "__main__":
    main()
