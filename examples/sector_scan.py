#!/usr/bin/env python
"""Sector scan: squatting against government / military / edu / hospital
domains (the §7 measurement extension, implemented).

The paper proposes extending the brand scope beyond Alexa-popular services
to "important organizations".  This example builds a sector catalog, plants
a few realistic sector squats into a snapshot, and runs the detector the
same way the main pipeline does.

Run:  python examples/sector_scan.py
"""

from __future__ import annotations

from collections import Counter

from repro import build_world, tiny_config
from repro.analysis.render import table
from repro.brands.sectors import SECTORS, sector_catalog
from repro.dns.zone import ZoneStore
from repro.squatting.detector import SquattingDetector

# Sector squats an attacker might register (tax season, benefits scams,
# student-portal harvesting, patient-portal harvesting).
PLANTED = (
    "irs-refund-status.com",
    "1rs.gov",
    "irs-tax-help.net",
    "ssa-benefits.org",
    "medicare-enroll.info",
    "army-pay.com",
    "tricare.com",
    "mit-login.edu",
    "stanfnrd.edu",
    "harvard-alumni-giving.org",
    "nhs-appointments.uk",
    "mayoclinic-patientportal.org",
)


def main() -> None:
    catalog = sector_catalog()
    print(f"sector catalog: {len(catalog)} brands across {len(SECTORS)} sectors")

    # reuse a synthetic snapshot as background noise, then plant the squats
    world = build_world(tiny_config())
    zone = ZoneStore(iter(world.zone))
    for domain in PLANTED:
        zone.add_name(domain, ip="198.51.100.7", source="new-reg")

    detector = SquattingDetector(catalog)
    matches = detector.scan(zone)

    print(f"\n{len(matches)} sector squats found in "
          f"{len(list(zone.registered_domains()))} registered domains:\n")
    print(table(
        ["domain", "sector brand", "type"],
        [[m.domain, m.brand, m.squat_type.value] for m in
         sorted(matches, key=lambda m: m.brand)],
    ))

    by_sector = Counter(catalog.get(m.brand).category for m in matches)
    print()
    print(table(["sector", "squats"], sorted(by_sector.items()),
                title="squats per sector"))


if __name__ == "__main__":
    main()
