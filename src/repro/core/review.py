"""Crowdsourced verification queue (§7's scaling suggestion).

The paper notes manual verification is the bottleneck of SquatPhi at scale
and suggests crowdsourcing it.  This module implements that: flagged pages
enter a queue, each gets judged by ``k`` independent annotators with
configurable accuracy, and a majority vote decides.  The model reproduces
the standard crowdsourcing trade-off — more annotators per item buy
precision at linear cost — which the tests quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class ReviewItem:
    """One flagged page awaiting human judgement."""

    domain: str
    brand: str
    truth: bool                       # ground truth (hidden from annotators)
    votes: List[bool] = field(default_factory=list)

    @property
    def decided(self) -> bool:
        return bool(self.votes)

    @property
    def verdict(self) -> bool:
        """Majority vote (ties break toward 'phishing' — the safe side)."""
        if not self.votes:
            raise RuntimeError(f"{self.domain} has no votes yet")
        positive = sum(self.votes)
        return positive * 2 >= len(self.votes)


@dataclass
class Annotator:
    """A crowd worker with asymmetric judgement accuracy.

    Spotting a phishing page that *is* phishing is easier than confirming a
    weird-but-benign page is benign, so the two accuracies differ.
    """

    name: str
    sensitivity: float = 0.95   # P(vote phishing | truly phishing)
    specificity: float = 0.90   # P(vote benign  | truly benign)

    def judge(self, item: ReviewItem, rng: "np.random.Generator") -> bool:
        if item.truth:
            return bool(rng.random() < self.sensitivity)
        return bool(rng.random() >= self.specificity)


@dataclass
class QueueStats:
    """Outcome summary of one review pass."""

    items: int
    confirmed: int
    rejected: int
    correct: int
    votes_cast: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.items if self.items else 0.0


class ReviewQueue:
    """Distributes items to annotators and tallies majority verdicts."""

    def __init__(
        self,
        annotators: Sequence[Annotator],
        votes_per_item: int = 3,
        seed: int = 41,
    ) -> None:
        if not annotators:
            raise ValueError("need at least one annotator")
        if votes_per_item < 1:
            raise ValueError("votes_per_item must be >= 1")
        self.annotators = list(annotators)
        self.votes_per_item = min(votes_per_item, len(self.annotators))
        self._rng = np.random.default_rng(seed)
        self.items: List[ReviewItem] = []

    def submit(self, domain: str, brand: str, truth: bool) -> ReviewItem:
        """Queue one flagged page."""
        item = ReviewItem(domain=domain, brand=brand, truth=truth)
        self.items.append(item)
        return item

    def process(self) -> QueueStats:
        """Collect votes for every undecided item and tally the outcome."""
        votes_cast = 0
        for item in self.items:
            if item.decided:
                continue
            chosen = self._rng.choice(
                len(self.annotators), size=self.votes_per_item, replace=False,
            )
            for index in chosen:
                item.votes.append(self.annotators[int(index)].judge(item, self._rng))
                votes_cast += 1
        confirmed = sum(1 for item in self.items if item.verdict)
        rejected = len(self.items) - confirmed
        correct = sum(1 for item in self.items if item.verdict == item.truth)
        return QueueStats(
            items=len(self.items),
            confirmed=confirmed,
            rejected=rejected,
            correct=correct,
            votes_cast=votes_cast,
        )

    def confirmed_domains(self) -> List[str]:
        """Domains the crowd confirmed as phishing."""
        return sorted(item.domain for item in self.items
                      if item.decided and item.verdict)


def default_crowd(size: int = 9, seed: int = 47) -> List[Annotator]:
    """A mixed-skill crowd: accuracy varies per worker, as in practice."""
    rng = np.random.default_rng(seed)
    crowd = []
    for index in range(size):
        crowd.append(Annotator(
            name=f"worker-{index:02d}",
            sensitivity=float(np.clip(rng.normal(0.93, 0.04), 0.75, 0.995)),
            specificity=float(np.clip(rng.normal(0.88, 0.06), 0.70, 0.99)),
        ))
    return crowd
