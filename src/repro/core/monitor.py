"""Incremental brand monitoring (§7's per-brand deployment mode).

"Paypal can keep monitoring the newly registered domain names ... to
identify PayPal related squatting domains and classify squatting phishing
pages."  :class:`BrandMonitor` implements that loop as a library API:

* diff successive DNS snapshots to find new registrations;
* filter to squats of the watched brands;
* crawl + score each squat with a trained pipeline;
* emit :class:`MonitorAlert` records, deduplicated across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.pipeline import SquatPhi
from repro.dns.zone import ZoneStore
from repro.squatting.detector import SquattingDetector
from repro.squatting.types import SquatMatch
from repro.web.http import MOBILE_UA, WEB_UA


@dataclass
class MonitorAlert:
    """One new squat observed by the monitor."""

    domain: str
    brand: str
    squat_type: str
    live: bool
    score: Optional[float] = None       # None when the domain is dead
    is_phishing: bool = False
    first_seen_round: int = 0
    degraded: bool = False              # an assessment visit hit a fault


class BrandMonitor:
    """Watches DNS snapshots for new squats of selected brands."""

    def __init__(
        self,
        pipeline: SquatPhi,
        brands: Sequence[str],
        threshold: Optional[float] = None,
    ) -> None:
        """
        Args:
            pipeline: a *trained* SquatPhi (used for crawling + scoring).
            brands: brand keys to watch (must exist in the catalog).
            threshold: phishing score cut-off; defaults to the pipeline's.
        """
        unknown = [b for b in brands if b not in pipeline.world.catalog]
        if unknown:
            raise ValueError(f"unknown brands: {unknown}")
        self.pipeline = pipeline
        self.brands = set(brands)
        self.threshold = (threshold if threshold is not None
                          else pipeline.config.decision_threshold)
        self.detector = SquattingDetector(pipeline.world.catalog)
        self._known_domains: Set[str] = set()
        self._alerted: Set[str] = set()
        self.rounds = 0
        self.alerts: List[MonitorAlert] = []
        self.degraded_visits = 0

    # ------------------------------------------------------------------
    def baseline(self, zone: ZoneStore) -> int:
        """Record the current registration universe without alerting."""
        before = len(self._known_domains)
        self._known_domains.update(zone.registered_domains())
        return len(self._known_domains) - before

    def observe(self, zone: ZoneStore) -> List[MonitorAlert]:
        """Process one new snapshot; returns this round's alerts."""
        self.rounds += 1
        fresh = [d for d in zone.registered_domains()
                 if d not in self._known_domains]
        self._known_domains.update(fresh)

        new_alerts: List[MonitorAlert] = []
        for domain in fresh:
            match = self.detector.classify_domain(domain)
            if match is None or match.brand not in self.brands:
                continue
            if domain in self._alerted:
                continue
            self._alerted.add(domain)
            new_alerts.append(self._assess(match))
        self.alerts.extend(new_alerts)
        return new_alerts

    def _assess(self, match: SquatMatch) -> MonitorAlert:
        """Crawl the squat (both profiles) and score the worst page.

        Monitoring must survive weeks of flaky infrastructure: a DNS or
        visit fault degrades the alert (marked ``degraded``, counted in
        :attr:`degraded_visits`) instead of killing the round.
        """
        score: Optional[float] = None
        live = False
        degraded = False
        for user_agent in (WEB_UA, MOBILE_UA):
            capture, faulted = self.pipeline.assess_page(
                match.domain, user_agent, stage="monitor_assess")
            if faulted:
                degraded = True
                self.degraded_visits += 1
                continue
            if capture is None:
                continue
            live = True
            page_score = self.pipeline.classify_capture(capture)
            score = page_score if score is None else max(score, page_score)
        return MonitorAlert(
            domain=match.domain,
            brand=match.brand,
            squat_type=match.squat_type.value,
            live=live,
            score=score,
            is_phishing=bool(score is not None and score >= self.threshold),
            first_seen_round=self.rounds,
            degraded=degraded,
        )

    # ------------------------------------------------------------------
    def phishing_alerts(self) -> List[MonitorAlert]:
        return [a for a in self.alerts if a.is_phishing]

    def summary(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "known_domains": len(self._known_domains),
            "alerts": len(self.alerts),
            "phishing": len(self.phishing_alerts()),
            "degraded_visits": self.degraded_visits,
        }
