"""The SquatPhi pipeline: search + detect squatting phishing end to end."""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.evasion import EvasionMeasurement, measure_page
from repro.core.config import PipelineConfig
from repro.faults.clock import SimClock
from repro.faults.errors import FaultError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.resilience import CrawlHealth, RetryPolicy
from repro.features.embedding import FeatureEmbedder
from repro.features.extraction import FeatureExtractor, PageFeatures
from repro.perf import CaptureCache, PerfReport
from repro.perf.engine import process_map, shard
from repro.ml import (
    ClassificationReport,
    KNearestNeighbors,
    MultinomialNaiveBayes,
    RandomForest,
    cross_validate,
)
from repro.dns.packedzone import PackedZone, attach_enrichment
from repro.enrich import EnrichResolver, EnrichmentTable, default_backends
from repro.ocr.engine import OCREngine
from repro.phishworld.marketplace import classify_redirect
from repro.phishworld.world import SyntheticInternet
from repro.squatting import packedscan
from repro.squatting.detector import SquattingDetector
from repro.stages import (
    ArtifactStore,
    RunManifest,
    Stage,
    StageContext,
    StageGraph,
    StageRunner,
    digest_crawl_snapshot,
    digest_crawl_snapshots,
    digest_cv_reports,
    digest_detections,
    digest_enrichment,
    digest_evasion,
    digest_ground_truth,
    digest_packed_zone,
    digest_squat_matches,
    digest_verified,
)
from repro.squatting.types import SquatMatch, SquatType
from repro.web.browser import Browser, PageCapture
from repro.web.crawler import CrawlCheckpoint, CrawlSnapshot, DistributedCrawler
from repro.web.http import MOBILE_UA, WEB_UA


# ----------------------------------------------------------------------
# process-pool plumbing for the extraction/training fan-out.  Extraction
# is a pure function of page content (OCR noise is seeded by the raster,
# fault draws are content-keyed hashes, spell correction is pure per
# word), so worker processes rebuild an extractor from a picklable spec
# and return features + cache deltas that merge back in shard order —
# byte-identical to a serial pass for any worker count.
# ----------------------------------------------------------------------
_EXTRACT_CONTEXT: dict = {}


@dataclass(frozen=True)
class ExtractorSpec:
    """Everything a worker needs to rebuild the run's feature extractor."""

    ocr_error_rate: float
    use_ocr: bool
    use_spellcheck: bool
    lexicon: Tuple[str, ...]
    fault_plan: Optional[FaultPlan]
    cache_enabled: bool
    legacy: bool = False

    def build(self) -> Tuple[FeatureExtractor, CaptureCache, Optional[FaultInjector]]:
        from repro.ocr.engine import OCREngine as _OCREngine

        injector = None
        if self.fault_plan is not None and self.fault_plan.any_faults:
            injector = FaultInjector(self.fault_plan)
        cache = CaptureCache(enabled=self.cache_enabled)
        extractor = FeatureExtractor(
            ocr_engine=_OCREngine(error_rate=self.ocr_error_rate,
                                  fault_injector=injector,
                                  legacy=self.legacy),
            use_ocr=self.use_ocr,
            use_spellcheck=self.use_spellcheck,
            extra_lexicon=list(self.lexicon),
            cache=cache,
            legacy=self.legacy,
        )
        return extractor, cache, injector


def _extract_init(spec: ExtractorSpec) -> None:
    _EXTRACT_CONTEXT["spec"] = spec


def _extract_shard(items):
    """Extract one shard of (html, pixels) pairs in a worker process.

    A fresh extractor per shard keeps the returned cache-stats delta a
    function of the shard alone (not of which worker happened to process
    which shards), so merged counters are run-to-run deterministic.
    """
    spec: ExtractorSpec = _EXTRACT_CONTEXT["spec"]
    extractor, cache, injector = spec.build()
    features = [extractor.extract(html, pixels) for html, pixels in items]
    injected = dict(injector.injected) if injector is not None else {}
    return features, cache.stats, injected


def _measure_shard(items):
    """Evasion-measure one shard of (domain, brand, html, pixels, original)."""
    return [
        measure_page(domain=domain, brand_name=brand, html=html,
                     phish_pixels=pixels, original_pixels=original)
        for domain, brand, html, pixels, original in items
    ]


@dataclass(frozen=True)
class ModelFactory:
    """Picklable classifier factory.

    ``cross_validate(workers>1)`` ships the factory to fold workers, so it
    must survive pickling — a bound lambda over the pipeline would not.
    Forests built here fit their trees serially; the fold fan-out is the
    parallel axis (nesting pools inside pools would oversubscribe).
    """

    name: str
    rf_trees: int
    rf_max_depth: int
    knn_k: int
    legacy: bool = False

    def __call__(self):
        if self.name == "random_forest":
            return RandomForest(n_trees=self.rf_trees,
                                max_depth=self.rf_max_depth,
                                legacy=self.legacy)
        if self.name == "knn":
            return KNearestNeighbors(k=self.knn_k)
        if self.name == "naive_bayes":
            return MultinomialNaiveBayes()
        raise ValueError(f"unknown classifier {self.name!r}")


@dataclass
class GroundTruthPage:
    """One labelled training page."""

    domain: str
    brand: str
    label: int                      # 1 = phishing, 0 = benign
    features: PageFeatures
    html: str
    screenshot_pixels: Optional["np.ndarray"] = None
    source: str = "phishtank"       # phishtank | squat-benign


@dataclass
class WildDetection:
    """One page the classifier flagged in the wild."""

    domain: str
    brand: str
    squat_type: SquatType
    profile: str                    # web | mobile
    score: float
    capture: PageCapture
    # extracted once at classification time and carried along, so
    # feedback retraining never pays for (or depends on) re-extraction
    features: Optional[PageFeatures] = None


@dataclass
class VerifiedPhish:
    """A flagged page that survived verification."""

    domain: str
    brand: str
    squat_type: SquatType
    profiles: Tuple[str, ...]       # which device profiles serve the phish


@dataclass
class PipelineResult:
    """Everything a SquatPhi run produces (feeds all exhibits)."""

    squat_matches: List[SquatMatch]
    crawl_snapshots: List[CrawlSnapshot]
    ground_truth: List[GroundTruthPage]
    cv_reports: Dict[str, ClassificationReport]
    flagged: List[WildDetection]
    verified: List[VerifiedPhish]
    evasion_squatting: List[EvasionMeasurement]
    evasion_reported: List[EvasionMeasurement]
    enrichment: Optional[EnrichmentTable] = None
    health: CrawlHealth = field(default_factory=CrawlHealth)
    injected_faults: Dict[str, int] = field(default_factory=dict)
    # execution metadata (never part of determinism comparisons)
    run_id: str = field(default="", compare=False)
    perf: Optional[PerfReport] = field(default=None, compare=False)
    # serving generation published by this run, when config.publish_dir
    # is set on a packed world: {"generation": int, "path": str}.
    # Generation numbers depend on the publish directory's history, so
    # this is execution metadata too.
    published: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def verified_domains(self) -> List[str]:
        return sorted({v.domain for v in self.verified})

    def flagged_by_profile(self, profile: str) -> List[WildDetection]:
        return [f for f in self.flagged if f.profile == profile]

    def verified_by_profile(self, profile: str) -> List[VerifiedPhish]:
        return [v for v in self.verified if profile in v.profiles]

    def summary(self) -> Dict[str, Any]:
        """Machine-readable run summary (the CLI's ``--json`` payload).

        Everything except the ``perf`` block is deterministic for a given
        world + config, so two runs' summaries can be diffed directly.
        """
        data: Dict[str, Any] = {
            "run_id": self.run_id,
            "counts": {
                "squat_matches": len(self.squat_matches),
                "crawl_snapshots": len(self.crawl_snapshots),
                "ground_truth": len(self.ground_truth),
                "flagged": len(self.flagged),
                "verified": len(self.verified),
                "evasion_squatting": len(self.evasion_squatting),
                "evasion_reported": len(self.evasion_reported),
                "enriched_domains": (len(self.enrichment.domains)
                                     if self.enrichment is not None else 0),
            },
            "verified_domains": self.verified_domains(),
            "snapshot_digests": [s.digest() for s in self.crawl_snapshots],
            "cv_reports": {
                name: {
                    "false_positive_rate": round(r.false_positive_rate, 6),
                    "false_negative_rate": round(r.false_negative_rate, 6),
                    "auc": round(r.auc, 6),
                    "accuracy": round(r.accuracy, 6),
                }
                for name, r in sorted(self.cv_reports.items())
            },
            "health": self.health.to_dict(),
            "injected_faults": dict(sorted(self.injected_faults.items())),
        }
        if self.enrichment is not None:
            data["enrichment_digest"] = self.enrichment.digest()
        if self.published is not None:
            data["published"] = dict(self.published)
        if self.perf is not None:
            data["perf"] = self.perf.to_dict()
        return data


class SquatPhi:
    """End-to-end runner against a (synthetic) internet."""

    def __init__(
        self,
        world: SyntheticInternet,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.world = world
        self.config = config or PipelineConfig()
        self.detector = SquattingDetector(world.catalog)
        # failure model: one simulated clock + injector shared by every
        # stage, so fault weather is consistent (and reproducible) across
        # crawling, ground-truth collection, OCR, and monitoring
        self.clock = SimClock()
        self.fault_injector: Optional[FaultInjector] = None
        if self.config.fault_plan is not None and self.config.fault_plan.any_faults:
            self.fault_injector = FaultInjector(self.config.fault_plan, self.clock)
            world.zone.fault_injector = self.fault_injector
        self.health = CrawlHealth()
        # execution engine: one content-addressed cache and one perf report
        # per run, sharing a CacheStats so the report is always current
        self.capture_cache = CaptureCache(enabled=self.config.capture_cache)
        self.perf = PerfReport(
            scan_workers=self.config.scan_workers,
            crawl_workers=self.config.crawl_workers,
            train_workers=self.config.train_workers,
            extract_workers=self.config.extract_workers,
            cache_enabled=self.config.capture_cache,
            cache=self.capture_cache.stats,
        )
        self.extractor = FeatureExtractor(
            ocr_engine=OCREngine(error_rate=self.config.ocr_error_rate,
                                 fault_injector=self.fault_injector,
                                 legacy=self.config.legacy_ml),
            use_ocr=self.config.use_ocr,
            use_spellcheck=self.config.use_spellcheck,
            extra_lexicon=world.catalog.names(),
            cache=self.capture_cache,
            legacy=self.config.legacy_ml,
        )
        self.embedder: Optional[FeatureEmbedder] = None
        self.model = None
        self._original_shots: Dict[str, "np.ndarray"] = {}
        # filled in by run(): id + manifest of the latest stage-graph walk
        self.run_id: Optional[str] = None
        self.last_manifest: Optional[RunManifest] = None

    # ------------------------------------------------------------------
    # resilience helpers
    # ------------------------------------------------------------------
    def _make_browser(self, user_agent) -> Browser:
        return Browser(self.world.host, user_agent,
                       fault_injector=self.fault_injector,
                       capture_cache=self.capture_cache)

    def _visit_degraded(self, browser: Browser, url: str,
                        stage: str) -> Optional[PageCapture]:
        """Visit a URL outside the crawler's retry loop.

        A fault here degrades the stage (the page is skipped and
        accounted) instead of crashing the run.
        """
        try:
            return browser.visit(url)
        except FaultError as fault:
            self.health.record_failure(fault.kind)
            self.health.record_degraded(stage)
            return None

    def assess_page(
        self,
        domain: str,
        user_agent,
        stage: str = "monitor_assess",
    ) -> Tuple[Optional[PageCapture], bool]:
        """Resolve and visit one page on behalf of a monitoring consumer.

        Returns ``(capture, faulted)``.  A fault degrades ``stage`` in the
        health report (the visit sits outside the crawler's retry loop, so
        it is a degraded assessment, not a crawl failure) and yields
        ``(None, True)``; a dead-but-healthy domain yields ``(None,
        False)``.  :class:`~repro.core.monitor.BrandMonitor` consumes this
        instead of wiring browsers to the pipeline's internals itself.
        """
        browser = self._make_browser(user_agent)
        try:
            self.world.zone.resolve(domain)
            capture = browser.visit(f"http://{domain}/")
        except FaultError:
            self.health.record_degraded(stage)
            return None, True
        return capture, False

    # ------------------------------------------------------------------
    # stage 1: squatting detection
    # ------------------------------------------------------------------
    def detect_squatting(self, zone=None) -> List[SquatMatch]:
        """Scan the DNS snapshot for squatting domains (§3.1).

        ``config.scan_workers > 1`` shards the zone across a process pool;
        the ordered merge makes the result identical to a serial scan.
        Packed zones (``zone`` or ``world.zone`` a
        :class:`~repro.dns.packedzone.PackedZone`) additionally route
        through the vectorized mmap kernel — same results, much faster.
        """
        if zone is None:
            zone = self.world.zone
        start = time.perf_counter()
        matches = self.detector.scan_sharded(
            zone, workers=self.config.scan_workers)
        self.perf.record_scan(zone.stats()["registered_domains"],
                              time.perf_counter() - start,
                              kernel=packedscan.take_last_scan_stats())
        return matches

    # ------------------------------------------------------------------
    # stage 2: crawling
    # ------------------------------------------------------------------
    def make_crawler(self) -> DistributedCrawler:
        """A crawler wired to this run's fault model and resilience knobs."""
        config = self.config
        return DistributedCrawler(
            self.world.host,
            workers=config.crawl_workers,
            max_retries=config.crawl_max_retries,
            fault_injector=self.fault_injector,
            retry_policy=RetryPolicy(
                max_retries=config.crawl_max_retries,
                base_delay=config.backoff_base_delay,
                max_delay=config.backoff_max_delay,
                jitter=config.backoff_jitter,
            ),
            breaker_failure_threshold=config.breaker_failure_threshold,
            breaker_reset_timeout=config.breaker_reset_timeout,
            clock=self.clock,
            capture_cache=self.capture_cache,
        )

    def crawl_domains(
        self,
        domains: Sequence[str],
        snapshot: int = 0,
        resume: Optional[CrawlCheckpoint] = None,
        max_jobs: Optional[int] = None,
    ) -> CrawlSnapshot:
        """One crawl pass over ``domains`` with both device profiles.

        ``resume``/``max_jobs`` expose the crawler's checkpoint/resume
        machinery; a partial pass (``max_jobs``) returns a snapshot whose
        ``checkpoint`` continues it.  Crawl health is folded into the
        run-level :attr:`health` report only when the pass completes, so
        an interrupted-then-resumed crawl is accounted exactly once.
        """
        crawler = self.make_crawler()
        result = crawler.crawl(domains, snapshot=snapshot,
                               resume=resume, max_jobs=max_jobs)
        if result.complete:
            self.health.merge(result.health)
        return result

    # ------------------------------------------------------------------
    # parallel feature extraction
    # ------------------------------------------------------------------
    def _extractor_spec(self) -> ExtractorSpec:
        return ExtractorSpec(
            ocr_error_rate=self.config.ocr_error_rate,
            use_ocr=self.config.use_ocr,
            use_spellcheck=self.config.use_spellcheck,
            lexicon=tuple(self.world.catalog.names()),
            fault_plan=self.config.fault_plan,
            cache_enabled=self.config.capture_cache,
            legacy=self.config.legacy_ml,
        )

    def _extract_many(
        self,
        pairs: Sequence[Tuple[str, Optional["np.ndarray"]]],
    ) -> List[PageFeatures]:
        """Extract features for (html, pixels) pairs, in input order.

        With ``extract_workers > 1`` the main process consults the shared
        capture cache first, fans the misses out over ordered process-pool
        shards, and merges worker-computed features back into the cache in
        shard order.  Extraction is pure, so the returned features are
        byte-identical to a serial pass for any worker count.
        """
        start = time.perf_counter()
        workers = self.config.extract_workers
        if workers <= 1 or len(pairs) <= 1:
            features = [self.extractor.extract(html, pixels)
                        for html, pixels in pairs]
            self.perf.record_extraction(len(pairs), time.perf_counter() - start)
            return features

        results: List[Optional[PageFeatures]] = [None] * len(pairs)
        use_ocr = self.extractor.use_ocr
        flags = (use_ocr, self.extractor.use_spellcheck)
        jobs: List[Tuple[Any, str, Optional["np.ndarray"]]] = []
        slots: List[List[int]] = []
        if self.capture_cache.enabled:
            index_of: Dict[Any, int] = {}
            for i, (html, pixels) in enumerate(pairs):
                key = CaptureCache.feature_key(
                    html, pixels if use_ocr else None, flags)
                cached = self.capture_cache.lookup_features(key)
                if cached is not None:
                    results[i] = cached.copy()
                    continue
                at = index_of.get(key)
                if at is not None:
                    slots[at].append(i)
                    continue
                index_of[key] = len(jobs)
                jobs.append((key, html, pixels))
                slots.append([i])
        else:
            # --no-capture-cache measures the uncached baseline: every
            # page pays full extraction, so no dedupe either
            jobs = [(None, html, pixels) for html, pixels in pairs]
            slots = [[i] for i in range(len(pairs))]

        if jobs:
            chunk = max(1, -(-len(jobs) // (workers * 4)))
            shard_results = process_map(
                _extract_shard,
                [[(html, pixels) for _, html, pixels in part]
                 for part in shard(jobs, chunk)],
                workers=workers,
                initializer=_extract_init,
                initargs=(self._extractor_spec(),),
            )
            position = 0
            for features_list, stats, injected in shard_results:
                self.capture_cache.stats.merge(stats)
                if self.fault_injector is not None:
                    for kind, count in injected.items():
                        self.fault_injector.injected[kind] += count
                for features in features_list:
                    key = jobs[position][0]
                    if key is not None:
                        self.capture_cache.store_features(key, features.copy())
                    targets = slots[position]
                    results[targets[0]] = features
                    for extra in targets[1:]:
                        results[extra] = features.copy()
                    position += 1
        self.perf.record_extraction(len(pairs), time.perf_counter() - start)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # stage 3: ground truth
    # ------------------------------------------------------------------
    def collect_ground_truth(
        self,
        squat_matches: Optional[Sequence[SquatMatch]] = None,
        benign_squat_sample: int = 400,
    ) -> List[GroundTruthPage]:
        """Crawl PhishTank reports and label pages (§4.1).

        Positive pages: reported URLs still serving phishing at crawl time.
        Negative pages: reported URLs replaced with benign content, plus a
        sample of easy-to-confuse live squat-domain pages.

        Page visits run serially (their order drives the fault weather and
        health accounting); extraction is pure, so it batches over the
        collected captures afterwards — the ``extract_workers`` fan-out.
        """
        browser = self._make_browser(WEB_UA)
        metas: List[Tuple[str, str, int, str, PageCapture]] = []
        for report in self.world.phishtank.verified_active():
            capture = self._visit_degraded(
                browser, f"http://{report.domain}/", "ground_truth")
            if capture is None:
                continue
            metas.append((report.domain, report.brand,
                          1 if report.still_phishing else 0,
                          "phishtank", capture))
        metas.extend(self._sample_benign_squat_metas(squat_matches, benign_squat_sample))
        features = self._extract_many([
            (capture.html, capture.screenshot.pixels)
            for *_, capture in metas
        ])
        pages = [
            GroundTruthPage(
                domain=domain,
                brand=brand,
                label=label,
                features=page_features,
                html=capture.html,
                screenshot_pixels=capture.screenshot.pixels,
                source=source,
            )
            for (domain, brand, label, source, capture), page_features
            in zip(metas, features)
        ]
        self._apply_annotation_noise(pages)
        return pages

    def _apply_annotation_noise(self, pages: List[GroundTruthPage]) -> None:
        """Model residual labeling error in the manually-annotated corpus."""
        rng = np.random.default_rng(self.config.annotation_seed)
        for page in pages:
            if page.label == 1:
                if rng.random() < self.config.phish_mislabel_rate:
                    page.label = 0
            elif rng.random() < self.config.benign_mislabel_rate:
                page.label = 1

    def _sample_benign_squat_metas(
        self,
        squat_matches: Optional[Sequence[SquatMatch]],
        sample_size: int,
    ) -> List[Tuple[str, str, int, str, PageCapture]]:
        """The paper's second negative source: manually-verified benign
        pages under squatting domains (§5.3).

        The paper states it "only introduce[s] the most easy-to-confuse
        benign pages ... [not] the obviously benign pages", so the sample
        is deliberately biased: confusable pages (forms, brand plugins, fan
        logins) are exhausted first, then the remainder fills uniformly.
        The oracle labels stand in for their manual verification.  Returns
        page metadata tuples; the caller batches feature extraction.
        """
        if not squat_matches:
            return []
        rng = np.random.default_rng(self.config.verification_seed)
        browser = self._make_browser(WEB_UA)
        confusable: List[SquatMatch] = []
        ordinary: List[SquatMatch] = []
        for match in squat_matches:
            label = self.world.label_of(match.domain) or ""
            if label == "squat-confusable":
                confusable.append(match)
            elif label.startswith("squat-"):
                ordinary.append(match)
        ordered: List[SquatMatch] = [
            confusable[int(i)] for i in rng.permutation(len(confusable))
        ] + [
            ordinary[int(i)] for i in rng.permutation(len(ordinary))
        ]
        metas: List[Tuple[str, str, int, str, PageCapture]] = []
        for match in ordered:
            if len(metas) >= sample_size:
                break
            capture = self._visit_degraded(
                browser, f"http://{match.domain}/", "ground_truth_benign")
            if capture is None:
                continue
            metas.append((match.domain, match.brand, 0,
                          "squat-benign", capture))
        return metas

    # ------------------------------------------------------------------
    # stage 4: classification
    # ------------------------------------------------------------------
    def _model_factory(self, name: str) -> ModelFactory:
        return ModelFactory(
            name=name,
            rf_trees=self.config.rf_trees,
            rf_max_depth=self.config.rf_max_depth,
            knn_k=self.config.knn_k,
            legacy=self.config.legacy_ml,
        )

    def _make_model(self, name: str):
        return self._model_factory(name)()

    def train(
        self,
        ground_truth: Sequence[GroundTruthPage],
        evaluate_all: bool = True,
    ) -> Dict[str, ClassificationReport]:
        """Fit the embedding and classifiers; cross-validate (Table 7).

        ``config.train_workers`` fans CV folds and forest trees out over a
        process pool; per-tree seeds derive from (forest seed, tree index)
        and folds merge by test-index, so the reports and the final model
        byte-match a serial run for any worker count.
        """
        start = time.perf_counter()
        features = [page.features for page in ground_truth]
        labels = np.array([page.label for page in ground_truth])
        self.embedder = FeatureEmbedder(
            brand_names=self.world.catalog.names(),
            config=self.config.embedding,
            legacy=self.config.legacy_ml,
        )
        x = self.embedder.fit_transform(features)
        reports: Dict[str, ClassificationReport] = {}
        names = ("naive_bayes", "knn", "random_forest") if evaluate_all else (self.config.classifier,)
        folds = 0
        for name in names:
            reports[name] = cross_validate(
                self._model_factory(name), x, labels,
                k=self.config.cv_folds,
                threshold=self.config.decision_threshold,
                workers=self.config.train_workers,
            )
            folds += self.config.cv_folds
        model = self._make_model(self.config.classifier)
        if isinstance(model, RandomForest):
            model.fit(x, labels, workers=self.config.train_workers)
        else:
            model.fit(x, labels)
        self.model = model
        self.perf.record_training(
            trees=model.n_trees if isinstance(model, RandomForest) else 0,
            folds=folds,
            seconds=time.perf_counter() - start,
        )
        return reports

    def score_features(self, features: PageFeatures) -> float:
        """Phishing score of already-extracted page features."""
        if self.model is None or self.embedder is None:
            raise RuntimeError("pipeline is not trained; call train() first")
        vector = self.embedder.transform([features])
        return float(self.model.predict_proba(vector)[0])

    def classify_capture(self, capture: PageCapture) -> float:
        """Phishing score of one crawled page."""
        return self.score_features(self.extractor.extract_capture(capture))

    # ------------------------------------------------------------------
    # stage 5: wild detection + verification
    # ------------------------------------------------------------------
    def detect_in_wild(
        self,
        squat_matches: Sequence[SquatMatch],
        crawl: CrawlSnapshot,
    ) -> List[WildDetection]:
        """Classify every live squat-domain page from a crawl snapshot.

        Extraction fans out over ``extract_workers``; scoring embeds the
        whole batch into one matrix and takes one ``predict_proba`` call
        (per-page scores are computed independently inside the model, so
        batching cannot change a byte).
        """
        match_of = {m.domain: m for m in squat_matches}
        items: List[Tuple[str, str, SquatMatch, PageCapture]] = []
        for profile in ("web", "mobile"):
            for result in crawl.captures(profile):
                match = match_of.get(result.domain)
                if match is None or result.capture is None:
                    continue
                if result.redirected:
                    continue  # redirects land on someone else's content
                items.append((profile, result.domain, match, result.capture))
        if not items:
            return []
        features_list = self._extract_many([
            (capture.html,
             capture.screenshot.pixels if capture.screenshot is not None else None)
            for _, _, _, capture in items
        ])
        if self.config.legacy_ml:
            scores = [self.score_features(features) for features in features_list]
        else:
            vectors = self.embedder.transform(features_list)
            scores = [float(s) for s in self.model.predict_proba(vectors)]
        flagged: List[WildDetection] = []
        for (profile, domain, match, capture), features, score in zip(
                items, features_list, scores):
            if score >= self.config.decision_threshold:
                flagged.append(WildDetection(
                    domain=domain,
                    brand=match.brand,
                    squat_type=match.squat_type,
                    profile=profile,
                    score=score,
                    capture=capture,
                    features=features,
                ))
        return flagged

    def verify(self, flagged: Sequence[WildDetection]) -> List[VerifiedPhish]:
        """Manual-examination step (§6.1).

        A page passes when it impersonates the brand and carries a data
        collection form — known exactly to the world's ground truth.  In
        ``expert`` mode a single reviewer judges each domain with a small
        error rate; in ``crowd`` mode a review queue takes majority votes
        from a mixed-skill crowd (§7's scaling suggestion).
        """
        by_domain: Dict[str, List[WildDetection]] = {}
        for detection in flagged:
            by_domain.setdefault(detection.domain, []).append(detection)

        if self.config.verification_mode == "crowd":
            accepted = self._crowd_verdicts(sorted(by_domain))
        elif self.config.verification_mode == "expert":
            accepted = self._expert_verdicts(sorted(by_domain))
        else:
            raise ValueError(
                f"unknown verification_mode {self.config.verification_mode!r}")

        verified: List[VerifiedPhish] = []
        for domain in sorted(accepted):
            detections = by_domain[domain]
            first = detections[0]
            verified.append(VerifiedPhish(
                domain=domain,
                brand=first.brand,
                squat_type=first.squat_type,
                profiles=tuple(sorted({d.profile for d in detections})),
            ))
        return verified

    def _expert_verdicts(self, domains: Sequence[str]) -> Set[str]:
        rng = np.random.default_rng(self.config.verification_seed)
        accepted: Set[str] = set()
        for domain in domains:
            truly_phishing = self.world.label_of(domain) == "phishing"
            if rng.random() < self.config.reviewer_error_rate:
                truly_phishing = not truly_phishing
            if truly_phishing:
                accepted.add(domain)
        return accepted

    def _crowd_verdicts(self, domains: Sequence[str]) -> Set[str]:
        from repro.core.review import ReviewQueue, default_crowd

        queue = ReviewQueue(
            default_crowd(self.config.crowd_size,
                          seed=self.config.verification_seed),
            votes_per_item=self.config.crowd_votes_per_item,
            seed=self.config.verification_seed + 1,
        )
        for domain in domains:
            queue.submit(domain, brand="",
                         truth=self.world.label_of(domain) == "phishing")
        queue.process()
        return set(queue.confirmed_domains())

    # ------------------------------------------------------------------
    # stage 6: evasion characterization
    # ------------------------------------------------------------------
    def original_screenshot(self, brand_name: str) -> Optional["np.ndarray"]:
        """Cached screenshot of a brand's legitimate page."""
        if brand_name not in self._original_shots:
            brand = self.world.catalog.get(brand_name)
            if brand is None:
                return None
            capture = self._visit_degraded(
                self._make_browser(WEB_UA), f"http://{brand.domain}/",
                "evasion_original")
            if capture is None:
                return None
            self._original_shots[brand_name] = capture.screenshot.pixels
        return self._original_shots[brand_name]

    def measure_evasion_for(
        self,
        items: Sequence[Tuple[str, str, PageCapture]],
    ) -> List[EvasionMeasurement]:
        """Evasion tests for (domain, brand, capture) triples.

        Brand originals are fetched serially first (their first-occurrence
        visit order drives fault weather); the per-page measurements are
        pure, so they fan out over ``extract_workers`` shards whose
        ordered merge matches the serial loop byte for byte.
        """
        originals = [self.original_screenshot(brand) for _, brand, _ in items]
        workers = self.config.extract_workers
        work = [
            (domain, brand, capture.html, capture.screenshot.pixels, original)
            for (domain, brand, capture), original in zip(items, originals)
        ]
        if workers <= 1 or len(work) <= 1:
            return _measure_shard(work)
        chunk = max(1, -(-len(work) // (workers * 4)))
        parts = process_map(_measure_shard, shard(work, chunk), workers=workers)
        return [measurement for part in parts for measurement in part]

    # ------------------------------------------------------------------
    # feedback retraining (§6.1's proposed improvement / future work)
    # ------------------------------------------------------------------
    def retrain_with_feedback(
        self,
        ground_truth: Sequence[GroundTruthPage],
        flagged: Sequence[WildDetection],
        verified: Sequence[VerifiedPhish],
    ) -> Dict[str, ClassificationReport]:
        """Fold verification outcomes back into the training set.

        Every flagged-and-verified page becomes a new positive; every
        flagged-but-rejected page becomes a new hard negative.  The paper
        proposes exactly this loop to absorb the variance the small-scale
        training set missed.  Returns fresh CV reports on the augmented set.
        """
        verified_domains = {v.domain for v in verified}
        augmented: List[GroundTruthPage] = list(ground_truth)
        seen: Set[Tuple[str, str]] = set()
        for detection in flagged:
            key = (detection.domain, detection.profile)
            if key in seen:
                continue
            seen.add(key)
            # detection already carries the features it was scored on;
            # falling back to the extractor (which itself consults the
            # capture cache) only for detections built by older callers
            features = detection.features
            if features is None:
                features = self.extractor.extract_capture(detection.capture)
            augmented.append(GroundTruthPage(
                domain=detection.domain,
                brand=detection.brand,
                label=1 if detection.domain in verified_domains else 0,
                features=features,
                html=detection.capture.html,
                screenshot_pixels=detection.capture.screenshot.pixels,
                source="feedback",
            ))
        return self.train(augmented)

    # ------------------------------------------------------------------
    # the stage graph (what `run` executes)
    # ------------------------------------------------------------------
    # Config-field slices per stage: only the fields that can change a
    # stage's *results* participate in its fingerprint.  Throughput knobs
    # (scan_workers, crawl_workers, train_workers, extract_workers,
    # capture_cache, checkpoint_interval, legacy_ml) are deliberately
    # absent — the determinism contract guarantees they cannot change
    # artifacts, so they must not invalidate them; the stage runner
    # rejects slices that name one (see THROUGHPUT_FIELDS).
    _RESILIENCE_FIELDS = (
        "fault_plan", "crawl_max_retries", "backoff_base_delay",
        "backoff_max_delay", "backoff_jitter",
        "breaker_failure_threshold", "breaker_reset_timeout",
    )
    _EXTRACTION_FIELDS = ("use_ocr", "use_spellcheck", "ocr_error_rate")

    def _crawl_checkpointed(
        self,
        domains: Sequence[str],
        snapshot: int,
        ctx: StageContext,
        resume: Optional[CrawlCheckpoint],
        on_checkpoint,
    ) -> CrawlSnapshot:
        """One complete crawl pass whose checkpoints flow into the store."""
        crawler = self.make_crawler()
        result = crawler.crawl_incremental(
            domains,
            snapshot=snapshot,
            resume=resume,
            interval=self.config.checkpoint_interval,
            on_checkpoint=on_checkpoint,
        )
        self.health.merge(result.health)
        return result

    def _injected_snapshot(self) -> Optional[Dict[str, int]]:
        """Run-level injected-fault tally, for crawl partial payloads.

        The crawl checkpoint carries its own health, but fault injections
        are tallied on the run-level injector — a process killed mid-crawl
        would lose them, so partials save the tally and resume restores it.
        """
        if self.fault_injector is None:
            return None
        return dict(self.fault_injector.injected)

    def _restore_injected(self, saved: Optional[Dict[str, int]]) -> None:
        if saved is None or self.fault_injector is None:
            return
        for kind, count in saved.items():
            if count > self.fault_injector.injected.get(kind, 0):
                self.fault_injector.injected[kind] = count

    def _stage_pack(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        """Expose the packed snapshot as a content-addressed artifact.

        Persisting the packed file (its pickle is the raw file bytes)
        lets resumed runs serve the snapshot from the store and lets the
        scan stage hit the early cut-off on its input digest without ever
        rehydrating a dict-backed zone.
        """
        return {"packed_zone": self.world.zone}

    def _stage_scan(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        return {"squat_matches": self.detect_squatting(inputs.get("packed_zone"))}

    def _stage_enrich(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        """Bulk-enrich the scan's candidate set (MX/A/WHOIS/GeoIP).

        Runs the event-loop resolver on its own private simulated clock —
        fault weather, hedging, and concurrency change only the resolver's
        internal accounting, never the table, so the artifact digest is
        identical to a serial no-fault pass.  Packed worlds additionally
        get the snapshot re-emitted with the enrichment columns attached.
        """
        domains = [m.domain for m in inputs["squat_matches"]]
        resolver = EnrichResolver(
            default_backends(self.world.zone, self.world.whois,
                             self.world.geoip),
            self.config.fault_plan,
            concurrency=self.config.enrich_workers,
            hedging=self.config.enrich_hedging,
        )
        started = time.perf_counter()
        table = resolver.resolve(domains)
        stats = resolver.stats
        self.perf.record_enrichment(
            stats.tasks, time.perf_counter() - started,
            hedges_fired=stats.hedges_fired,
            negcache_hits=stats.negcache_hits,
            negcache_misses=max(stats.tasks - stats.negcache_hits, 0))
        outputs: Dict[str, Any] = {"enrichment": table}
        if isinstance(self.world.zone, PackedZone):
            outputs["enriched_zone"] = attach_enrichment(self.world.zone, table)
        return outputs

    def _stage_publish(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        """Publish the enriched snapshot as the next serving generation.

        The serving layer (repro.serve) hot-reloads whatever generation
        the publish directory's CURRENT pointer names; this stage is how
        a pipeline run hands its freshly-enriched snapshot to a running
        query server.  The payload records where it landed — generation
        numbers continue the directory's history, so the artifact digest
        is fingerprint-derived, not content-derived.
        """
        from repro.serve.publisher import SnapshotPublisher  # lazy import
        publisher = SnapshotPublisher(self.config.publish_dir)
        generation, path = publisher.publish(inputs["enriched_zone"])
        return {"published": {"generation": generation, "path": str(path)}}

    def _stage_crawl(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        domains = [m.domain for m in inputs["squat_matches"]]
        checkpoint: Optional[CrawlCheckpoint] = None
        partial = ctx.partial()
        if partial is not None:
            checkpoint = partial["checkpoint"]
            self.clock.advance_to(partial["clock"])
            self._restore_injected(partial.get("injected"))

        def on_checkpoint(ckpt: CrawlCheckpoint) -> None:
            ctx.save_partial({"checkpoint": ckpt, "clock": self.clock.now(),
                              "injected": self._injected_snapshot()})

        result = self._crawl_checkpointed(
            domains, snapshot=0, ctx=ctx, resume=checkpoint,
            on_checkpoint=on_checkpoint)
        return {"crawl0": result}

    def _stage_ground_truth(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        return {"ground_truth": self.collect_ground_truth(inputs["squat_matches"])}

    def _stage_train(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        reports = self.train(inputs["ground_truth"])
        return {"cv_reports": reports, "model": (self.embedder, self.model)}

    def _stage_classify(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        # install the model artifact: when `train` was served from the
        # store this is the only place the trained pair reaches the run
        self.embedder, self.model = inputs["model"]
        flagged = self.detect_in_wild(inputs["squat_matches"], inputs["crawl0"])
        return {"flagged": flagged}

    def _stage_verify(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        return {"verified": self.verify(inputs["flagged"])}

    def _stage_follow_ups(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        domains = [v.domain for v in inputs["verified"]]
        done: List[CrawlSnapshot] = []
        next_snapshot = 1
        checkpoint: Optional[CrawlCheckpoint] = None
        partial = ctx.partial()
        if partial is not None:
            done = list(partial["done"])
            next_snapshot = partial["snapshot"]
            checkpoint = partial["checkpoint"]
            self.clock.advance_to(partial["clock"])
            self._restore_injected(partial.get("injected"))
        for snapshot in range(next_snapshot, self.config.snapshots):

            def on_checkpoint(ckpt: CrawlCheckpoint, _snapshot: int = snapshot) -> None:
                ctx.save_partial({"done": done, "snapshot": _snapshot,
                                  "checkpoint": ckpt,
                                  "clock": self.clock.now(),
                                  "injected": self._injected_snapshot()})

            done.append(self._crawl_checkpointed(
                domains, snapshot=snapshot, ctx=ctx, resume=checkpoint,
                on_checkpoint=on_checkpoint))
            checkpoint = None
            if snapshot + 1 < self.config.snapshots:
                ctx.save_partial({"done": done, "snapshot": snapshot + 1,
                                  "checkpoint": None,
                                  "clock": self.clock.now(),
                                  "injected": self._injected_snapshot()})
        return {"follow_ups": done}

    def _stage_evasion(self, inputs: Dict[str, Any], ctx: StageContext) -> Dict[str, Any]:
        flagged = inputs["flagged"]
        verified_set = {v.domain for v in inputs["verified"]}
        evasion_squatting = self.measure_evasion_for([
            (d.domain, d.brand, d.capture)
            for d in flagged
            if d.profile == "web" and d.domain in verified_set
        ])
        browser = self._make_browser(WEB_UA)
        reported_items: List[Tuple[str, str, PageCapture]] = []
        for report in self.world.phishtank.generate():
            if report.squat_type is not None or not report.still_phishing:
                continue
            capture = self._visit_degraded(
                browser, f"http://{report.domain}/", "evasion_reported")
            if capture is not None:
                reported_items.append((report.domain, report.brand, capture))
        evasion_reported = self.measure_evasion_for(reported_items)
        return {"evasion_squatting": evasion_squatting,
                "evasion_reported": evasion_reported}

    def build_graph(self, follow_up_snapshots: bool = True) -> StageGraph:
        """The pipeline as an explicit stage DAG (declared in run order).

        Worlds built with ``packed_zone=True`` get a leading ``pack``
        stage whose artifact is the snapshot file itself; dict-backed
        worlds keep the historical graph shape exactly.
        """
        packed = isinstance(self.world.zone, PackedZone)
        stages = []
        if packed:
            stages.append(Stage(
                name="pack", compute=self._stage_pack,
                outputs=("packed_zone",),
                digesters={"packed_zone": digest_packed_zone}))
        stages += [
            Stage(name="scan", compute=self._stage_scan,
                  inputs=("packed_zone",) if packed else (),
                  outputs=("squat_matches",),
                  digesters={"squat_matches": digest_squat_matches}),
            Stage(name="enrich", compute=self._stage_enrich,
                  inputs=("squat_matches",),
                  outputs=("enrichment", "enriched_zone") if packed
                  else ("enrichment",),
                  # no config slice: faults, concurrency, and hedging are
                  # all invisible in the table (determinism contract), so
                  # only the squat-match digest can invalidate this stage
                  digesters={"enrichment": digest_enrichment,
                             "enriched_zone": digest_packed_zone}
                  if packed else {"enrichment": digest_enrichment}),
            Stage(name="crawl", compute=self._stage_crawl,
                  inputs=("squat_matches",), outputs=("crawl0",),
                  config_fields=self._RESILIENCE_FIELDS,
                  digesters={"crawl0": digest_crawl_snapshot}),
            Stage(name="ground_truth", compute=self._stage_ground_truth,
                  inputs=("squat_matches",), outputs=("ground_truth",),
                  config_fields=("fault_plan", "annotation_seed",
                                 "phish_mislabel_rate", "benign_mislabel_rate",
                                 "verification_seed") + self._EXTRACTION_FIELDS,
                  digesters={"ground_truth": digest_ground_truth}),
            Stage(name="train", compute=self._stage_train,
                  inputs=("ground_truth",), outputs=("cv_reports", "model"),
                  config_fields=("classifier", "decision_threshold",
                                 "cv_folds", "rf_trees", "rf_max_depth",
                                 "knn_k", "embedding"),
                  digesters={"cv_reports": digest_cv_reports}),
            Stage(name="classify", compute=self._stage_classify,
                  inputs=("squat_matches", "crawl0", "model"),
                  outputs=("flagged",),
                  config_fields=("decision_threshold",
                                 "fault_plan") + self._EXTRACTION_FIELDS,
                  digesters={"flagged": digest_detections}),
            Stage(name="verify", compute=self._stage_verify,
                  inputs=("flagged",), outputs=("verified",),
                  config_fields=("verification_mode", "reviewer_error_rate",
                                 "crowd_size", "crowd_votes_per_item",
                                 "verification_seed"),
                  digesters={"verified": digest_verified}),
        ]
        if packed and self.config.publish_dir:
            stages.append(Stage(
                name="publish", compute=self._stage_publish,
                inputs=("enriched_zone",), outputs=("published",),
                config_fields=("publish_dir",)))
        if follow_up_snapshots:
            stages.append(Stage(
                name="follow_ups", compute=self._stage_follow_ups,
                inputs=("verified",), outputs=("follow_ups",),
                config_fields=("snapshots",) + self._RESILIENCE_FIELDS,
                digesters={"follow_ups": digest_crawl_snapshots}))
        stages.append(Stage(
            name="evasion", compute=self._stage_evasion,
            inputs=("flagged", "verified"),
            outputs=("evasion_squatting", "evasion_reported"),
            config_fields=("fault_plan",),
            digesters={"evasion_squatting": digest_evasion,
                       "evasion_reported": digest_evasion}))
        return StageGraph(stages)

    def context_digest(self) -> str:
        """Digest of the world universe this pipeline measures.

        Stored in every run manifest; the runner refuses to resume a
        manifest recorded against a different world.
        """
        return hashlib.sha256(repr(self.world.config).encode()).hexdigest()

    # ------------------------------------------------------------------
    # the whole thing
    # ------------------------------------------------------------------
    def run(
        self,
        follow_up_snapshots: bool = True,
        store: Optional[ArtifactStore] = None,
        run_id: Optional[str] = None,
        resume: Optional[str] = None,
        from_stage: Optional[str] = None,
        stop_after: Optional[str] = None,
    ) -> Optional[PipelineResult]:
        """Execute the stage graph; returns the material behind every exhibit.

        Args:
            store: persistent :class:`ArtifactStore` (defaults to a
                private in-memory store, i.e. classic single-shot runs).
            run_id: manifest id for this run (auto-allocated when omitted).
            resume: run id of a previous manifest in ``store``; stages
                whose fingerprints still match are served from the store.
            from_stage: force this stage and everything downstream of it
                to re-execute even when fingerprints match.
            stop_after: end the walk after the named stage completes and
                return ``None`` (the manifest is saved — used to model a
                killed process at stage granularity).
        """
        graph = self.build_graph(follow_up_snapshots)
        if store is None:
            store = ArtifactStore()
        previous: Optional[RunManifest] = None
        if resume is not None:
            previous = store.load_manifest(resume)
        runner = StageRunner(
            graph,
            store=store,
            config=self.config,
            run_id=run_id,
            previous=previous,
            from_stage=from_stage,
            perf=self.perf,
            health=self.health,
            injected=(self.fault_injector.injected
                      if self.fault_injector else None),
            clock=self.clock,
            context_digest=self.context_digest(),
        )
        self.run_id = runner.run_id
        outcome = runner.run(stop_after=stop_after)
        self.last_manifest = outcome.manifest
        self.perf.record_peak_rss()
        if outcome.interrupted:
            return None
        payloads = outcome.payloads()
        snapshots = [payloads["crawl0"]] + list(payloads.get("follow_ups", []))
        return PipelineResult(
            squat_matches=payloads["squat_matches"],
            crawl_snapshots=snapshots,
            ground_truth=payloads["ground_truth"],
            cv_reports=payloads["cv_reports"],
            flagged=payloads["flagged"],
            verified=payloads["verified"],
            evasion_squatting=payloads["evasion_squatting"],
            evasion_reported=payloads["evasion_reported"],
            enrichment=payloads.get("enrichment"),
            published=payloads.get("published"),
            health=self.health,
            injected_faults=(self.fault_injector.counts()
                             if self.fault_injector else {}),
            run_id=runner.run_id,
            perf=self.perf,
        )
