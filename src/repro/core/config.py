"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.features.embedding import EmbeddingConfig


@dataclass
class PipelineConfig:
    """Knobs for one SquatPhi run."""

    # classification
    classifier: str = "random_forest"   # random_forest | knn | naive_bayes
    decision_threshold: float = 0.5
    cv_folds: int = 10
    rf_trees: int = 30
    rf_max_depth: int = 14
    knn_k: int = 5
    embedding: EmbeddingConfig = field(default_factory=EmbeddingConfig)

    # crawl
    crawl_workers: int = 20
    snapshots: int = 4
    # Persist a partial crawl checkpoint to the artifact store every N
    # completed jobs (None = only on explicit interruption).  Purely an
    # execution knob: slicing a crawl never changes its snapshot digest,
    # so it is deliberately excluded from stage config slices.
    checkpoint_interval: Optional[int] = None

    # execution engine (repro.perf): process-pool widths for the snapshot
    # scan, forest/CV training, and feature extraction, plus the
    # content-addressed render/OCR/feature cache.  None of these knobs can
    # change results — see DESIGN.md's determinism contract — only how
    # fast they are produced.
    scan_workers: int = 1
    train_workers: int = 1
    extract_workers: int = 1
    # bulk-enrichment resolver (repro.enrich): in-flight concurrency and
    # straggler hedging.  Both are pure throughput knobs — the resolver's
    # table is byte-identical to the serial oracle at any setting.
    enrich_workers: int = 8
    enrich_hedging: bool = True
    # serving front (repro.serve): worker pool width and micro-batching
    # bounds for interactive verdict queries.  Same contract: verdicts
    # are pure in (name, snapshot generation), so these change QPS and
    # latency only.
    serve_workers: int = 1
    serve_max_batch: int = 64
    serve_max_delay: float = 0.005
    # when set, packed pipeline runs publish the enriched snapshot into
    # this directory as the next serving generation (see repro.serve)
    publish_dir: Optional[str] = None
    capture_cache: bool = True
    # route the learning core (tree split search, prediction, embedding)
    # and the extraction hot paths (OCR band decode, form-line removal,
    # spell-checker search) through their pre-vectorization reference
    # implementations (byte-identical output, much slower) — the baseline
    # leg of benchmarks/bench_training.py, never a production setting
    legacy_ml: bool = False

    # failure model & resilience (§3.2's crawl-stability fight): the fault
    # plan injects typed, seeded infrastructure failures into the measured
    # world; the remaining knobs shape how the measurement system absorbs
    # them.  ``fault_plan=None`` keeps the world perfectly reliable.
    fault_plan: Optional[FaultPlan] = None
    crawl_max_retries: int = 2
    backoff_base_delay: float = 1.0
    backoff_max_delay: float = 60.0
    backoff_jitter: float = 0.5
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 300.0

    # verification oracle: the "manual examination" step of §6.1.  A small
    # reviewer error rate keeps the oracle honest (humans mislabel too).
    # "expert" = one careful reviewer per domain; "crowd" = a §7-style
    # crowdsourced queue with majority voting.
    verification_mode: str = "expert"
    reviewer_error_rate: float = 0.005
    crowd_size: int = 9
    crowd_votes_per_item: int = 3
    verification_seed: int = 97

    # ground-truth annotation noise (§4.1/§5.3): labels come from
    # crowdsourced reports plus screenshot-based manual review, both
    # imperfect — the paper itself finds 57% of "verified" PhishTank URLs
    # were no longer phishing.  Residual error after their relabeling:
    phish_mislabel_rate: float = 0.08   # true phishing annotated benign
    benign_mislabel_rate: float = 0.015  # true benign annotated phishing
    annotation_seed: int = 311

    # feature extraction
    use_ocr: bool = True
    use_spellcheck: bool = True
    ocr_error_rate: float = 0.03
