"""Run reports: structured exhibit data and JSON export.

A :class:`RunReport` snapshots every exhibit of one SquatPhi run into plain
dictionaries so results can be persisted, diffed across runs, or rendered.
This is what a deployed scanner (§7) would archive per scan.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis import measure_evasion
from repro.analysis.figures import (
    brand_accumulation_curve,
    phish_squat_type_histogram,
    squat_type_histogram,
    top_brands_by_count,
    top_targeted_brands,
    verified_phish_cdf,
)
from repro.analysis.tables import (
    blacklist_coverage,
    crawl_stats,
    wild_detection_rows,
)

PathLike = Union[str, Path]


@dataclass
class RunReport:
    """All exhibit data of one pipeline run, as JSON-safe structures."""

    squat_total: int = 0
    squat_types: Dict[str, int] = field(default_factory=dict)
    top_squatted_brands: List[Dict[str, Any]] = field(default_factory=list)
    brand_skew_top20_percent: float = 0.0
    crawl: List[Dict[str, Any]] = field(default_factory=list)
    classifiers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    wild_detection: List[Dict[str, Any]] = field(default_factory=list)
    verified_total: int = 0
    verified_types: Dict[str, int] = field(default_factory=dict)
    top_targeted: List[Dict[str, Any]] = field(default_factory=list)
    verified_cdf: List[List[float]] = field(default_factory=list)
    evasion: Dict[str, Dict[str, float]] = field(default_factory=dict)
    blacklists: List[Dict[str, Any]] = field(default_factory=list)
    longevity: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: PathLike) -> None:
        """Write the report to a JSON file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "RunReport":
        """Load a previously-saved report."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(**data)


def build_report(result, world) -> RunReport:
    """Assemble a :class:`RunReport` from a pipeline result."""
    report = RunReport()

    report.squat_total = len(result.squat_matches)
    report.squat_types = squat_type_histogram(result.squat_matches)
    report.top_squatted_brands = [
        {"brand": brand, "count": count, "percent": round(pct, 2)}
        for brand, count, pct in top_brands_by_count(result.squat_matches, 10)
    ]
    curve = brand_accumulation_curve(result.squat_matches)
    if len(curve) >= 20:
        report.brand_skew_top20_percent = round(curve[19], 2)

    if result.crawl_snapshots:
        report.crawl = [
            {
                "profile": row.profile,
                "live": row.live_domains,
                "no_redirect": row.no_redirect,
                "redirect_original": row.redirect_original,
                "redirect_market": row.redirect_market,
                "redirect_other": row.redirect_other,
            }
            for row in crawl_stats(result.crawl_snapshots[0],
                                   result.squat_matches, world.catalog)
        ]

    report.classifiers = {
        name: {
            "fp": round(r.false_positive_rate, 4),
            "fn": round(r.false_negative_rate, 4),
            "auc": round(r.auc, 4),
            "acc": round(r.accuracy, 4),
        }
        for name, r in result.cv_reports.items()
    }

    report.wild_detection = [
        {
            "population": row.population,
            "flagged": row.classified_phishing,
            "confirmed": row.confirmed,
            "brands": row.related_brands,
        }
        for row in wild_detection_rows(result, len(result.squat_matches))
    ]

    report.verified_total = len(result.verified)
    report.verified_types = phish_squat_type_histogram(result.verified)
    report.top_targeted = [
        {"brand": brand, "web": web, "mobile": mobile}
        for brand, web, mobile in top_targeted_brands(result.verified, 20)
    ]
    report.verified_cdf = [[float(x), round(y, 2)]
                           for x, y in verified_phish_cdf(result.verified)]

    for key, measurements in (("squatting", result.evasion_squatting),
                              ("reported", result.evasion_reported)):
        summary = measure_evasion(measurements, key)
        report.evasion[key] = {
            "count": summary.count,
            "layout_mean": round(summary.layout_mean, 2),
            "layout_std": round(summary.layout_std, 2),
            "string_rate": round(summary.string_rate, 4),
            "code_rate": round(summary.code_rate, 4),
        }

    report.blacklists = [
        {"service": row.service, "detected": row.detected, "total": row.total,
         "rate": round(row.rate, 4)}
        for row in blacklist_coverage(world.blacklists, result.verified_domains())
    ]

    if len(result.crawl_snapshots) > 1:
        from repro.analysis.lifetime import summarize_longevity

        summary = summarize_longevity(result.crawl_snapshots,
                                      result.verified_domains())
        report.longevity = {
            "domains": summary["domains"],
            "alive_full_window": summary["alive_full_window"],
            "survival_end": round(float(summary["survival_end"]), 4),
            "median_lifetime": summary["median_lifetime"],
            "survival_curve": [[t, round(float(s), 4)]
                               for t, s in summary["survival_curve"]],
        }
    return report
