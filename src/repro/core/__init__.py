"""SquatPhi: the paper's end-to-end measurement pipeline.

Stages (mirroring §3-§6):

1. **squatting detection** — scan the DNS snapshot for domains squatting any
   catalog brand (five orthogonal types);
2. **crawl** — distributed crawl of every squatting domain with web and
   mobile profiles, recording HTML + screenshots + redirects; weekly
   follow-up snapshots of flagged domains;
3. **ground truth** — pull PhishTank reports, crawl them, and label pages
   (valid phishing vs replaced/benign) plus easy-to-confuse benign squat
   pages;
4. **classification** — extract OCR/lexical/form features, embed, train
   Naive Bayes / k-NN / Random Forest, cross-validate, deploy the best;
5. **wild detection + verification** — classify every crawled squat page,
   then verify the flagged ones (the paper's manual examination, modelled as
   a ground-truth oracle with reviewer noise);
6. **characterization** — evasion measurement, longevity, blacklist checks.

Every stage degrades gracefully under the injected fault model
(:mod:`repro.faults`): failed crawls retry with backoff behind circuit
breakers, failed side visits are skipped and accounted, and the whole run
surfaces a :class:`~repro.faults.resilience.CrawlHealth` report.
"""

from repro.core.config import PipelineConfig
from repro.faults import CrawlHealth, FaultInjector, FaultPlan
from repro.core.monitor import BrandMonitor, MonitorAlert
from repro.core.pipeline import (
    GroundTruthPage,
    PipelineResult,
    SquatPhi,
    VerifiedPhish,
    WildDetection,
)
from repro.core.reporting import RunReport, build_report
from repro.core.review import Annotator, ReviewQueue, default_crowd
from repro.perf import CaptureCache, PerfReport

__all__ = [
    "Annotator",
    "BrandMonitor",
    "CaptureCache",
    "CrawlHealth",
    "FaultInjector",
    "FaultPlan",
    "PerfReport",
    "GroundTruthPage",
    "MonitorAlert",
    "PipelineConfig",
    "PipelineResult",
    "ReviewQueue",
    "RunReport",
    "SquatPhi",
    "VerifiedPhish",
    "WildDetection",
    "build_report",
    "default_crowd",
]
