"""Blacklist services: PhishTank, a VirusTotal-style aggregator, eCrimeX.

Table 12's evasion measurement asks: one month after our crawl, which of the
verified squatting phishing domains do popular blacklists know about?  The
paper finds PhishTank 0%, VirusTotal's 70+ lists 8.5%, eCrimeX 0.2%, and
91.5% undetected.

Each service here has a *coverage model*: a probability that a phishing URL
of a given kind (squatting vs ordinary) has been reported and listed within
the observation window.  Squatting phish are "elite" — rarely reported —
while ordinary PhishTank-style phishing is, by construction, well covered.
The paper's comparison baseline ([33]: compromised-server phishing is
blacklisted in <10 days) is modelled by per-listing delay draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class BlacklistEntry:
    """One listed URL/domain with the day (offset) it was listed."""

    domain: str
    listed_day: int


class Blacklist:
    """A single blacklist with its coverage and latency model."""

    def __init__(
        self,
        name: str,
        rng: "np.random.Generator",
        squatting_coverage: float,
        ordinary_coverage: float,
        mean_listing_delay_days: float = 7.0,
    ) -> None:
        self.name = name
        self._rng = rng
        self.squatting_coverage = squatting_coverage
        self.ordinary_coverage = ordinary_coverage
        self.mean_listing_delay_days = mean_listing_delay_days
        self._entries: Dict[str, BlacklistEntry] = {}

    def ingest(self, domain: str, is_squatting: bool) -> Optional[BlacklistEntry]:
        """Expose a phishing domain to the reporting ecosystem.

        With coverage probability the domain eventually gets listed, after a
        geometric-ish delay.  Returns the entry if listed.
        """
        coverage = self.squatting_coverage if is_squatting else self.ordinary_coverage
        if self._rng.random() >= coverage:
            return None
        delay = int(self._rng.exponential(self.mean_listing_delay_days))
        entry = BlacklistEntry(domain=domain.lower(), listed_day=delay)
        self._entries[entry.domain] = entry
        return entry

    def add_listing(self, domain: str, day: int = 0) -> None:
        """Force-list a domain (e.g. PhishTank's own verified feed)."""
        self._entries[domain.lower()] = BlacklistEntry(domain=domain.lower(), listed_day=day)

    def contains(self, domain: str, on_day: int = 30) -> bool:
        """Is the domain listed by the given observation day?"""
        entry = self._entries.get(domain.lower())
        return entry is not None and entry.listed_day <= on_day

    def __len__(self) -> int:
        return len(self._entries)


class VirusTotalAggregator:
    """70+ member blacklists behind one query interface."""

    def __init__(
        self,
        rng: "np.random.Generator",
        member_count: int = 70,
        squatting_coverage: float = 0.0013,
        ordinary_coverage: float = 0.04,
    ) -> None:
        # per-member coverage is low; aggregate coverage across ~70 members
        # lands near the paper's 8.5% for squatting phish
        self.members = [
            Blacklist(
                name=f"vt-member-{i:02d}",
                rng=rng,
                squatting_coverage=squatting_coverage,
                ordinary_coverage=ordinary_coverage,
                mean_listing_delay_days=9.0,
            )
            for i in range(member_count)
        ]

    def ingest(self, domain: str, is_squatting: bool) -> None:
        for member in self.members:
            member.ingest(domain, is_squatting)

    def positives(self, domain: str, on_day: int = 30) -> int:
        """How many member lists flag the domain."""
        return sum(1 for member in self.members if member.contains(domain, on_day))

    def contains(self, domain: str, on_day: int = 30) -> bool:
        return self.positives(domain, on_day) > 0


@dataclass
class BlacklistCheckResult:
    """Outcome of checking one domain across all services (Table 12 row
    fodder)."""

    domain: str
    phishtank: bool
    virustotal: bool
    ecrimex: bool

    @property
    def detected(self) -> bool:
        return self.phishtank or self.virustotal or self.ecrimex


class BlacklistEcosystem:
    """The three services the paper queries, with one ingestion entry point."""

    def __init__(self, rng: "np.random.Generator") -> None:
        self.phishtank = Blacklist(
            "phishtank", rng,
            squatting_coverage=0.001, ordinary_coverage=0.95,
            mean_listing_delay_days=2.0,
        )
        self.virustotal = VirusTotalAggregator(rng)
        self.ecrimex = Blacklist(
            "ecrimex", rng,
            squatting_coverage=0.003, ordinary_coverage=0.30,
            mean_listing_delay_days=5.0,
        )

    def ingest(self, domain: str, is_squatting: bool) -> None:
        """Expose a phishing domain to all reporting channels."""
        self.phishtank.ingest(domain, is_squatting)
        self.virustotal.ingest(domain, is_squatting)
        self.ecrimex.ingest(domain, is_squatting)

    def check(self, domain: str, on_day: int = 30) -> BlacklistCheckResult:
        """Query all services for one domain at an observation day."""
        return BlacklistCheckResult(
            domain=domain,
            phishtank=self.phishtank.contains(domain, on_day),
            virustotal=self.virustotal.contains(domain, on_day),
            ecrimex=self.ecrimex.contains(domain, on_day),
        )

    def check_all(
        self, domains: Iterable[str], on_day: int = 30
    ) -> List[BlacklistCheckResult]:
        return [self.check(domain, on_day) for domain in domains]
