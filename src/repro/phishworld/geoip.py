"""Synthetic IP allocation and geolocation registry (Fig 15).

IP blocks are assigned to countries with the skew the paper reports for
phishing hosting (US heaviest, then DE, GB, FR, IE, CA, JP, NL, CH, RU and a
long tail), and benign hosting gets its own flatter mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# (country code, phishing-hosting weight) — proportions follow Fig 15.
PHISH_COUNTRY_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("US", 494), ("DE", 106), ("GB", 77), ("FR", 44), ("IE", 39),
    ("CA", 34), ("JP", 32), ("NL", 29), ("CH", 13), ("RU", 9),
    ("IT", 8), ("ES", 8), ("SE", 7), ("PL", 6), ("BR", 6), ("AU", 6),
    ("IN", 5), ("SG", 5), ("HK", 4), ("TR", 4), ("UA", 4), ("RO", 3),
    ("CZ", 3), ("DK", 3), ("NO", 3), ("FI", 2), ("AT", 2), ("BE", 2),
    ("PT", 2), ("GR", 2), ("MX", 2), ("AR", 1), ("CL", 1), ("ZA", 1),
    ("KR", 1), ("TW", 1), ("TH", 1), ("VN", 1), ("ID", 1), ("PH", 1),
    ("MY", 1), ("IL", 1), ("AE", 1), ("SA", 1), ("NZ", 1), ("HU", 1),
    ("SK", 1), ("BG", 1), ("HR", 1), ("LT", 1), ("LV", 1), ("EE", 1),
    ("IS", 1),
)

BENIGN_COUNTRY_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("US", 300), ("DE", 90), ("GB", 80), ("FR", 60), ("NL", 55),
    ("JP", 50), ("CA", 45), ("AU", 30), ("RU", 30), ("CN", 30),
    ("IN", 25), ("BR", 25), ("IT", 25), ("ES", 20), ("SE", 15),
    ("PL", 15), ("CH", 12), ("IE", 10), ("SG", 10), ("KR", 10),
)


class GeoIPRegistry:
    """Allocates IPs per country and answers reverse lookups."""

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng
        self._country_of: Dict[str, str] = {}
        self._counter = 0

    def _allocate(self, country: str) -> str:
        """Mint a fresh IPv4 address and bind it to a country."""
        self._counter += 1
        value = self._counter
        # avoid 0/255 edge octets for realism
        octets = (
            1 + (value >> 21) % 220,
            (value >> 14) % 250,
            (value >> 7) % 250,
            1 + value % 250,
        )
        ip = ".".join(str(o) for o in octets)
        self._country_of[ip] = country
        return ip

    def allocate_phishing_ip(self) -> str:
        """An address drawn from the phishing-hosting country mix."""
        return self._allocate(self._draw(PHISH_COUNTRY_WEIGHTS))

    def allocate_benign_ip(self) -> str:
        """An address drawn from the general-hosting country mix."""
        return self._allocate(self._draw(BENIGN_COUNTRY_WEIGHTS))

    def _draw(self, weights: Sequence[Tuple[str, float]]) -> str:
        countries = [c for c, _ in weights]
        probabilities = np.array([w for _, w in weights], dtype=float)
        probabilities /= probabilities.sum()
        return str(self._rng.choice(countries, p=probabilities))

    def country(self, ip: str) -> Optional[str]:
        """Country code hosting an address, or None if unallocated."""
        return self._country_of.get(ip)

    def country_many(self, ips: Sequence[str]) -> List[Optional[str]]:
        """Bulk reverse lookup, one result slot per input address."""
        country_of = self._country_of
        return [country_of.get(ip) for ip in ips]

    def histogram(self, ips: Sequence[str]) -> Dict[str, int]:
        """Country → count over a list of addresses (the Fig 15 series)."""
        counts: Dict[str, int] = {}
        for ip in ips:
            country = self._country_of.get(ip, "??")
            counts[country] = counts.get(country, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
