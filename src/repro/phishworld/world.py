"""Assemble the synthetic internet from a :class:`WorldConfig`.

The world is a single deterministic draw: DNS snapshot, hosted web, whois,
geoip, Alexa ranks, marketplaces, the PhishTank feed, and the blacklist
ecosystem, plus ground-truth labels for scoring.  Proportions follow the
paper's reported distributions (see DESIGN.md §1); absolute counts scale
with the config.

The measurement pipeline (:mod:`repro.core.pipeline`) only ever touches the
*interfaces* a real measurement would: the DNS snapshot, HTTP via the
crawler, whois/geoip/Alexa lookups, and blacklist queries.  Ground truth is
consulted solely by the "manual verification" oracle and the evaluation
harness.
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.brands.alexa import AlexaRanking, synth_brand_name
from repro.brands.catalog import Brand, BrandCatalog, build_paper_catalog
from repro.dns.idna import label_to_ascii
from repro.dns.packedzone import PackedZone, PackedZoneBuilder
from repro.dns.records import KNOWN_TLDS, split_domain
from repro.dns.zone import ZoneStore
from repro.phishworld.attacker import (
    EvasionProfile,
    PhishingPageBuilder,
    PhishingPageSpec,
    SCAM_THEMES,
    draw_evasion_profile,
)
from repro.phishworld.blacklists import BlacklistEcosystem
from repro.phishworld.geoip import GeoIPRegistry
from repro.phishworld.marketplace import MARKETPLACE_DOMAINS
from repro.phishworld.phishtank import PhishTankFeed, PhishTankReport
from repro.phishworld.sites import (
    bare_login_page,
    brand_original_page,
    for_sale_page,
    fan_forum_page,
    newsletter_page,
    organic_page,
    parked_page,
    plugin_shop_page,
    portal_login_page,
    survey_page,
)
from repro.phishworld.whois import WhoisRegistry
from repro.squatting.bits import BitsModel
from repro.squatting.combo import COMMON_AFFIXES, ComboModel
from repro.squatting.homograph import HomographModel
from repro.squatting.typo import TypoModel
from repro.squatting.types import SquatType
from repro.squatting.wrongtld import WrongTLDModel
from repro.web.html import Element
from repro.web.http import UserAgent
from repro.web.server import HostedSite, SiteBehavior, WebHost

# Squat-type mix among registered squatting domains (Fig 2 proportions).
SQUAT_TYPE_MIX: Tuple[Tuple[SquatType, float], ...] = (
    (SquatType.COMBO, 0.565),
    (SquatType.TYPO, 0.253),
    (SquatType.BITS, 0.073),
    (SquatType.WRONG_TLD, 0.060),
    (SquatType.HOMOGRAPH, 0.049),
)

# Squat-type mix among *phishing* squats (Fig 12 proportions).
PHISH_TYPE_MIX: Tuple[Tuple[SquatType, float], ...] = (
    (SquatType.COMBO, 0.40),
    (SquatType.TYPO, 0.19),
    (SquatType.HOMOGRAPH, 0.18),
    (SquatType.BITS, 0.16),
    (SquatType.WRONG_TLD, 0.07),
)

# Fig 4's squat-magnet brands with their share of all squatting domains.
SQUAT_HEAVY_BRANDS: Tuple[Tuple[str, float], ...] = (
    ("vice", 0.0598), ("porn", 0.0276), ("bt", 0.0246),
    ("apple", 0.0205), ("ford", 0.0185),
)

# Brands whose squats disproportionately redirect to the original site
# (Table 3) or to marketplaces (Table 4), with boosted probabilities.
DEFENSIVE_BRANDS = ("shutterfly", "alliancebank", "rabobank", "priceline", "carfax")
MARKET_BRANDS = ("zocdoc", "comerica", "verizon", "amazon", "paypal")

# Fig 13 head: brands attracting the most squatting phishing, with weights.
PHISH_TARGET_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("google", 14.0), ("ford", 1.8), ("facebook", 1.7), ("bitcoin", 1.6),
    ("archive", 1.5), ("amazon", 1.5), ("europa", 1.4), ("cisco", 1.4),
    ("discover", 1.3), ("apple", 1.3), ("porn", 1.2), ("healthcare", 1.2),
    ("samsung", 1.1), ("intel", 1.1), ("uber", 1.1), ("people", 1.0),
    ("citi", 1.0), ("smile", 1.0), ("history", 1.0), ("target", 1.0),
    ("youtube", 0.9), ("android", 0.9), ("compass", 0.9), ("paypal", 0.9),
    ("poste", 0.8), ("realtor", 0.8), ("usda", 0.8), ("visa", 0.8),
    ("patient", 0.7), ("arena", 0.7), ("mint", 0.7), ("xbox", 0.7),
    ("discovery", 0.6), ("cams", 0.6), ("ebay", 0.6), ("slate", 0.6),
    ("weather", 0.6), ("delta", 0.6), ("blogger", 0.5), ("chase", 0.5),
    ("battle", 0.5), ("pandora", 0.5), ("nets53", 0.5), ("cnet", 0.5),
    ("skyscanner", 0.4), ("motorsport", 0.4), ("bing", 0.4), ("sina", 0.4),
    ("dict", 0.4), ("bbb", 0.4), ("bt", 0.4), ("tsb", 0.4),
    ("twitter", 0.35), ("cnn", 0.35), ("nike", 0.35), ("gq", 0.3),
    ("pinterest", 0.3), ("msn", 0.3), ("chess", 0.3), ("nyu", 0.3),
    ("nationwide", 0.3), ("credit-agricole", 0.3), ("cua", 0.3),
    ("fifa", 0.25), ("columbia", 0.25), ("tsn", 0.25),
    ("bodybuilding", 0.25), ("microsoft", 0.25), ("adp", 0.25),
    ("dropbox", 0.2), ("github", 0.2), ("santander", 0.15),
)

# Hand-placed phishing domains reproducing the paper's case studies
# (Table 10, Table 13, Fig 14).  (domain, brand, expected type, theme,
# cloaking, lifetime, resurrects)
SEEDED_PHISH: Tuple[Tuple[str, str, SquatType, str, str, int, bool], ...] = (
    ("goog1e.nl", "google", SquatType.HOMOGRAPH, "login", "both", 4, False),
    ("goofle.com.ua", "google", SquatType.BITS, "search", "both", 4, False),
    ("gooogle.com.uy", "google", SquatType.TYPO, "login", "both", 4, False),
    ("ggoogle.in", "google", SquatType.TYPO, "login", "both", 4, False),
    ("facecook.mobi", "facebook", SquatType.BITS, "login", "mobile", 4, False),
    ("facebook-c.com", "facebook", SquatType.COMBO, "login", "both", 4, False),
    ("face-book.online", "facebook", SquatType.TYPO, "login", "both", 4, False),
    ("facebook-sigin.com", "facebook", SquatType.COMBO, "login", "both", 4, False),
    ("faceboolk.ml", "facebook", SquatType.TYPO, "login", "mobile", 2, False),
    ("tacebook.ga", "facebook", SquatType.HOMOGRAPH, "login", "both", 2, True),
    ("faceb00k.bid", "facebook", SquatType.HOMOGRAPH, "login", "both", 4, False),
    (label_to_ascii("facebooκ") + ".com", "facebook", SquatType.HOMOGRAPH,
     "login", "both", 4, False),
    ("go-uberfreight.com", "uber", SquatType.COMBO, "login", "both", 4, False),
    ("mobile-adp.com", "adp", SquatType.COMBO, "payroll", "both", 4, False),
    ("live-microsoftsupport.com", "microsoft", SquatType.COMBO,
     "support", "both", 4, False),
    ("securemail-citizenslc.com", "citizenslc", SquatType.COMBO,
     "payment", "both", 4, False),
    ("apple-prizeuk.com", "apple", SquatType.COMBO, "prize", "both", 4, False),
    ("get-bitcoin.com", "bitcoin", SquatType.COMBO, "payment", "both", 4, False),
    ("yuotube.com", "youtube", SquatType.TYPO, "login", "both", 4, False),
    ("youtub3.com", "youtube", SquatType.HOMOGRAPH, "login", "mobile", 4, False),
    ("paypal-cash.com", "paypal", SquatType.COMBO, "payment", "both", 4, False),
    ("paypal-learning.com", "paypal", SquatType.COMBO, "login", "both", 4, False),
    ("ebay-selling.net", "ebay", SquatType.COMBO, "login", "both", 4, False),
    ("ebay-auction.eu", "ebay", SquatType.COMBO, "payment", "both", 4, False),
    ("formateurs-microsoft.com", "microsoft", SquatType.COMBO,
     "login", "both", 4, False),
    ("twitter-gostore.com", "twitter", SquatType.COMBO, "prize", "both", 4, False),
    ("dropbox-com.com", "dropbox", SquatType.COMBO, "login", "both", 4, False),
    ("santander-grants.com", "santander", SquatType.COMBO, "payment",
     "both", 4, False),
    ("buy-bitcoin-with-paypal-paysafecard-credit-card-ukash.com", "bitcoin",
     SquatType.COMBO, "payment", "both", 4, False),
)

# The subset of seeded domains shown as screenshots in Fig 14; these get a
# pinned evasion profile so the scam content stays on screen.
FIG14_CASES = frozenset({
    "goofle.com.ua", "go-uberfreight.com", "live-microsoftsupport.com",
    "mobile-adp.com", "securemail-citizenslc.com",
})


@dataclass
class WorldConfig:
    """Scale and behaviour knobs for one synthetic universe."""

    seed: int = 1803
    n_brands: int = 702
    n_organic_domains: int = 8000
    n_squat_domains: int = 8000
    n_phish_domains: int = 240          # squatting phishing (≈3% of squats
                                        # at this scale; rates are reported
                                        # relative to the squat population)
    phishtank_reports: int = 1500
    snapshots: int = 4

    # liveness / redirect behaviour of squat domains (Table 2 rates)
    live_rate: float = 0.55
    redirect_rate: float = 0.127        # of live domains
    redirect_original_share: float = 0.135  # of redirecting domains
    redirect_market_share: float = 0.236
    # confusable benign content among live, non-redirect squat pages
    confusable_page_rate: float = 0.10

    # build the DNS snapshot as a packed columnar zone
    # (repro.dns.packedzone) instead of a dict-backed ZoneStore.  Purely a
    # representation knob: record stream and iteration order are
    # identical, so every scan digest byte-matches the dict-backed world.
    packed_zone: bool = False

    def scaled(self, factor: float) -> "WorldConfig":
        """A copy with population sizes scaled by ``factor``."""
        return WorldConfig(
            seed=self.seed,
            n_brands=self.n_brands,
            n_organic_domains=max(10, int(self.n_organic_domains * factor)),
            n_squat_domains=max(10, int(self.n_squat_domains * factor)),
            n_phish_domains=max(2, int(self.n_phish_domains * factor)),
            phishtank_reports=max(20, int(self.phishtank_reports * factor)),
            snapshots=self.snapshots,
            live_rate=self.live_rate,
            redirect_rate=self.redirect_rate,
            redirect_original_share=self.redirect_original_share,
            redirect_market_share=self.redirect_market_share,
            confusable_page_rate=self.confusable_page_rate,
            packed_zone=self.packed_zone,
        )


def tiny_config(seed: int = 1803) -> WorldConfig:
    """A test-sized world (hundreds of domains, builds in seconds)."""
    return WorldConfig(
        seed=seed,
        n_brands=702,
        n_organic_domains=300,
        n_squat_domains=500,
        n_phish_domains=40,
        phishtank_reports=160,
    )


@dataclass
class PhishingSiteRecord:
    """Ground-truth record of one attacker-controlled squatting domain."""

    domain: str
    brand: str
    squat_type: SquatType
    theme: str
    evasion: EvasionProfile
    lifetime_snapshots: int
    resurrects: bool
    ip: str


@dataclass
class SyntheticInternet:
    """The assembled universe handed to the measurement pipeline."""

    config: WorldConfig
    catalog: BrandCatalog
    zone: Union[ZoneStore, PackedZone]
    host: WebHost
    whois: WhoisRegistry
    geoip: GeoIPRegistry
    alexa: AlexaRanking
    blacklists: BlacklistEcosystem
    phishtank: PhishTankFeed
    phishing_sites: List[PhishingSiteRecord] = field(default_factory=list)
    squat_truth: Dict[str, Tuple[str, SquatType]] = field(default_factory=dict)

    def label_of(self, domain: str) -> Optional[str]:
        """Ground-truth site label (oracle use only)."""
        site = self.host.get(domain)
        return site.label if site else None

    def phishing_domains(self) -> List[str]:
        return [record.domain for record in self.phishing_sites]


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------

class _WorldBuilder:
    """Stateful assembly of one universe (single use)."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.catalog = build_paper_catalog(config.n_brands)
        # the packed builder streams records straight into columnar byte
        # buffers — no per-record DNSRecord objects are ever materialized;
        # it accepts the same add_name calls as the dict store
        self.zone: Union[ZoneStore, PackedZoneBuilder] = (
            PackedZoneBuilder() if config.packed_zone else ZoneStore())
        self.host = WebHost()
        self.whois = WhoisRegistry(np.random.default_rng(config.seed + 1))
        self.geoip = GeoIPRegistry(np.random.default_rng(config.seed + 2))
        self.alexa = AlexaRanking()
        self.blacklists = BlacklistEcosystem(np.random.default_rng(config.seed + 3))
        self.phishtank = PhishTankFeed(
            self.catalog,
            np.random.default_rng(config.seed + 5),
            total_reports=config.phishtank_reports,
        )
        self.claimed: Set[str] = set()
        self.phishing_sites: List[PhishingSiteRecord] = []
        self.squat_truth: Dict[str, Tuple[str, SquatType]] = {}
        self._typo = TypoModel()
        self._bits = BitsModel()
        self._homograph = HomographModel()
        self._wrongtld = WrongTLDModel()
        self._squat_tlds = ("com", "net", "org", "pw", "tk", "ml", "ga",
                            "top", "xyz", "online", "site", "bid", "link",
                            "info", "de", "nl", "in", "it", "pl", "eu", "co")

    # ------------------------------------------------------------------
    def build(self) -> SyntheticInternet:
        self._place_brand_originals()
        self._place_marketplaces()
        self._place_organic_domains()
        phish_plan = self._plan_phishing_domains()
        self._place_squat_domains(reserved={d for d, *_ in phish_plan})
        self._place_phishing_domains(phish_plan)
        self._place_phishtank_urls()
        zone = (self.zone.build() if isinstance(self.zone, PackedZoneBuilder)
                else self.zone)
        return SyntheticInternet(
            config=self.config,
            catalog=self.catalog,
            zone=zone,
            host=self.host,
            whois=self.whois,
            geoip=self.geoip,
            alexa=self.alexa,
            blacklists=self.blacklists,
            phishtank=self.phishtank,
            phishing_sites=self.phishing_sites,
            squat_truth=self.squat_truth,
        )

    # ------------------------------------------------------------------
    def _register(self, domain: str, ip: str, label: str,
                  behavior: SiteBehavior, provider=None, redirect_to=None,
                  source: str = "zone") -> None:
        self.zone.add_name(domain, ip=ip, source=source)
        self.host.register(HostedSite(
            domain=domain, behavior=behavior, provider=provider,
            redirect_to=redirect_to, ip=ip, label=label,
        ))
        self.claimed.add(domain)

    @staticmethod
    def _static_provider(page: Element):
        """Provider serving the same page to every profile, forever."""
        def provide(user_agent: UserAgent, snapshot: int) -> Optional[Element]:
            return page
        return provide

    # ------------------------------------------------------------------
    def _place_brand_originals(self) -> None:
        for rank, brand in enumerate(self.catalog, start=1):
            page = brand_original_page(brand)
            ip = self.geoip.allocate_benign_ip()
            self._register(brand.domain, ip, "original", SiteBehavior.CONTENT,
                           provider=self._static_provider(page), source="alexa-1m")
            self.alexa.assign_rank(brand.domain, rank)
            self.whois.register_organic(brand.domain)

    def _place_marketplaces(self) -> None:
        for domain in MARKETPLACE_DOMAINS:
            page = for_sale_page(domain)
            ip = self.geoip.allocate_benign_ip()
            self._register(domain, ip, "marketplace", SiteBehavior.CONTENT,
                           provider=self._static_provider(page))
            self.whois.register_organic(domain)

    def _place_organic_domains(self) -> None:
        rng = self.rng
        brand_labels = self.catalog.core_labels()
        placed = 0
        index = 0
        while placed < self.config.n_organic_domains:
            index += 1
            name = synth_brand_name(1_000_000 + index)
            tld = self._squat_tlds[int(rng.integers(0, len(self._squat_tlds)))]
            domain = f"{name}.{tld}"
            if domain in self.claimed or name in brand_labels:
                continue
            placed += 1
            ip = self.geoip.allocate_benign_ip()
            if rng.random() < 0.75:
                page = organic_page(domain, rng)
                self._register(domain, ip, "benign", SiteBehavior.CONTENT,
                               provider=self._static_provider(page))
            else:
                self._register(domain, ip, "benign-dead", SiteBehavior.DEAD)
            if rng.random() < 0.02:
                self.alexa.assign_rank(domain)
            self.whois.register_organic(domain)

    # ------------------------------------------------------------------
    # squatting domains
    # ------------------------------------------------------------------
    def _brand_squat_weights(self) -> Tuple[List[Brand], "np.ndarray"]:
        """Per-brand share of the squat population (Fig 3/4 skew)."""
        brands = list(self.catalog)
        weights = np.empty(len(brands))
        heavy = dict(SQUAT_HEAVY_BRANDS)
        # Table 3/4 brands need a visible (but sub-magnet) squat footprint
        # so their redirect behaviour is measurable at small scale
        for name in DEFENSIVE_BRANDS + MARKET_BRANDS:
            heavy.setdefault(name, 0.008)
        heavy_mass = sum(heavy.values())
        # remaining mass: shifted Zipf over the rest.  The shift keeps every
        # tail brand below the Fig 4 magnet brands; the 0.95 exponent makes
        # the top-20 brands cover >30% of squats (Fig 3).
        rest = [b for b in brands if b.name not in heavy]
        ranks = np.arange(1, len(rest) + 1, dtype=float)
        zipf = (ranks + 8.0) ** -0.95
        zipf *= (1.0 - heavy_mass) / zipf.sum()
        share = {brand.name: value for brand, value in zip(rest, zipf)}
        share.update(heavy)
        for i, brand in enumerate(brands):
            weights[i] = share[brand.name]
        return brands, weights / weights.sum()

    def _draw_squat_type(self, mix: Sequence[Tuple[SquatType, float]]) -> SquatType:
        roll = self.rng.random()
        accumulated = 0.0
        for squat_type, share in mix:
            accumulated += share
            if roll < accumulated:
                return squat_type
        return mix[-1][0]

    def _mint_squat_domain(self, brand: Brand, squat_type: SquatType) -> Optional[str]:
        """Generate one fresh squat domain of the requested type."""
        rng = self.rng
        label = brand.core_label
        tld = self._squat_tlds[int(rng.integers(0, len(self._squat_tlds)))]
        for _attempt in range(6):
            if squat_type == SquatType.COMBO:
                affix = COMMON_AFFIXES[int(rng.integers(0, len(COMMON_AFFIXES)))]
                style = rng.random()
                if style < 0.45:
                    candidate = f"{label}-{affix}"
                elif style < 0.80:
                    candidate = f"{affix}-{label}"
                else:
                    second = COMMON_AFFIXES[int(rng.integers(0, len(COMMON_AFFIXES)))]
                    candidate = f"{affix}-{label}{second}" if len(label) >= 4 else f"{affix}-{label}-{second}"
                domain = f"{candidate}.{tld}"
            elif squat_type == SquatType.TYPO:
                pool = sorted(self._typo.generate(label))
                domain = f"{pool[int(rng.integers(0, len(pool)))]}.{tld}"
            elif squat_type == SquatType.BITS:
                pool = sorted(self._bits.generate(label))
                if not pool:
                    return None
                domain = f"{pool[int(rng.integers(0, len(pool)))]}.{tld}"
            elif squat_type == SquatType.HOMOGRAPH:
                pool = sorted(self._homograph.generate(label))
                if not pool:
                    return None
                domain = f"{pool[int(rng.integers(0, len(pool)))]}.{tld}"
            else:  # WRONG_TLD
                pool = sorted(self._wrongtld.generate(brand.domain))
                domain = pool[int(rng.integers(0, len(pool)))]
            if domain not in self.claimed:
                return domain
        return None

    def _squat_site_behaviour(self, brand: Brand, domain: str) -> Tuple[str, SiteBehavior, Optional[str], Optional[object]]:
        """Draw what a (non-phishing) squat domain serves."""
        rng = self.rng
        config = self.config
        if rng.random() >= config.live_rate:
            return "squat-dead", SiteBehavior.DEAD, None, None
        redirect_rate = config.redirect_rate
        original_share = config.redirect_original_share
        market_share = config.redirect_market_share
        if brand.name in DEFENSIVE_BRANDS:
            redirect_rate, original_share = 0.42, 0.62
        elif brand.name in MARKET_BRANDS:
            redirect_rate, market_share = 0.40, 0.55
        if rng.random() < redirect_rate:
            roll = rng.random()
            if roll < original_share:
                return ("squat-defensive", SiteBehavior.REDIRECT,
                        f"http://{brand.domain}/", None)
            if roll < original_share + market_share:
                market = MARKETPLACE_DOMAINS[int(rng.integers(0, len(MARKETPLACE_DOMAINS)))]
                return ("squat-market", SiteBehavior.REDIRECT,
                        f"http://{market}/", None)
            other = f"ads{int(rng.integers(0, 40)):02d}.trafficpark.net"
            if other not in self.claimed:
                ip = self.geoip.allocate_benign_ip()
                self._register(other, ip, "benign", SiteBehavior.CONTENT,
                               provider=self._static_provider(parked_page(other)))
            return "squat-other-redirect", SiteBehavior.REDIRECT, f"http://{other}/", None
        # live content
        roll = rng.random()
        if roll < config.confusable_page_rate:
            kind = rng.random()
            if kind < 0.22:
                page = newsletter_page(domain, brand, rng)
            elif kind < 0.42:
                page = survey_page(domain, brand, rng)
            elif kind < 0.60:
                page = plugin_shop_page(domain, brand, rng)
            elif kind < 0.75:
                page = fan_forum_page(domain, brand, rng)
            elif kind < 0.88:
                page = portal_login_page(domain, rng)
            else:
                page = bare_login_page(domain, rng)
            return "squat-confusable", SiteBehavior.CONTENT, None, self._static_provider(page)
        if roll < config.confusable_page_rate + 0.55:
            return ("squat-parked", SiteBehavior.CONTENT, None,
                    self._static_provider(parked_page(domain)))
        return ("squat-content", SiteBehavior.CONTENT, None,
                self._static_provider(organic_page(domain, rng)))

    def _place_squat_domains(self, reserved: Set[str]) -> None:
        brands, weights = self._brand_squat_weights()
        target = self.config.n_squat_domains - len(reserved)
        placed = 0
        draws = self.rng.choice(len(brands), size=target * 2, p=weights)
        for brand_index in draws:
            if placed >= target:
                break
            brand = brands[int(brand_index)]
            squat_type = self._draw_squat_type(SQUAT_TYPE_MIX)
            domain = self._mint_squat_domain(brand, squat_type)
            if domain is None or domain in reserved:
                continue
            label, behavior, redirect_to, provider = self._squat_site_behaviour(brand, domain)
            ip = self.geoip.allocate_benign_ip()
            self._register(domain, ip, label, behavior,
                           provider=provider, redirect_to=redirect_to)
            self.whois.register_organic(domain)
            self.squat_truth[domain] = (brand.name, squat_type)
            placed += 1

    # ------------------------------------------------------------------
    # phishing domains
    # ------------------------------------------------------------------
    def _plan_phishing_domains(self) -> List[Tuple[str, Brand, SquatType, str, Optional[str], int, bool]]:
        """Decide every squatting-phishing domain before placement.

        Returns tuples (domain, brand, type, theme, forced-cloaking,
        lifetime, resurrects); forced-cloaking None means "draw from the
        evasion model".
        """
        plan: List[Tuple[str, Brand, SquatType, str, Optional[str], int, bool]] = []
        used: Set[str] = set()
        for domain, brand_name, squat_type, theme, cloaking, lifetime, resurrects in SEEDED_PHISH:
            brand = self.catalog.get(brand_name)
            if brand is None:
                continue
            plan.append((domain, brand, squat_type, theme, cloaking, lifetime, resurrects))
            used.add(domain)
            if len(plan) >= self.config.n_phish_domains:
                return plan
        names = [name for name, _ in PHISH_TARGET_WEIGHTS if name in self.catalog]
        weights = np.array([w for name, w in PHISH_TARGET_WEIGHTS if name in self.catalog])
        weights /= weights.sum()
        while len(plan) < self.config.n_phish_domains:
            name = names[int(self.rng.choice(len(names), p=weights))]
            brand = self.catalog.get(name)
            squat_type = self._draw_squat_type(PHISH_TYPE_MIX)
            domain = self._mint_squat_domain(brand, squat_type)
            if domain is None or domain in used or domain in self.claimed:
                continue
            used.add(domain)
            theme = self._draw_theme(brand)
            lifetime = self._draw_lifetime()
            resurrects = bool(self.rng.random() < 0.01)
            plan.append((domain, brand, squat_type, theme, None, lifetime, resurrects))
        return plan

    def _draw_theme(self, brand: Brand) -> str:
        roll = self.rng.random()
        if brand.sensitivity == "payment":
            return "payment" if roll < 0.5 else ("login" if roll < 0.9 else "prize")
        if brand.name in ("microsoft", "cisco", "intel"):
            return "support" if roll < 0.4 else "login"
        if brand.name == "adp":
            return "payroll"
        return "login" if roll < 0.8 else ("prize" if roll < 0.95 else "payment")

    def _draw_lifetime(self) -> int:
        """Snapshots survived; ~80% last the whole month (Fig 17)."""
        roll = self.rng.random()
        if roll < 0.80:
            return self.config.snapshots
        if roll < 0.90:
            return self.config.snapshots - 1
        if roll < 0.97:
            return 2
        return 1

    def _phishing_provider(self, spec: PhishingPageSpec, domain: str):
        page_cache: Dict[str, Element] = {}
        # pages are built lazily on first visit, so their randomness must
        # be addressed per (world seed, domain, profile) — never drawn
        # from a shared sequential RNG, or visit order (and thus crawler
        # scheduling) would leak into page content
        seed = self.config.seed + 4
        domain_token = zlib.crc32(domain.encode())

        def provide(user_agent: UserAgent, snapshot: int) -> Optional[Element]:
            alive = snapshot < spec.lifetime_snapshots
            if spec.resurrects and snapshot == self.config.snapshots - 1:
                alive = True
            if not alive:
                # half the taken-down pages get replaced by benign content
                if domain_token % 2:
                    return parked_page(domain)
                return None
            if not spec.evasion.serves(user_agent):
                return None
            key = "mobile" if user_agent.is_mobile else "web"
            if key not in page_cache:
                builder = PhishingPageBuilder(np.random.default_rng(
                    (seed, domain_token, int(user_agent.is_mobile))))
                page_cache[key] = builder.build(spec)
            return page_cache[key]

        return provide

    def _place_phishing_domains(self, plan) -> None:
        evasion_rng = np.random.default_rng(self.config.seed + 6)
        for domain, brand, squat_type, theme, forced_cloaking, lifetime, resurrects in plan:
            evasion = draw_evasion_profile(evasion_rng, squatting=True)
            if forced_cloaking is not None:
                evasion.cloaking = forced_cloaking
                evasion.js_form_injection = False
            if domain in FIG14_CASES:
                # the Fig 14 screenshot case studies must show the scam
                # content the paper describes: layout drift yes, brand
                # hiding no, and the ADP page keeps its JS-injected form
                evasion = EvasionProfile(
                    layout=True,
                    string=False,
                    code=bool(zlib.crc32(domain.encode()) % 2),
                    js_form_injection=(domain == "mobile-adp.com"),
                    cloaking=forced_cloaking or "both",
                )
            spec = PhishingPageSpec(
                brand=brand,
                theme=theme,
                evasion=evasion,
                layout_variant=int(evasion_rng.integers(0, 12)),
                lifetime_snapshots=lifetime,
                resurrects=resurrects,
                degraded=bool(forced_cloaking is None and evasion_rng.random() < 0.03),
            )
            ip = self.geoip.allocate_phishing_ip()
            self._register(domain, ip, "phishing", SiteBehavior.CONTENT,
                           provider=self._phishing_provider(spec, domain))
            self.whois.register_phishing(domain)
            self.squat_truth[domain] = (brand.name, squat_type)
            self.phishing_sites.append(PhishingSiteRecord(
                domain=domain, brand=brand.name, squat_type=squat_type,
                theme=theme, evasion=evasion, lifetime_snapshots=lifetime,
                resurrects=resurrects, ip=ip,
            ))
            self.blacklists.ingest(domain, is_squatting=True)

    # ------------------------------------------------------------------
    # PhishTank-reported URLs (mostly non-squatting)
    # ------------------------------------------------------------------
    def _place_phishtank_urls(self) -> None:
        evasion_rng = np.random.default_rng(self.config.seed + 7)
        rank_rng = np.random.default_rng(self.config.seed + 8)
        for report in self.phishtank.generate():
            domain = report.domain
            if domain in self.claimed:
                continue
            brand = self.catalog.get(report.brand)
            if brand is None:
                continue
            self._assign_report_rank(domain, rank_rng)
            ip = self.geoip.allocate_phishing_ip()
            if report.still_phishing:
                evasion = draw_evasion_profile(evasion_rng, squatting=False)
                spec = PhishingPageSpec(
                    brand=brand,
                    theme=self._draw_theme(brand),
                    evasion=evasion,
                    layout_variant=int(evasion_rng.integers(0, 12)),
                    lifetime_snapshots=self.config.snapshots,
                    degraded=bool(evasion_rng.random() < 0.08),
                )
                self._register(domain, ip, "phishing-reported", SiteBehavior.CONTENT,
                               provider=self._phishing_provider(spec, domain))
            else:
                # taken down or replaced before our crawl reached it
                if evasion_rng.random() < 0.5:
                    self._register(domain, ip, "benign-replaced", SiteBehavior.CONTENT,
                                   provider=self._static_provider(parked_page(domain)))
                else:
                    self._register(domain, ip, "benign-replaced", SiteBehavior.CONTENT,
                                   provider=self._static_provider(
                                       organic_page(domain, self.rng)))
            self.whois.register_phishing(domain)
            # everything in the feed is, by definition, on PhishTank
            self.blacklists.phishtank.add_listing(domain)
            self.blacklists.virustotal.ingest(domain, is_squatting=False)
            self.blacklists.ecrimex.ingest(domain, is_squatting=False)

    def _assign_report_rank(self, domain: str, rng: "np.random.Generator") -> None:
        """Fig 6 bucket mix for reported-URL domains."""
        roll = rng.random()
        if roll < 0.036:
            self.alexa.assign_rank(domain, int(rng.integers(1, 1000)))
        elif roll < 0.190:
            self.alexa.assign_rank(domain, int(rng.integers(1001, 10_000)))
        elif roll < 0.256:
            self.alexa.assign_rank(domain, int(rng.integers(10_001, 100_000)))
        elif roll < 0.297:
            self.alexa.assign_rank(domain, int(rng.integers(100_001, 1_000_000)))
        # else: unranked (beyond top-1M), the 70% mass


def build_world(config: Optional[WorldConfig] = None) -> SyntheticInternet:
    """Build a synthetic internet (default config if none given)."""
    return _WorldBuilder(config or WorldConfig()).build()
