"""Dated snapshot series: the longitudinal world the lifecycle study reads.

The paper freezes one zone instant; the longitudinal squatting studies
(PAPERS.md: combosquatting over time, registration→detection→
deregistration) observe a *sequence* of dated snapshots and measure the
churn between them.  This module replays one deterministic PR 8 event
tape — now with re-registration and parked→weaponized churn
(:class:`~repro.phishworld.events.EventTapeConfig`'s lifecycle shares) —
into a dated series of PZON packs:

* snapshot 0 packs the tape's ``base_events`` prefix; every later
  snapshot advances by ``events_per_snapshot`` events, sealed into a
  delta segment and folded with :func:`~repro.dns.deltazone.compact`,
  which is byte-identical to packing the replayed prefix from scratch
  (DESIGN.md §14) — so each dated pack is exactly the zone state at its
  cut point;
* every advance runs through the content-addressed stage graph under a
  per-snapshot run id (``{series_id}-snap-{index:03d}``) whose context
  digest binds the tape, the predecessor's pack digest, and the cut —
  re-running against the same :class:`~repro.stages.store.ArtifactStore`
  loads every unchanged snapshot from cache (``stats.cached_snapshots``)
  and a config change invalidates exactly the suffix it affects;
* dates are pure config arithmetic (``start_date + index *
  cadence_days``): no wall clock touches the series, so the same config
  always yields the same dated packs and the same
  :meth:`SnapshotSeries.series_digest`.

This pushes the artifact store through dozens of generations sharing
cached stages — the scale the incremental machinery had not yet seen.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.deltazone import DeltaSegment, DeltaSegmentBuilder, compact
from repro.dns.packedzone import PackedZone, pack_zone
from repro.phishworld.events import (
    EventTapeConfig,
    ZoneEvent,
    apply_event,
    build_tape,
    digest_tape,
    replay_into_store,
)
from repro.stages.artifacts import digest_packed_zone
from repro.stages.graph import Stage, StageGraph
from repro.stages.runner import StageRunner
from repro.stages.store import ArtifactStore


@dataclass(frozen=True)
class SeriesConfig:
    """Scale/churn knobs for one deterministic dated series."""

    seed: int = 1803
    n_snapshots: int = 8
    base_events: int = 600          # tape prefix behind snapshot 0
    events_per_snapshot: int = 250  # churn window between snapshots
    start_date: str = "2018-03-01"  # ISO date of snapshot 0
    cadence_days: int = 7           # days between snapshots
    rate: float = 50.0
    remove_share: float = 0.16      # livelier takedowns than the default
    squat_share: float = 0.40
    reregister_share: float = 0.10
    weaponize_share: float = 0.08
    n_brands: int = 702

    def __post_init__(self) -> None:
        if self.n_snapshots < 1:
            raise ValueError("a series needs at least one snapshot")
        if self.events_per_snapshot < 1:
            raise ValueError("events_per_snapshot must be positive")
        _dt.date.fromisoformat(self.start_date)   # fail fast on bad dates

    @property
    def n_events(self) -> int:
        return self.base_events \
            + (self.n_snapshots - 1) * self.events_per_snapshot

    def tape_config(self) -> EventTapeConfig:
        return EventTapeConfig(
            seed=self.seed, n_events=self.n_events, rate=self.rate,
            remove_share=self.remove_share, squat_share=self.squat_share,
            reregister_share=self.reregister_share,
            weaponize_share=self.weaponize_share, n_brands=self.n_brands)

    def date_of(self, index: int) -> str:
        day = _dt.date.fromisoformat(self.start_date) \
            + _dt.timedelta(days=index * self.cadence_days)
        return day.isoformat()


@dataclass
class DatedSnapshot:
    """One dated zone state (``date`` is pure config arithmetic)."""

    index: int
    date: str
    zone: PackedZone
    events: int                     # cumulative tape events behind it
    cached: bool = False            # loaded from the artifact store

    @property
    def digest(self) -> str:
        return self.zone.content_digest


@dataclass
class SeriesStats:
    """One generation run's accounting (throughput metadata only)."""

    snapshots: int = 0
    cached_snapshots: int = 0
    events: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"snapshots": self.snapshots,
                "cached_snapshots": self.cached_snapshots,
                "events": self.events,
                "wall_seconds": round(self.wall_seconds, 4)}


@dataclass
class SnapshotSeries:
    """The generated dated series plus its provenance digests."""

    config: SeriesConfig
    snapshots: List[DatedSnapshot]
    tape_digest: str
    stats: SeriesStats = field(default_factory=SeriesStats)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[DatedSnapshot]:
        return iter(self.snapshots)

    def __getitem__(self, index: int) -> DatedSnapshot:
        return self.snapshots[index]

    def pairs(self) -> Iterator[Tuple[DatedSnapshot, DatedSnapshot]]:
        """Consecutive snapshot pairs, the diff kernel's unit of work."""
        for older, newer in zip(self.snapshots, self.snapshots[1:]):
            yield older, newer

    @property
    def series_digest(self) -> str:
        """Canonical digest over the dated pack chain."""
        hasher = hashlib.sha256()
        hasher.update(b"snapshot-series\n")
        hasher.update(f"{self.tape_digest}\n".encode())
        for snap in self.snapshots:
            hasher.update(f"{snap.index}|{snap.date}|{snap.digest}\n"
                          .encode())
        return hasher.hexdigest()


def _run_snapshot_stage(store: ArtifactStore, run_id: str, context: str,
                        graph: StageGraph, perf=None):
    """One snapshot's stage-graph run, resuming from the store when the
    context digest still matches (the streaming driver's resume recipe)."""
    previous = None
    try:
        candidate = store.load_manifest(run_id)
        if candidate.context_digest == context:
            previous = candidate
    except KeyError:
        pass
    runner = StageRunner(graph, store=store, run_id=run_id,
                         previous=previous, perf=perf,
                         context_digest=context)
    outcome = runner.run()
    cached = all(record.cached for record in outcome.manifest.records.values())
    return outcome, cached


def generate_series(config: Optional[SeriesConfig] = None, *,
                    store: Optional[ArtifactStore] = None,
                    perf=None, series_id: str = "series") -> SnapshotSeries:
    """Generate (or resume) the dated series for ``config``.

    Pure in the config: the same config yields the same dated packs and
    series digest whether computed fresh, resumed from a partially
    filled store, or re-run against a fully warm one.
    """
    config = config or SeriesConfig()
    store = store if store is not None else ArtifactStore()
    stats = SeriesStats()
    started = time.perf_counter()

    tape = build_tape(config.tape_config())
    tape_digest = digest_tape(tape)
    snapshots: List[DatedSnapshot] = []

    # snapshot 0: pack the tape prefix from scratch
    base_tape = tape[:config.base_events]

    def ingest_base(_inputs, _ctx):
        return {"snapshot_bytes": pack_zone(
            replay_into_store(base_tape)).to_bytes()}

    base_graph = StageGraph([
        Stage(name="ingest_base", compute=ingest_base,
              outputs=("snapshot_bytes",),
              digesters={"snapshot_bytes": lambda data: digest_packed_zone(
                  PackedZone.from_bytes(data))}),
    ])
    base_context = hashlib.sha256(
        f"{tape_digest}\n{config.base_events}\nbase".encode()).hexdigest()
    outcome, cached = _run_snapshot_stage(
        store, f"{series_id}-snap-000", base_context, base_graph, perf)
    zone = PackedZone.from_bytes(outcome.artifacts["snapshot_bytes"].payload)
    snapshots.append(DatedSnapshot(
        index=0, date=config.date_of(0), zone=zone,
        events=len(base_tape), cached=cached))
    stats.snapshots += 1
    stats.cached_snapshots += int(cached)
    stats.events += len(base_tape)

    # later snapshots: seal the window into a delta, fold with compact()
    for index in range(1, config.n_snapshots):
        start = config.base_events \
            + (index - 1) * config.events_per_snapshot
        window: List[ZoneEvent] = tape[start:start
                                       + config.events_per_snapshot]
        prev = snapshots[-1].zone
        prev_digest = prev.content_digest

        def seal(_inputs, _ctx, window=window, seq=index,
                 base_digest=prev_digest):
            builder = DeltaSegmentBuilder()
            for event in window:
                apply_event(builder, event)
            return {"delta_bytes": builder.to_bytes(seq, base_digest)}

        def advance(inputs, _ctx, base=prev):
            delta = DeltaSegment.from_bytes(inputs["delta_bytes"])
            return {"snapshot_bytes": compact(base, [delta]).to_bytes()}

        graph = StageGraph([
            Stage(name="seal", compute=seal,
                  outputs=("delta_bytes",),
                  digesters={"delta_bytes": lambda data: digest_packed_zone(
                      PackedZone.from_bytes(data))}),
            Stage(name="advance", compute=advance,
                  inputs=("delta_bytes",),
                  outputs=("snapshot_bytes",),
                  digesters={"snapshot_bytes":
                             lambda data: digest_packed_zone(
                                 PackedZone.from_bytes(data))}),
        ])
        context = hashlib.sha256(
            f"{tape_digest}\n{prev_digest}\n{index}\n"
            f"{config.events_per_snapshot}".encode()).hexdigest()
        outcome, cached = _run_snapshot_stage(
            store, f"{series_id}-snap-{index:03d}", context, graph, perf)
        zone = PackedZone.from_bytes(
            outcome.artifacts["snapshot_bytes"].payload)
        snapshots.append(DatedSnapshot(
            index=index, date=config.date_of(index), zone=zone,
            events=start + len(window), cached=cached))
        stats.snapshots += 1
        stats.cached_snapshots += int(cached)
        stats.events += len(window)

    stats.wall_seconds = time.perf_counter() - started
    return SnapshotSeries(config=config, snapshots=snapshots,
                          tape_digest=tape_digest, stats=stats)
