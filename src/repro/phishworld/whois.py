"""Synthetic whois registry: registration year and registrar (Fig 16).

Squatting-phishing registrations cluster in the most recent four years (the
paper crawled in 2018 and finds mass at 2015–2018, led by 2017–2018);
organic domains spread much further back.  Registrar coverage is partial —
only ~63% of the paper's phishing domains carried registrar data — and
GoDaddy leads the registrar histogram.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dns.records import WhoisRecord

CRAWL_YEAR = 2018

# Year → weight for attacker registrations (mass in the recent 4 years).
PHISH_YEAR_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (2005, 1), (2010, 2), (2011, 2), (2012, 3), (2013, 5), (2014, 8),
    (2015, 30), (2016, 55), (2017, 95), (2018, 70),
)

ORGANIC_YEAR_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (1998, 5), (2000, 10), (2002, 12), (2004, 15), (2006, 20), (2008, 25),
    (2010, 30), (2012, 35), (2014, 40), (2016, 45), (2017, 40), (2018, 25),
)

REGISTRARS: Tuple[Tuple[str, float], ...] = (
    ("godaddy.com", 157), ("namecheap.com", 80), ("enom.com", 45),
    ("tucows.com", 40), ("publicdomainregistry.com", 35),
    ("name.com", 25), ("networksolutions.com", 22), ("gandi.net", 20),
    ("ovh.com", 18), ("1and1.com", 16), ("alibaba.com", 15),
    ("registrar-hub.com", 12), ("dynadot.com", 10), ("porkbun.com", 8),
    ("hover.com", 6), ("101domain.com", 5), ("regru.ru", 5),
    ("webnic.cc", 4), ("onlinenic.com", 4), ("freenom.com", 25),
)

REGISTRAR_COVERAGE = 0.63  # fraction of phishing domains with registrar data


class WhoisRegistry:
    """Registration metadata store keyed by registered domain."""

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng
        self._records: Dict[str, WhoisRecord] = {}

    def _draw_year(self, weights: Sequence[Tuple[int, float]]) -> int:
        years = [y for y, _ in weights]
        probs = np.array([w for _, w in weights], dtype=float)
        probs /= probs.sum()
        return int(self._rng.choice(years, p=probs))

    def _draw_registrar(self) -> Optional[str]:
        if self._rng.random() > REGISTRAR_COVERAGE:
            return None
        names = [n for n, _ in REGISTRARS]
        probs = np.array([w for _, w in REGISTRARS], dtype=float)
        probs /= probs.sum()
        return str(self._rng.choice(names, p=probs))

    def register_phishing(self, domain: str) -> WhoisRecord:
        """Record an attacker registration (recent-years profile)."""
        record = WhoisRecord(
            domain=domain.lower(),
            registration_year=self._draw_year(PHISH_YEAR_WEIGHTS),
            registrar=self._draw_registrar(),
        )
        self._records[record.domain] = record
        return record

    def register_organic(self, domain: str) -> WhoisRecord:
        """Record an ordinary registration (long-history profile)."""
        record = WhoisRecord(
            domain=domain.lower(),
            registration_year=self._draw_year(ORGANIC_YEAR_WEIGHTS),
            registrar=self._draw_registrar(),
        )
        self._records[record.domain] = record
        return record

    def lookup(self, domain: str) -> Optional[WhoisRecord]:
        return self._records.get(domain.lower())

    def lookup_many(self, domains: Sequence[str]) -> List[Optional[WhoisRecord]]:
        """Bulk lookup, one result slot per input (None for misses)."""
        records = self._records
        return [records.get(domain.lower()) for domain in domains]

    def year_histogram(self, domains: Sequence[str]) -> Dict[int, int]:
        """Registration-year counts over a domain list (Fig 16 series)."""
        counts: Dict[int, int] = {}
        for domain in domains:
            record = self._records.get(domain.lower())
            if record is None:
                continue
            counts[record.registration_year] = counts.get(record.registration_year, 0) + 1
        return dict(sorted(counts.items()))

    def registrar_histogram(self, domains: Sequence[str]) -> Dict[str, int]:
        """Registrar counts over domains that carry registrar data."""
        counts: Dict[str, int] = {}
        for domain in domains:
            record = self._records.get(domain.lower())
            if record is None or record.registrar is None:
                continue
            counts[record.registrar] = counts.get(record.registrar, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
