"""The synthetic internet the measurement pipeline runs against.

The paper measures the live web; nothing it measures exists offline, so this
package rebuilds the *measured world* as a deterministic generative model:

* :mod:`repro.phishworld.world` — assembles the DNS snapshot, the hosted
  web, and all registries from a :class:`~repro.phishworld.world.WorldConfig`;
* :mod:`repro.phishworld.sites` — benign page templates (brand originals,
  organic sites, parked pages, easy-to-confuse benign forms);
* :mod:`repro.phishworld.attacker` — the adversary: phishing page
  construction with the §4.2 evasion families and device cloaking;
* :mod:`repro.phishworld.phishtank` — crowdsourced-feed simulation with
  brand skew and page churn (Table 5);
* :mod:`repro.phishworld.blacklists` — PhishTank/VirusTotal/eCrimeX-style
  blacklist services with coverage and latency models (Table 12);
* :mod:`repro.phishworld.whois` / :mod:`repro.phishworld.geoip` /
  :mod:`repro.phishworld.marketplace` — registration, geolocation and
  domain-resale registries (Fig 15/16, Table 4).

Everything draws from one seeded generator, so a given config is a fully
reproducible universe.
"""

from repro.phishworld.events import (
    EventTapeConfig,
    ZoneEvent,
    build_tape,
    digest_tape,
    is_weaponized_ip,
    replay_into_store,
)
from repro.phishworld.series import (
    DatedSnapshot,
    SeriesConfig,
    SnapshotSeries,
    generate_series,
)
from repro.phishworld.world import SyntheticInternet, WorldConfig, build_world

__all__ = [
    "DatedSnapshot",
    "EventTapeConfig",
    "SeriesConfig",
    "SnapshotSeries",
    "SyntheticInternet",
    "WorldConfig",
    "ZoneEvent",
    "build_tape",
    "build_world",
    "digest_tape",
    "generate_series",
    "is_weaponized_ip",
    "replay_into_store",
]
