"""Domain marketplaces: where speculator squats park for resale (Table 4).

The paper hand-compiled a list of 22 known marketplaces and counted squat
domains redirecting into them.  We host the same kind of destinations and
provide the classification helper the crawl analysis uses.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.web.http import Request

# The synthetic marketplace domains (22, like the paper's hand-made list).
MARKETPLACE_DOMAINS: Tuple[str, ...] = (
    "marketmonitor.com", "sedo.com", "afternic.com", "dan.com",
    "hugedomains.com", "buydomains.com", "domainmarket.com", "flippa.com",
    "namejet.com", "snapnames.com", "dropcatch.com", "godaddy-auctions.com",
    "parkingcrew.net", "bodis.com", "voodoo.com", "above.com",
    "domcollect.com", "skenzo.com", "parklogic.com", "rookmedia.net",
    "domainnamesales.com", "undeveloped.com",
)

MARKETPLACE_SET: FrozenSet[str] = frozenset(MARKETPLACE_DOMAINS)


def is_marketplace(domain: str) -> bool:
    """True if ``domain`` is one of the known resale marketplaces."""
    return domain.lower() in MARKETPLACE_SET


def classify_redirect(final_domain: str, brand_domain: str) -> str:
    """Bucket a redirect destination the way Table 2-4 do.

    Returns ``original`` (back to the impersonated brand), ``market``
    (a known resale marketplace), or ``other``.
    """
    final_domain = final_domain.lower()
    if final_domain == brand_domain.lower():
        return "original"
    if is_marketplace(final_domain):
        return "market"
    return "other"
