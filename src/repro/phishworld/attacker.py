"""The adversary: phishing page construction with real evasion behaviour.

A phishing page must satisfy the paper's definition — it impersonates a
brand's trademarks *and* carries a form that collects credentials or payment
data — while optionally evading the three detector families measured in
§4.2:

* **layout obfuscation** — the page keeps a legitimate look but deviates
  from the brand original's geometry (reordered sections, extra blocks,
  margins), driving image-hash distances of ~20-38;
* **string obfuscation** — brand keywords vanish from the HTML: either
  homoglyph-perturbed ("PayPaI") or moved into images
  (``data-embedded-text``), so only OCR can see them;
* **code obfuscation** — scripts hide behaviour behind ``fromCharCode`` /
  ``eval`` chains; some pages inject their login form from JavaScript and
  only when no adblocker is present (the ADP case study).

Cloaking is modelled at the site level: a phishing domain may serve its page
to web only, mobile only, or both (§6.1 finds 267 / 318 / 590 of 1175).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.brands.catalog import Brand
from repro.web.html import Element, document, el
from repro.web.http import UserAgent

# Scam themes, used to vary page composition (§6.2 case studies).
SCAM_THEMES: Tuple[str, ...] = (
    "login",          # plain credential harvest
    "payment",        # card / wallet details
    "prize",          # "you have won" bait
    "support",        # tech-support scam
    "payroll",        # employee payroll portal
    "search",         # fake search engine (goofle.com.ua)
)


@dataclass
class EvasionProfile:
    """Which evasion techniques one phishing page applies."""

    layout: bool = False
    string: bool = False
    code: bool = False
    js_form_injection: bool = False
    cloaking: str = "both"  # "both" | "web" | "mobile"

    def serves(self, user_agent: UserAgent) -> bool:
        if self.cloaking == "both":
            return True
        if self.cloaking == "web":
            return not user_agent.is_mobile
        return user_agent.is_mobile


@dataclass
class PhishingPageSpec:
    """Everything needed to build one phishing page deterministically."""

    brand: Brand
    theme: str
    evasion: EvasionProfile
    layout_variant: int = 0
    lifetime_snapshots: int = 4       # how many weekly snapshots it survives
    resurrects: bool = False          # Table 13: tacebook.ga came back
    degraded: bool = False            # broken kit: form loads from a relative
                                      # php include our browser cannot fetch
                                      # (the Adobe action.php case of §4.2)


class PhishingPageBuilder:
    """Builds phishing documents from specs."""

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng

    # ------------------------------------------------------------------
    # brand-string obfuscation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def obfuscate_brand_string(name: str) -> str:
        """Homoglyph-perturb a brand string ("paypal" → "paypaI")."""
        swaps = {"l": "I", "o": "0", "i": "l", "e": "3", "a": "@"}
        for original, replacement in swaps.items():
            if original in name:
                index = name.rindex(original)
                return name[:index] + replacement + name[index + 1:]
        return name + "."

    def _brand_header(self, brand: Brand, evasion: EvasionProfile) -> List[Element]:
        """Logo area: plaintext brand normally, image-embedded when string
        obfuscation is on."""
        display = brand.name.capitalize()
        if evasion.string:
            if self._rng.random() < 0.6:
                # text lives in the logo image only
                return [el("img", data_embedded_text=display.lower(),
                           height="48", alt="logo")]
            return [el("h1", self.obfuscate_brand_string(display))]
        return [el("h1", display)]

    def _credential_form(self, theme: str, generic: bool = False) -> Element:
        """The harvesting form, varying with the scam theme.

        ``generic`` strips the distinctive phishing-kit placeholder strings:
        heavily string-obfuscated pages keep their HTML indistinguishable
        from an ordinary member login, leaving the deception entirely to
        the (image-rendered) visual content.
        """
        if generic and theme not in ("payment", "search"):
            return el(
                "form",
                el("input", type="text", name="member",
                   placeholder="username or email"),
                el("input", type="password", name="password",
                   placeholder="password"),
                el("button", "Log In"),
                action="/session", method="post",
            )
        if theme == "payment":
            return el(
                "form",
                el("input", type="text", name="cardnumber",
                   placeholder="card number"),
                el("input", type="text", name="expiry", placeholder="mm / yy"),
                el("input", type="text", name="cvv", placeholder="security code"),
                el("button", "Confirm Payment"),
                action="/collect.php", method="post",
            )
        if theme == "prize":
            return el(
                "form",
                el("input", type="text", name="email",
                   placeholder="email to claim your prize"),
                el("input", type="password", name="password",
                   placeholder="account password"),
                el("button", "Claim Now"),
                action="/claim.php", method="post",
            )
        if theme == "search":
            return el(
                "form",
                el("input", type="text", name="q", placeholder="search the web"),
                el("button", "Search"),
                action="/search.php", method="get",
            )
        # login / support / payroll default to credential harvest
        return el(
            "form",
            el("input", type="text", name="username",
               placeholder="phone, email or username"),
            el("input", type="password", name="password",
               placeholder="please enter your password"),
            el("button", "Sign In"),
            action="/login.php", method="post",
        )

    def _draw_string_variant(self, evasion: EvasionProfile) -> Optional[str]:
        """How a string-obfuscated page hides its text, drawn per page.

        ``image-only`` pushes the entire deceptive copy into images (the
        heavy case only OCR can see through); ``perturbed`` homoglyph-mangles
        the brand; ``limited`` drops the brand from the copy entirely.
        """
        if not evasion.string:
            return None
        roll = self._rng.random()
        if roll < 0.5:
            return "image-only"
        if roll < 0.75:
            return "perturbed"
        return "limited"

    def _theme_body(self, brand: Brand, theme: str,
                    string_variant: Optional[str] = None) -> List[Element]:
        display = brand.name.capitalize()
        if string_variant == "image-only":
            # the whole pitch lives in images; HTML carries no deceptive
            # text at all — only OCR over the screenshot sees the scam
            return [
                el("img", data_embedded_text=f"welcome to {brand.name}",
                   height="32", alt="banner"),
                el("img",
                   data_embedded_text="verify your account to restore access",
                   height="32", alt="notice"),
            ]
        if string_variant == "perturbed":
            display = self.obfuscate_brand_string(display)
            return [
                el("p", f"Sign in to your {display} account."),
                el("p", "For your security, please verify your identity."),
            ]
        if string_variant == "limited":
            return [
                el("p", "Your account has been limited."),
                el("p", "Please verify your identity to restore access."),
            ]
        if theme == "support":
            return [
                el("p", f"{display} technical support center."),
                el("p", "Your computer may be at risk. Sign in so a technician "
                        "can assist you, or call the number on screen."),
            ]
        if theme == "payroll":
            return [
                el("p", f"{display} employee payroll portal."),
                el("p", "Sign in to view your payslip and tax documents."),
            ]
        if theme == "prize":
            return [
                el("p", f"Congratulations! You have been selected for a {display} reward."),
                el("p", "Confirm your account to claim the prize."),
            ]
        if theme == "search":
            # goofle-style fake search engines mimic the real homepage:
            # product links and an account sign-in entry point
            return [
                el("p", f"{display} search"),
                el("a", "Images", href="/images"),
                el("a", "News", href="/news"),
                el("a", f"Sign in to your {display} account", href="/signin"),
            ]
        if theme == "payment":
            return [
                el("p", f"Verify your {display} payment information."),
                el("p", "Your account has been limited until you confirm your card."),
            ]
        return [
            el("p", f"Sign in to your {display} account."),
            el("p", "For your security, please verify your identity."),
        ]

    # ------------------------------------------------------------------
    def build(self, spec: PhishingPageSpec) -> Element:
        """Construct the phishing document for a spec."""
        brand = spec.brand
        evasion = spec.evasion
        display = brand.name.capitalize()

        string_variant = self._draw_string_variant(evasion)

        if string_variant == "image-only":
            # lexical camouflage: every HTML-visible string mimics an
            # ordinary member portal; the deception exists only as pixels
            service = ("member portal", "webmail", "customer area",
                       "control panel", "community forum")[
                           int(self._rng.integers(0, 5))]
            title = f"{service} - sign in"
            header = [el("img", data_embedded_text=display.lower(),
                         height="48", alt="logo")]
            trailer = [el("a", "Register", href="/register"),
                       el("a", "Forgot password", href="/reset")]
        else:
            title = f"{display} - Sign In"
            if evasion.string:
                title = "Account Services - Sign In"
            header = self._brand_header(brand, evasion)
            trailer = [el("a", "Help", href="/help")]
            if spec.theme != "search":
                trailer.append(el("a", "Privacy", href="/privacy"))

        body_text = self._theme_body(brand, spec.theme, string_variant)
        form = self._credential_form(spec.theme,
                                     generic=string_variant == "image-only")

        blocks: List[Element] = []
        blocks.extend(header)
        blocks.extend(body_text)

        if spec.degraded:
            # the kit's form lives in a server-side include the crawler
            # cannot resolve; the landing page only links onward
            blocks.append(el("a", "Continue to login", href="action.php"))
            blocks.append(el("script", "include('action.php');"))
        elif evasion.js_form_injection:
            # single-quoted JS string: the serialized markup uses double
            # quotes for attributes and contains no single quotes
            markup = form.to_html().replace("\n", " ").replace("'", "")
            blocks.append(el("script",
                             f"if(!window.adblock){{document.body.innerHTML += '{markup}';}}"))
        else:
            blocks.append(form)

        blocks.extend(trailer)

        if evasion.code:
            blocks.append(el("script", self._obfuscated_script()))

        if evasion.layout:
            blocks = self._obfuscate_layout(blocks, spec.layout_variant)

        return document(title, *blocks)

    def _obfuscated_script(self) -> str:
        """An obfuscated beacon/logger script with the §4.2 indicators."""
        payload = "".join(self._rng.choice(list("0123456789abcdef"), size=48))
        return (
            "var _0x1 = '" + payload + "';"
            "var _0x2 = String.fromCharCode(104,116,116,112);"
            "var _0x3 = _0x1.charCodeAt(0);"
            "eval(unescape('%76%61%72%20%74%3D%31%3B'));"
        )

    def _obfuscate_layout(self, blocks: List[Element], variant: int) -> List[Element]:
        """Perturb page geometry while keeping a legitimate look.

        Rotation reorders the non-form blocks; filler paragraphs and margins
        shift everything the image hash sees.
        """
        filler_texts = (
            "Trusted by millions of users worldwide.",
            "This site is protected by advanced security.",
            "Copyright all rights reserved.",
            "Fast, simple and secure access.",
            "Need help? Contact our support team anytime.",
        )
        out = list(blocks)
        # rotate leading blocks
        rotation = 1 + variant % max(1, len(out) - 1)
        out = out[rotation:] + out[:rotation]
        # inject filler
        insert_at = variant % (len(out) + 1)
        filler = el("p", filler_texts[variant % len(filler_texts)],
                    style=f"margin-left: {8 * (1 + variant % 4)}px")
        out.insert(insert_at, filler)
        if variant % 2:
            out.insert(0, el("div", el("p", filler_texts[(variant + 2) % len(filler_texts)])))
        return out


def draw_evasion_profile(
    rng: "np.random.Generator",
    squatting: bool = True,
) -> EvasionProfile:
    """Sample an evasion profile at the §6.3 rates.

    Squatting phish (Table 11): layout heavily obfuscated, string 68%,
    code 34-35%.  Non-squatting (PhishTank) phish: string 36%, code 37.5%,
    lighter layout drift.
    """
    if squatting:
        string_rate, code_rate, layout_rate = 0.68, 0.345, 0.80
        cloak_roll = rng.random()
        if cloak_roll < 590 / 1175:
            cloaking = "both"
        elif cloak_roll < (590 + 318) / 1175:
            cloaking = "mobile"
        else:
            cloaking = "web"
    else:
        string_rate, code_rate, layout_rate = 0.359, 0.375, 0.55
        cloaking = "both"  # §4.2: 96% of PhishTank pages identical web/mobile
    return EvasionProfile(
        layout=bool(rng.random() < layout_rate),
        string=bool(rng.random() < string_rate),
        code=bool(rng.random() < code_rate),
        js_form_injection=bool(rng.random() < 0.06),
        cloaking=cloaking,
    )
