"""Deterministic simulated registration / CT-log event stream.

The paper scans a frozen snapshot; real squat hunting watches a *feed* —
new registrations and certificate-transparency log entries arriving
continuously, with takedowns and expiries removing names again.  This
module turns the synthetic-world machinery (brand catalog, the five
squat models) into a seeded event tape: a list of timestamped
``add``/``remove`` :class:`ZoneEvent` rows whose inter-arrival times
follow an exponential clock on the shared
:class:`~repro.faults.clock.SimClock` timeline.

The tape is a pure function of its :class:`EventTapeConfig` — the same
config always yields the same events in the same order with the same
timestamps, so every downstream digest (delta segments, scan matches,
compacted snapshots) is reproducible and the streaming driver can be
killed and re-driven deterministically.

Event mix:

* **organic adds** — fresh pronounceable names (never squats);
* **squat adds** — minted from a brand via the Fig 2 type mix
  (combo/typo/bits/wrongTLD/homograph), brand drawn uniformly;
* **subdomain adds** — a label (``www``, ``login``, …) in front of a
  previously-added live name, exercising registered-domain grouping;
* **replacement adds** — re-adding a live name with a new IP replaces it
  in place (``ZoneStore.add`` semantics);
* **removes** — takedown of a uniformly-drawn live name (tombstone in
  the delta layer);
* **re-registrations** (off by default) — re-add of a previously
  taken-down name, the lifecycle study's drop-catch signal;
* **weaponizations** (off by default) — a live name's IP flips into the
  ``192.0.2.0/24`` hosting block, modeling a parked squat turning into
  an active phishing page (the parked→weaponized transition the
  longitudinal series measures).

The two lifecycle shares default to ``0.0`` and consume **no** RNG draws
when zero, so every tape minted before they existed replays to the same
digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.brands.alexa import synth_brand_name
from repro.brands.catalog import build_paper_catalog
from repro.dns.zone import ZoneStore
from repro.squatting.bits import BitsModel
from repro.squatting.combo import COMMON_AFFIXES
from repro.squatting.homograph import HomographModel
from repro.squatting.typo import TypoModel
from repro.squatting.types import SquatType
from repro.squatting.wrongtld import WrongTLDModel

# Fig 2 proportions, same mix the world builder uses for its registered
# squat population
_SQUAT_MIX = (
    (SquatType.COMBO, 0.565),
    (SquatType.TYPO, 0.253),
    (SquatType.BITS, 0.073),
    (SquatType.WRONG_TLD, 0.060),
    (SquatType.HOMOGRAPH, 0.049),
)

_TLDS = ("com", "net", "org", "pw", "tk", "ml", "ga", "top", "xyz",
         "online", "site", "bid", "link", "info", "de", "nl", "in",
         "it", "pl", "eu", "co")

_SUB_LABELS = ("www", "login", "mail", "secure", "account", "m")


@dataclass(frozen=True)
class ZoneEvent:
    """One timestamped zone mutation (sim-clock seconds)."""

    at: float
    kind: str                   # "add" | "remove"
    name: str
    ip: str = "0.0.0.0"
    source: str = "ct-log"
    record_type: str = "A"


@dataclass(frozen=True)
class EventTapeConfig:
    """Scale/mix knobs for one deterministic event tape."""

    seed: int = 1803
    n_events: int = 2000
    rate: float = 50.0          # mean event arrivals per sim second
    remove_share: float = 0.12  # chance an event is a takedown
    squat_share: float = 0.40   # among adds: squat-minted names
    subdomain_share: float = 0.06   # among adds: subdomain of a live name
    replace_share: float = 0.04     # among adds: re-add of a live name
    reregister_share: float = 0.0   # among adds: revive a taken-down name
    weaponize_share: float = 0.0    # among adds: live name -> 192.0.2/24
    n_brands: int = 702
    start_at: float = 0.0


def event_line(event: ZoneEvent) -> str:
    """Canonical one-line form (the tape-digest unit)."""
    return (f"{event.at:.6f}|{event.kind}|{event.name}|{event.ip}"
            f"|{event.record_type}|{event.source}")


def digest_tape(events: Iterable[ZoneEvent]) -> str:
    hasher = hashlib.sha256()
    hasher.update(b"zone-events\n")
    for event in events:
        hasher.update(event_line(event).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def build_tape(config: Optional[EventTapeConfig] = None) -> List[ZoneEvent]:
    """Generate the event tape for ``config`` (pure in the config)."""
    config = config or EventTapeConfig()
    rng = np.random.default_rng(config.seed)
    catalog = list(build_paper_catalog(config.n_brands))
    typo, bits = TypoModel(), BitsModel()
    homograph, wrongtld = HomographModel(), WrongTLDModel()

    events: List[ZoneEvent] = []
    live: List[str] = []
    live_pos = {}
    dead: List[str] = []            # taken down, not yet re-registered
    dead_pos = {}
    t = float(config.start_at)
    organic_serial = 0

    def draw_tld() -> str:
        return _TLDS[int(rng.integers(0, len(_TLDS)))]

    def draw_ip() -> str:
        octets = rng.integers(0, 256, size=3)
        return f"10.{octets[0]}.{octets[1]}.{octets[2]}"

    def mint_squat() -> Optional[str]:
        brand = catalog[int(rng.integers(0, len(catalog)))]
        label = brand.core_label
        roll = rng.random()
        accumulated = 0.0
        squat_type = _SQUAT_MIX[-1][0]
        for candidate, share in _SQUAT_MIX:
            accumulated += share
            if roll < accumulated:
                squat_type = candidate
                break
        if squat_type == SquatType.COMBO:
            affix = COMMON_AFFIXES[int(rng.integers(0, len(COMMON_AFFIXES)))]
            core = (f"{label}-{affix}" if rng.random() < 0.5
                    else f"{affix}-{label}")
            return f"{core}.{draw_tld()}"
        if squat_type == SquatType.WRONG_TLD:
            pool = sorted(wrongtld.generate(brand.domain))
        elif squat_type == SquatType.TYPO:
            pool = sorted(typo.generate(label))
        elif squat_type == SquatType.BITS:
            pool = sorted(bits.generate(label))
        else:
            pool = sorted(homograph.generate(label))
        if not pool:
            return None
        choice = pool[int(rng.integers(0, len(pool)))]
        if squat_type == SquatType.WRONG_TLD:
            return choice
        return f"{choice}.{draw_tld()}"

    def mint_organic() -> str:
        nonlocal organic_serial
        organic_serial += 1
        return (f"{synth_brand_name(2_000_000 + config.seed * 1000 + organic_serial)}"
                f".{draw_tld()}")

    def _pool_drop(name: str, pool: List[str], pool_pos: dict) -> None:
        pos = pool_pos.pop(name, None)
        if pos is None:
            return
        last = pool.pop()
        if last != name:
            pool[pos] = last
            pool_pos[last] = pos

    def track_add(name: str) -> None:
        _pool_drop(name, dead, dead_pos)
        if name not in live_pos:
            live_pos[name] = len(live)
            live.append(name)

    def track_remove(name: str) -> None:
        _pool_drop(name, live, live_pos)
        if name not in dead_pos:
            dead_pos[name] = len(dead)
            dead.append(name)

    # cumulative roll thresholds; the lifecycle shares default to 0.0,
    # which reduces every threshold to its pre-lifecycle value and keeps
    # old tapes digest-stable (no extra RNG draws on the zero branches)
    t_weapon = config.weaponize_share
    t_replace = t_weapon + config.replace_share
    t_sub = t_replace + config.subdomain_share
    t_rereg = t_sub + config.reregister_share
    t_squat = t_rereg + config.squat_share

    for _ in range(config.n_events):
        t += float(rng.exponential(1.0 / config.rate))
        if live and rng.random() < config.remove_share:
            victim = live[int(rng.integers(0, len(live)))]
            events.append(ZoneEvent(at=t, kind="remove", name=victim))
            track_remove(victim)
            continue
        roll = rng.random()
        ip: Optional[str] = None
        if live and roll < t_weapon:
            # parked → weaponized: the name stays, the IP moves into the
            # (simulated) phishing hosting block
            name = live[int(rng.integers(0, len(live)))]
            ip = f"192.0.2.{int(rng.integers(0, 256))}"
            source = "ct-log"
        elif live and roll < t_replace:
            name = live[int(rng.integers(0, len(live)))]
            source = "ct-log"
        elif live and roll < t_sub:
            parent = live[int(rng.integers(0, len(live)))]
            label = _SUB_LABELS[int(rng.integers(0, len(_SUB_LABELS)))]
            name = f"{label}.{parent}"
            source = "ct-log"
        elif dead and roll < t_rereg:
            # drop-catch: a taken-down name comes back with a new IP
            name = dead[int(rng.integers(0, len(dead)))]
            source = "zone-feed"
        elif roll < t_squat:
            name = mint_squat() or mint_organic()
            source = "ct-log"
        else:
            name = mint_organic()
            source = "zone-feed"
        events.append(ZoneEvent(at=t, kind="add", name=name,
                                ip=ip if ip is not None else draw_ip(),
                                source=source))
        track_add(name.lower().rstrip("."))
    return events


WEAPON_PREFIX = "192.0.2."


def is_weaponized_ip(ip: str) -> bool:
    """True when ``ip`` sits in the simulated phishing hosting block."""
    return ip.startswith(WEAPON_PREFIX)


def apply_event(target, event: ZoneEvent) -> None:
    """Apply one event to anything with ``add_name``/``remove_name``
    (``DeltaSegmentBuilder``) or ``add_name``/``remove`` (``ZoneStore``)."""
    if event.kind == "add":
        target.add_name(event.name, ip=event.ip, source=event.source)
    elif event.kind == "remove":
        remover = getattr(target, "remove_name", None) or target.remove
        remover(event.name)
    else:
        raise ValueError(f"unknown event kind {event.kind!r}")


def replay_into_store(events: Iterable[ZoneEvent],
                      store: Optional[ZoneStore] = None) -> ZoneStore:
    """Replay a tape into a dict-backed store (the batch oracle).

    Removing a name the store never had is a legal stream condition
    (a takedown racing a snapshot boundary), so unknown removes are
    ignored rather than raised.
    """
    store = store if store is not None else ZoneStore()
    for event in events:
        if event.kind == "add":
            store.add_name(event.name, ip=event.ip, source=event.source)
        else:
            normalized = event.name.lower().rstrip(".")
            if normalized in store:
                store.remove(normalized)
    return store
