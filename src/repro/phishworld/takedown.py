"""Abuse reporting and takedown simulation (§7, "Reporting Phishing
Websites").

After verification the paper reported 1,015 squatting-phishing URLs to
Google Safe Browsing — one by one, because the portal enforces strict rate
limits and CAPTCHAs and supports no batch submission.  This module models
that reporting channel and the takedown process it feeds, so the repository
can reproduce the operational end of the measurement:

* :class:`SafeBrowsingPortal` — accepts submissions subject to a rate limit
  and per-submission CAPTCHA;
* :class:`ReportingCampaign` — the submit loop with backoff, which records
  how long clearing a large URL list takes;
* takedown outcomes — a fraction of reported sites get reviewed and taken
  down after a delay, which the world's hosted sites can reflect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class RateLimitExceeded(Exception):
    """Submission rejected because the rate limit window is full."""


class CaptchaFailed(Exception):
    """Submission rejected because the CAPTCHA was not solved."""


@dataclass
class Submission:
    """One accepted abuse report."""

    url: str
    submitted_at: float           # campaign clock, minutes
    reviewed: bool = False
    taken_down: bool = False
    review_delay_days: float = 0.0


class SafeBrowsingPortal:
    """A rate-limited, CAPTCHA-gated reporting endpoint."""

    def __init__(
        self,
        rng: "np.random.Generator",
        max_per_window: int = 10,
        window_minutes: float = 60.0,
        captcha_pass_rate: float = 0.97,
        review_rate: float = 0.55,
        takedown_rate_given_review: float = 0.80,
        mean_review_delay_days: float = 6.0,
    ) -> None:
        self._rng = rng
        self.max_per_window = max_per_window
        self.window_minutes = window_minutes
        self.captcha_pass_rate = captcha_pass_rate
        self.review_rate = review_rate
        self.takedown_rate_given_review = takedown_rate_given_review
        self.mean_review_delay_days = mean_review_delay_days
        self.submissions: List[Submission] = []
        self._window: List[float] = []    # accepted timestamps

    def submit(self, url: str, now_minutes: float) -> Submission:
        """Attempt one submission at campaign time ``now_minutes``."""
        self._window = [t for t in self._window
                        if now_minutes - t < self.window_minutes]
        if len(self._window) >= self.max_per_window:
            raise RateLimitExceeded(
                f"limit of {self.max_per_window}/{self.window_minutes:.0f}min reached")
        if self._rng.random() >= self.captcha_pass_rate:
            raise CaptchaFailed("captcha challenge failed")
        submission = Submission(url=url, submitted_at=now_minutes)
        if self._rng.random() < self.review_rate:
            submission.reviewed = True
            submission.review_delay_days = float(
                self._rng.exponential(self.mean_review_delay_days))
            submission.taken_down = bool(
                self._rng.random() < self.takedown_rate_given_review)
        self._window.append(now_minutes)
        self.submissions.append(submission)
        return submission

    def takedowns_by_day(self, day: float) -> List[str]:
        """URLs taken down on or before ``day`` (days after submission)."""
        return sorted(
            s.url for s in self.submissions
            if s.taken_down and s.review_delay_days <= day
        )


@dataclass
class CampaignStats:
    """Outcome of one reporting campaign."""

    urls: int
    accepted: int
    captcha_failures: int
    rate_limit_stalls: int
    elapsed_minutes: float
    taken_down_30d: int

    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_minutes / 60.0


class ReportingCampaign:
    """Submit a URL list through the portal, waiting out rate limits.

    Models the paper's experience: no batch API, so clearing ~1,000 URLs
    takes days of wall-clock submission time.
    """

    def __init__(self, portal: SafeBrowsingPortal,
                 minutes_per_submission: float = 1.5,
                 max_captcha_retries: int = 3) -> None:
        self.portal = portal
        self.minutes_per_submission = minutes_per_submission
        self.max_captcha_retries = max_captcha_retries

    def run(self, urls: Sequence[str]) -> CampaignStats:
        clock = 0.0
        accepted = 0
        captcha_failures = 0
        stalls = 0
        for url in urls:
            retries = 0
            while True:
                clock += self.minutes_per_submission
                try:
                    self.portal.submit(url, clock)
                    accepted += 1
                    break
                except RateLimitExceeded:
                    stalls += 1
                    clock += self.portal.window_minutes / self.portal.max_per_window
                except CaptchaFailed:
                    captcha_failures += 1
                    retries += 1
                    if retries >= self.max_captcha_retries:
                        break
        return CampaignStats(
            urls=len(urls),
            accepted=accepted,
            captcha_failures=captcha_failures,
            rate_limit_stalls=stalls,
            elapsed_minutes=clock,
            taken_down_30d=len(self.portal.takedowns_by_day(30.0)),
        )
