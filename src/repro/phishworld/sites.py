"""Benign page templates for the synthetic web.

Four families matter for the measurement:

* **brand originals** — the legitimate login/landing pages squatting phish
  imitate; these are the references for the image-hash comparison (Fig 8/9);
* **organic pages** — unrelated content sites filling the DNS snapshot;
* **parked pages** — what most live squatting domains actually serve;
* **easy-to-confuse benign pages** — squat-domain pages with submission
  forms (newsletter signups, surveys, site-search) or third-party brand
  plugins ("Pay with PayPal", share buttons).  §6.1 identifies exactly these
  as the classifier's false-positive sources, so the world must contain
  them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.brands.catalog import Brand
from repro.web.html import Element, document, el

_LOREM_WORDS = (
    "news update market report travel guide recipes garden music video "
    "photo review article community forum weather sports culture design "
    "project ideas local events shop catalog classic modern journal daily "
    "business studio archive library science nature health living style"
).split()


def _sentence(rng: "np.random.Generator", words: int = 8) -> str:
    chosen = rng.choice(_LOREM_WORDS, size=words, replace=True)
    return " ".join(str(w) for w in chosen)


def brand_original_page(brand: Brand) -> Element:
    """The brand's legitimate page, with a proper login form when the brand
    is credential-bearing."""
    children: List[Element] = [
        el("h1", brand.name.capitalize()),
        el("p", f"Welcome to {brand.name.capitalize()}."),
    ]
    if brand.sensitivity in ("login", "payment"):
        children.append(
            el(
                "form",
                el("input", type="text", name="username",
                   placeholder="email or username"),
                el("input", type="password", name="password",
                   placeholder="password"),
                el("button", "Sign In"),
                action="/login", method="post",
            )
        )
        children.append(el("a", "Forgot password?", href="/recover"))
    else:
        children.append(el("p", f"Explore {brand.name} products and services."))
        children.append(el("a", "About us", href="/about"))
    if brand.sensitivity == "payment":
        children.append(el("p", "Your payments are protected."))
    return document(f"{brand.name.capitalize()} - Official Site", *children)


def organic_page(domain: str, rng: "np.random.Generator") -> Element:
    """An unrelated content page."""
    name = domain.split(".")[0].replace("-", " ")
    return document(
        f"{name} - home",
        el("h1", name),
        el("p", _sentence(rng, 12)),
        el("p", _sentence(rng, 10)),
        el("a", "read more", href="/articles"),
    )


def parked_page(domain: str) -> Element:
    """A typical registrar parking page (no form, ad links)."""
    return document(
        f"{domain} is parked",
        el("h1", domain),
        el("p", "This domain is parked free, courtesy of the registrar."),
        el("a", "Related searches", href="/search"),
        el("a", "Privacy policy", href="/privacy"),
    )


def for_sale_page(domain: str) -> Element:
    """A 'domain for sale' lander (served by marketplaces)."""
    return document(
        f"{domain} - premium domain for sale",
        el("h1", f"{domain} is for sale"),
        el("p", "Make an offer for this premium domain name today."),
        el(
            "form",
            el("input", type="text", name="offer", placeholder="your offer in usd"),
            el("input", type="text", name="contact", placeholder="contact email"),
            el("button", "Submit Offer"),
            action="/offer", method="post",
        ),
    )


def newsletter_page(domain: str, brand: Optional[Brand], rng: "np.random.Generator") -> Element:
    """A fan/news site about a brand with a newsletter signup form.

    These are the paper's false-positive bait: a form plus brand keywords,
    but no credential harvesting.
    """
    topic = brand.name.capitalize() if brand else domain.split(".")[0]
    return document(
        f"{topic} news and rumors",
        el("h1", f"Unofficial {topic} news"),
        el("p", f"Daily {topic} coverage. {_sentence(rng, 8)}."),
        el("p", f"We are not affiliated with {topic}."),
        el(
            "form",
            el("input", type="text", name="email", placeholder="email for our newsletter"),
            el("button", "Subscribe"),
            action="/subscribe", method="post",
        ),
    )


def survey_page(domain: str, brand: Optional[Brand], rng: "np.random.Generator") -> Element:
    """A feedback/survey page with text boxes (another §6.1 FP source)."""
    topic = brand.name.capitalize() if brand else "our service"
    return document(
        f"{topic} user survey",
        el("h2", f"Tell us about {topic}"),
        el("p", "Your feedback helps the community."),
        el(
            "form",
            el("input", type="text", name="feedback", placeholder="your feedback"),
            el("input", type="text", name="rating", placeholder="rating 1 to 5"),
            el("button", "Send Feedback"),
            action="/survey", method="post",
        ),
    )


def plugin_shop_page(domain: str, brand: Optional[Brand], rng: "np.random.Generator") -> Element:
    """A small shop embedding third-party brand plugins (Pay with PayPal,
    share buttons)."""
    shop = domain.split(".")[0].replace("-", " ")
    brand_name = brand.name.capitalize() if brand else "PayPal"
    return document(
        f"{shop} - online shop",
        el("h1", shop),
        el("p", f"Hand-made goods, shipped worldwide. {_sentence(rng, 6)}."),
        el("p", f"Checkout supports {brand_name}."),
        el(
            "form",
            el("input", type="text", name="quantity", placeholder="quantity"),
            el("button", f"Pay with {brand_name}"),
            action="/checkout", method="post",
        ),
        el("a", "Share on social media", href="/share"),
    )


def portal_login_page(domain: str, rng: "np.random.Generator") -> Element:
    """A legitimate login portal on an unrelated site (forum, webmail,
    hosting panel).

    These carry a password form and credential vocabulary with no
    impersonation — the hardest benign case for the classifier, and a real
    population on the web (§5.3's "easy-to-confuse" pages).
    """
    service = rng.choice(["member portal", "webmail", "control panel",
                          "community forum", "customer area"])
    name = domain.split(".")[0].replace("-", " ")
    return document(
        f"{name} {service}",
        el("h2", f"{name} {service}"),
        el("p", "Sign in to manage your account."),
        el(
            "form",
            el("input", type="text", name="username", placeholder="username"),
            el("input", type="password", name="password", placeholder="password"),
            el("button", "Log In"),
            action="/session", method="post",
        ),
        el("a", "Register", href="/register"),
        el("a", "Forgot password", href="/reset"),
    )


def fan_forum_page(domain: str, brand: Optional[Brand], rng: "np.random.Generator") -> Element:
    """An unofficial brand fan community with a member login.

    Brand keywords *and* a password form co-occur legitimately here — by
    feature vector alone this is nearly a phishing page, and only the
    trademark-impersonation judgement (the verification step) separates
    them.  This is the deliberate hard case behind the paper's imperfect
    precision.
    """
    topic = brand.name.capitalize() if brand else domain.split(".")[0]
    return document(
        f"{topic} fans community",
        el("h1", f"{topic} fans"),
        el("p", f"The unofficial {topic} community. Discuss {topic} news, "
                "tips and tricks with other fans."),
        el("h3", "Member login"),
        el(
            "form",
            el("input", type="text", name="member", placeholder="username or email"),
            el("input", type="password", name="password", placeholder="password"),
            el("button", "Sign In"),
            action="/member/login", method="post",
        ),
        el("a", "Join the community", href="/register"),
    )


def bare_login_page(domain: str, rng: "np.random.Generator") -> Element:
    """A minimal login page with no body copy at all.

    The web is full of these — router admin panels, staging environments,
    intranet gateways: a title, a credential form, register/reset links,
    nothing else.  Lexically this is *identical* to a heavily
    string-obfuscated phishing page (whose pitch lives in images), so no
    HTML-text feature can separate the two; only the rendered pixels can.
    This population is what makes the paper's OCR channel genuinely
    necessary rather than merely helpful.
    """
    service = rng.choice(["member portal", "webmail", "customer area",
                          "control panel", "community forum"])
    return document(
        f"{service} - sign in",
        el(
            "form",
            el("input", type="text", name="member",
               placeholder="username or email"),
            el("input", type="password", name="password",
               placeholder="password"),
            el("button", "Log In"),
            action="/session", method="post",
        ),
        el("a", "Register", href="/register"),
        el("a", "Forgot password", href="/reset"),
    )


def redirect_notice_page(target: str) -> Element:
    """Interstitial body for sites that redirect (rarely rendered)."""
    return document(
        "Redirecting",
        el("p", f"Redirecting you to {target}"),
    )
