"""PhishTank feed simulation: crowdsourced phishing reports with churn.

§4.1's ground-truth collection has three properties the classifier training
depends on, all reproduced here as processes:

* **brand skew** — the top 8 brands account for ~59% of reported URLs
  (Table 5's proportions seed the sampler);
* **hosting profile** — most phishing URLs sit on unpopular domains (70%
  beyond the Alexa top-1M, Fig 6), concentrated on free hosting services;
* **churn** — only ~43.2% of reported URLs still serve a phishing page when
  crawled; the rest were taken down or replaced with benign content
  (Table 5's "valid phishing" column);
* **squatting rarity** — ~91% of reported URLs use no squatting domain at
  all (Fig 7); the few that do are mostly combo squats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.brands.catalog import Brand, BrandCatalog

# Table 5 proportions: (brand, share of reported URLs, P(still phishing)).
TOP_BRAND_PROFILE: Tuple[Tuple[str, float, float], ...] = (
    ("paypal", 0.193, 348 / 1306),
    ("facebook", 0.156, 734 / 1059),
    ("microsoft", 0.086, 285 / 580),
    ("santander", 0.050, 30 / 336),
    ("google", 0.032, 95 / 218),
    ("ebay", 0.028, 90 / 189),
    ("adobe", 0.024, 79 / 166),
    ("dropbox", 0.022, 70 / 150),
)

# Free-hosting services that phishing abuses (§4.1 finds 000webhostapp
# heaviest, then Google-hosted pages).
HOSTING_SERVICES: Tuple[Tuple[str, float], ...] = (
    ("000webhostapp.com", 0.25),
    ("sites-google.com", 0.04),
    ("drive-google.com", 0.035),
    ("weebly.com", 0.03),
    ("wixsite.com", 0.025),
    ("blogspot.com", 0.02),
    ("github-pages.io", 0.015),
    ("herokuapp.com", 0.01),
)

DEFAULT_VALID_RATE = 0.432       # overall share still phishing at crawl time
SQUATTING_URL_RATE = 0.089      # Fig 7: ~9% of reports use squatting domains


@dataclass
class PhishTankReport:
    """One user-reported, community-verified phishing URL."""

    url: str
    domain: str
    brand: str
    verified: bool = True
    active: bool = True
    still_phishing: bool = True    # ground truth at crawl time
    squat_type: Optional[str] = None
    submitted_day: int = 0


class PhishTankFeed:
    """Generates and serves the simulated report stream."""

    def __init__(
        self,
        catalog: BrandCatalog,
        rng: "np.random.Generator",
        total_reports: int = 1500,
        observation_days: int = 67,   # Feb 2 – Apr 10
    ) -> None:
        self.catalog = catalog
        self._rng = rng
        self.total_reports = total_reports
        self.observation_days = observation_days
        self.reports: List[PhishTankReport] = []

    # ------------------------------------------------------------------
    def generate(self) -> List[PhishTankReport]:
        """Draw the full report population."""
        if self.reports:
            return self.reports
        brands, probs, valid_rates = self._brand_sampler()
        counter = 0
        for _ in range(self.total_reports):
            index = int(self._rng.choice(len(brands), p=probs))
            brand = brands[index]
            valid_rate = valid_rates[index]
            counter += 1
            domain, squat_type = self._draw_domain(brand, counter)
            path = f"/{brand.name}/{counter:05d}/index.html"
            self.reports.append(
                PhishTankReport(
                    url=f"http://{domain}{path}",
                    domain=domain,
                    brand=brand.name,
                    verified=True,
                    active=bool(self._rng.random() < 0.9),
                    still_phishing=bool(self._rng.random() < valid_rate),
                    squat_type=squat_type,
                    submitted_day=int(self._rng.integers(0, self.observation_days)),
                )
            )
        return self.reports

    def _brand_sampler(self):
        """Brand sampling distribution: Table 5 head + long tail."""
        brands: List[Brand] = []
        probs: List[float] = []
        valid_rates: List[float] = []
        head_mass = 0.0
        for name, share, valid in TOP_BRAND_PROFILE:
            brand = self.catalog.get(name)
            if brand is None:
                continue
            brands.append(brand)
            probs.append(share)
            valid_rates.append(valid)
            head_mass += share
        tail = [
            b for b in self.catalog.by_source("phishtank")
            if b.name not in {n for n, _, _ in TOP_BRAND_PROFILE}
        ]
        # 204 brands reported; ~66 of them see no submissions (§4.1) — model
        # the tail as a truncated Zipf over the remaining brands
        tail = tail[:130]
        if tail:
            ranks = np.arange(1, len(tail) + 1, dtype=float)
            zipf = 1.0 / ranks
            zipf *= (1.0 - head_mass) / zipf.sum()
            for brand, p in zip(tail, zipf):
                brands.append(brand)
                probs.append(float(p))
                valid_rates.append(DEFAULT_VALID_RATE)
        probs_arr = np.array(probs)
        probs_arr /= probs_arr.sum()
        return brands, probs_arr, valid_rates

    def _draw_domain(self, brand: Brand, counter: int) -> Tuple[str, Optional[str]]:
        """Where the reported URL is hosted; rarely a squatting domain."""
        roll = self._rng.random()
        if roll < SQUATTING_URL_RATE:
            # Fig 7: squatting reports are overwhelmingly combo squats, with
            # a couple of typo/homograph stragglers
            type_roll = self._rng.random()
            if type_roll < 0.96:
                affix = ("login", "secure", "verify", "support", "update")[counter % 5]
                return f"{brand.name}-{affix}{counter % 97}.com", "combo"
            if type_roll < 0.98:
                return f"{brand.name}s{counter % 7}.center".replace("ss", "s"), "typo"
            return f"{brand.name.replace('o', '0', 1)}.online", "homograph"
        hosting_roll = self._rng.random()
        accumulated = 0.0
        for service, share in HOSTING_SERVICES:
            accumulated += share
            if hosting_roll < accumulated:
                return f"phish{counter:05d}.{service}", None
        return f"site{counter:05d}.example-host.net", None

    # ------------------------------------------------------------------
    # feed views
    # ------------------------------------------------------------------
    def verified_active(self) -> List[PhishTankReport]:
        """What the paper's crawler pulls: verified + active URLs."""
        return [r for r in self.generate() if r.verified and r.active]

    def by_brand(self) -> Dict[str, List[PhishTankReport]]:
        grouped: Dict[str, List[PhishTankReport]] = {}
        for report in self.generate():
            grouped.setdefault(report.brand, []).append(report)
        return grouped

    def top_brands(self, n: int = 8) -> List[Tuple[str, int]]:
        """Brands by report count, descending (Table 5 rows)."""
        grouped = self.by_brand()
        return sorted(
            ((brand, len(reports)) for brand, reports in grouped.items()),
            key=lambda kv: -kv[1],
        )[:n]
