"""Run-level performance accounting: workers, stage timings, cache yield.

:class:`PerfReport` is to throughput what
:class:`~repro.faults.resilience.CrawlHealth` is to reliability: a
structured, mergeable record the pipeline fills in as it runs and the CLI
prints at the end.  Wall-clock numbers and the hit/miss split are
*execution metadata* — they vary with hardware and scheduling — so none of
them participate in snapshot digests or determinism checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    """Hit/miss/bypass counters for every :class:`CaptureCache` layer.

    ``*_bypasses`` counts lookups that arrived while the cache was
    disabled (``--no-capture-cache``), so a run always shows how much
    traffic the cache *would* have seen.
    """

    render_hits: int = 0
    render_misses: int = 0
    render_bypasses: int = 0
    feature_hits: int = 0
    feature_misses: int = 0
    feature_bypasses: int = 0
    spell_hits: int = 0
    spell_misses: int = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def render_hit_rate(self) -> float:
        return self._rate(self.render_hits, self.render_misses)

    @property
    def feature_hit_rate(self) -> float:
        return self._rate(self.feature_hits, self.feature_misses)

    @property
    def spell_hit_rate(self) -> float:
        return self._rate(self.spell_hits, self.spell_misses)

    @property
    def any_hits(self) -> bool:
        return (self.render_hits + self.feature_hits + self.spell_hits) > 0

    def merge(self, other: "CacheStats") -> None:
        self.render_hits += other.render_hits
        self.render_misses += other.render_misses
        self.render_bypasses += other.render_bypasses
        self.feature_hits += other.feature_hits
        self.feature_misses += other.feature_misses
        self.feature_bypasses += other.feature_bypasses
        self.spell_hits += other.spell_hits
        self.spell_misses += other.spell_misses

    def to_dict(self) -> Dict[str, object]:
        return {
            "render_hits": self.render_hits,
            "render_misses": self.render_misses,
            "render_bypasses": self.render_bypasses,
            "render_hit_rate": round(self.render_hit_rate, 4),
            "feature_hits": self.feature_hits,
            "feature_misses": self.feature_misses,
            "feature_bypasses": self.feature_bypasses,
            "feature_hit_rate": round(self.feature_hit_rate, 4),
            "spell_hits": self.spell_hits,
            "spell_misses": self.spell_misses,
            "spell_hit_rate": round(self.spell_hit_rate, 4),
        }


@dataclass
class PerfReport:
    """Execution profile of one pipeline run.

    Attributes:
        scan_workers: process-pool width used for the snapshot scan.
        crawl_workers: thread-pool width used for crawl dispatch.
        train_workers: process-pool width for forest trees and CV folds.
        extract_workers: process-pool width for feature extraction.
        cache_enabled: whether the capture cache was active.
        stage_seconds: wall-clock seconds per pipeline stage.
        cached_stages: stages served from the artifact store instead of
            executing (incremental re-runs); they charge no wall clock.
        pages_extracted: pages that went through feature extraction.
        extract_seconds: wall clock spent in extraction batches.
        trees_fitted: forest trees fitted (final models, not CV folds).
        folds_fitted: cross-validation folds fitted.
        train_seconds: wall clock spent fitting and cross-validating.
        registered_scanned: registered domains classified by the zone scan.
        scan_seconds: wall clock spent scanning the zone snapshot.
        peak_rss_kb: peak resident set size sampled after the run (KB).
        cache: the run's :class:`CacheStats` (shared with the cache object,
            so it is always current).
    """

    scan_workers: int = 1
    crawl_workers: int = 1
    train_workers: int = 1
    extract_workers: int = 1
    cache_enabled: bool = True
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cached_stages: List[str] = field(default_factory=list)
    pages_extracted: int = 0
    extract_seconds: float = 0.0
    trees_fitted: int = 0
    folds_fitted: int = 0
    train_seconds: float = 0.0
    registered_scanned: int = 0
    scan_seconds: float = 0.0
    scan_kernel_rows: int = 0
    scan_fallbacks: Dict[str, int] = field(default_factory=dict)
    enrichments_done: int = 0
    enrich_seconds: float = 0.0
    hedges_fired: int = 0
    negcache_hits: int = 0
    negcache_misses: int = 0
    queries_served: int = 0
    serve_seconds: float = 0.0
    serve_batches: int = 0
    serve_swaps: int = 0
    serve_negcache_hits: int = 0
    serve_kernel_rows: int = 0
    serve_fallbacks: Dict[str, int] = field(default_factory=dict)
    stream_events: int = 0
    stream_seconds: float = 0.0
    stream_segments: int = 0
    stream_cached_segments: int = 0
    stream_compactions: int = 0
    stream_detections: int = 0
    stream_latency_p50: float = 0.0
    stream_kernel_rows: int = 0
    stream_fallbacks: Dict[str, int] = field(default_factory=dict)
    diff_pairs: int = 0
    diff_seconds: float = 0.0
    peak_rss_kb: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time for a named stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def record_cached_stage(self, stage: str) -> None:
        """Note a stage whose artifacts were loaded instead of computed."""
        if stage not in self.cached_stages:
            self.cached_stages.append(stage)

    def record_extraction(self, pages: int, seconds: float) -> None:
        """Accumulate one feature-extraction batch."""
        self.pages_extracted += pages
        self.extract_seconds += seconds

    def record_training(self, trees: int, folds: int, seconds: float) -> None:
        """Accumulate one training pass (final fit + CV folds)."""
        self.trees_fitted += trees
        self.folds_fitted += folds
        self.train_seconds += seconds

    @staticmethod
    def _merge_fallbacks(into: Dict[str, int],
                         families: Optional[Dict[str, int]]) -> None:
        for reason, count in (families or {}).items():
            if count:
                into[reason] = into.get(reason, 0) + count

    def record_scan(self, domains: int, seconds: float,
                    kernel=None) -> None:
        """Accumulate one zone scan (registered domains classified).

        ``kernel`` (optional) is the scan's
        :class:`~repro.squatting.packedscan.KernelStats` — per-family
        fallback counts land here as throughput metadata only (the
        digest-ban contract lives in the stage runner's
        ``THROUGHPUT_FIELDS``)."""
        self.registered_scanned += domains
        self.scan_seconds += seconds
        if kernel is not None:
            self.scan_kernel_rows += kernel.rows
            self._merge_fallbacks(self.scan_fallbacks, kernel.fallbacks)

    def record_enrichment(self, tasks: int, seconds: float,
                          hedges_fired: int = 0,
                          negcache_hits: int = 0,
                          negcache_misses: int = 0) -> None:
        """Accumulate one bulk-enrichment run (resolver stats).

        ``seconds`` is host wall clock; the resolver's simulated seconds
        stay inside its own :class:`~repro.enrich.resolver.ResolverStats`.
        """
        self.enrichments_done += tasks
        self.enrich_seconds += seconds
        self.hedges_fired += hedges_fired
        self.negcache_hits += negcache_hits
        self.negcache_misses += negcache_misses

    def record_serving(self, queries: int, batches: int, seconds: float,
                       swaps: int = 0, negcache_hits: int = 0,
                       kernel_rows: int = 0,
                       fallbacks: Optional[Dict[str, int]] = None) -> None:
        """Accumulate one serving burst (query front stats).

        The serving negcache is a different cache from the resolver's
        (verdicts vs lookup results), so its hits are tracked apart.
        ``kernel_rows``/``fallbacks`` carry the classify-batch kernel's
        per-family fallback accounting.
        """
        self.queries_served += queries
        self.serve_batches += batches
        self.serve_seconds += seconds
        self.serve_swaps += swaps
        self.serve_negcache_hits += negcache_hits
        self.serve_kernel_rows += kernel_rows
        self._merge_fallbacks(self.serve_fallbacks, fallbacks)

    def record_streaming(self, stats) -> None:
        """Accumulate one streaming run (driver stats).

        ``stats`` is a :class:`~repro.stream.driver.StreamStats`; host
        wall clock and sim-clock detection latency both land here as
        throughput metadata — neither participates in any digest.
        """
        self.stream_events += stats.events
        self.stream_seconds += stats.wall_seconds
        self.stream_segments += stats.segments
        self.stream_cached_segments += stats.cached_segments
        self.stream_compactions += stats.compactions
        self.stream_detections += stats.detections
        self.stream_latency_p50 = stats.latency_p50
        self.stream_kernel_rows += getattr(stats, "kernel_rows", 0)
        self._merge_fallbacks(self.stream_fallbacks,
                              getattr(stats, "fallbacks", None))

    def record_lifecycle(self, pairs: int, seconds: float) -> None:
        """Accumulate one snapshot-diff fan-out (lifecycle analytics)."""
        self.diff_pairs += pairs
        self.diff_seconds += seconds

    def record_peak_rss(self) -> None:
        """Sample the process's peak resident set size (best effort).

        Uses :func:`resource.getrusage`, so the number is cumulative for
        the process — repeated calls keep the maximum.  No-op on platforms
        without the ``resource`` module.
        """
        try:
            import resource
            import sys
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB on Linux
            peak //= 1024
        self.peak_rss_kb = max(self.peak_rss_kb, int(peak))

    @property
    def extract_pages_per_second(self) -> float:
        return self.pages_extracted / self.extract_seconds if self.extract_seconds else 0.0

    @property
    def scan_domains_per_second(self) -> float:
        return self.registered_scanned / self.scan_seconds if self.scan_seconds else 0.0

    @property
    def enrichments_per_second(self) -> float:
        return self.enrichments_done / self.enrich_seconds if self.enrich_seconds else 0.0

    @property
    def serve_qps(self) -> float:
        return self.queries_served / self.serve_seconds if self.serve_seconds else 0.0

    @property
    def stream_events_per_second(self) -> float:
        return self.stream_events / self.stream_seconds if self.stream_seconds else 0.0

    @property
    def negcache_hit_rate(self) -> float:
        total = self.negcache_hits + self.negcache_misses
        return self.negcache_hits / total if total else 0.0

    @staticmethod
    def _fallback_rate(rows: int, fallbacks: Dict[str, int]) -> float:
        return sum(fallbacks.values()) / rows if rows else 0.0

    @property
    def scan_fallback_rate(self) -> float:
        return self._fallback_rate(self.scan_kernel_rows, self.scan_fallbacks)

    @property
    def serve_fallback_rate(self) -> float:
        return self._fallback_rate(self.serve_kernel_rows,
                                   self.serve_fallbacks)

    @property
    def stream_fallback_rate(self) -> float:
        return self._fallback_rate(self.stream_kernel_rows,
                                   self.stream_fallbacks)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "scan_workers": self.scan_workers,
            "crawl_workers": self.crawl_workers,
            "train_workers": self.train_workers,
            "extract_workers": self.extract_workers,
            "cache_enabled": self.cache_enabled,
            "stage_seconds": {k: round(v, 4)
                              for k, v in sorted(self.stage_seconds.items())},
            "total_seconds": round(self.total_seconds, 4),
            "cached_stages": list(self.cached_stages),
            "pages_extracted": self.pages_extracted,
            "extract_seconds": round(self.extract_seconds, 4),
            "trees_fitted": self.trees_fitted,
            "folds_fitted": self.folds_fitted,
            "train_seconds": round(self.train_seconds, 4),
            "registered_scanned": self.registered_scanned,
            "scan_seconds": round(self.scan_seconds, 4),
            "scan_domains_per_second": round(self.scan_domains_per_second, 1),
            "scan_kernel_rows": self.scan_kernel_rows,
            "scan_fallbacks": dict(sorted(self.scan_fallbacks.items())),
            "scan_fallback_rate": round(self.scan_fallback_rate, 6),
            "enrichments_done": self.enrichments_done,
            "enrich_seconds": round(self.enrich_seconds, 4),
            "enrichments_per_second": round(self.enrichments_per_second, 1),
            "hedges_fired": self.hedges_fired,
            "negcache_hits": self.negcache_hits,
            "negcache_misses": self.negcache_misses,
            "negcache_hit_rate": round(self.negcache_hit_rate, 4),
            "queries_served": self.queries_served,
            "serve_seconds": round(self.serve_seconds, 4),
            "serve_qps": round(self.serve_qps, 1),
            "serve_batches": self.serve_batches,
            "serve_swaps": self.serve_swaps,
            "serve_negcache_hits": self.serve_negcache_hits,
            "serve_kernel_rows": self.serve_kernel_rows,
            "serve_fallbacks": dict(sorted(self.serve_fallbacks.items())),
            "serve_fallback_rate": round(self.serve_fallback_rate, 6),
            "stream_events": self.stream_events,
            "stream_seconds": round(self.stream_seconds, 4),
            "stream_events_per_second": round(self.stream_events_per_second, 1),
            "stream_segments": self.stream_segments,
            "stream_cached_segments": self.stream_cached_segments,
            "stream_compactions": self.stream_compactions,
            "stream_detections": self.stream_detections,
            "stream_latency_p50": round(self.stream_latency_p50, 4),
            "stream_kernel_rows": self.stream_kernel_rows,
            "stream_fallbacks": dict(sorted(self.stream_fallbacks.items())),
            "stream_fallback_rate": round(self.stream_fallback_rate, 6),
            "diff_pairs": self.diff_pairs,
            "diff_seconds": round(self.diff_seconds, 4),
            "peak_rss_kb": self.peak_rss_kb,
            "cache": self.cache.to_dict(),
        }

    def format(self, timings: bool = True) -> str:
        """Human-readable multi-line report (CLI output).

        ``timings=False`` omits the wall-clock block so the output is
        deterministic for a given config (the CLI routes timings to
        stderr for exactly this reason — ``diff``-ing two runs' stdout
        must stay byte-identical).
        """
        lines = [
            "perf report",
            f"  scan workers:    {self.scan_workers}",
            f"  crawl workers:   {self.crawl_workers}",
            f"  train workers:   {self.train_workers}",
            f"  extract workers: {self.extract_workers}",
            f"  capture cache:   {'on' if self.cache_enabled else 'off'}",
        ]
        if timings and self.stage_seconds:
            lines.append("  stage seconds:")
            for stage, seconds in sorted(self.stage_seconds.items()):
                lines.append(f"    {stage}: {seconds:.2f}")
            lines.append(f"    total: {self.total_seconds:.2f}")
        stats = self.cache
        if self.cache_enabled:
            lines.append(
                f"  render cache:    {stats.render_hits} hits / "
                f"{stats.render_misses} misses "
                f"({100 * stats.render_hit_rate:.1f}%)")
            lines.append(
                f"  feature cache:   {stats.feature_hits} hits / "
                f"{stats.feature_misses} misses "
                f"({100 * stats.feature_hit_rate:.1f}%)")
            lines.append(
                f"  spell memo:      {stats.spell_hits} hits / "
                f"{stats.spell_misses} misses "
                f"({100 * stats.spell_hit_rate:.1f}%)")
        else:
            lines.append(
                f"  cache bypassed:  {stats.render_bypasses} render / "
                f"{stats.feature_bypasses} feature lookups")
        return "\n".join(lines)

    @staticmethod
    def _format_fallbacks(fallbacks: Dict[str, int]) -> str:
        if not fallbacks:
            return "none"
        return ", ".join(f"{reason}={count}"
                         for reason, count in sorted(fallbacks.items()))

    def format_timings(self) -> str:
        """The wall-clock block alone ("" when no stage ran)."""
        if not self.stage_seconds and not self.cached_stages:
            return ""
        lines = ["perf timings (wall clock)"]
        for stage, seconds in sorted(self.stage_seconds.items()):
            lines.append(f"  {stage}: {seconds:.2f}s")
        for stage in self.cached_stages:
            lines.append(f"  {stage}: cached (artifact store)")
        lines.append(f"  total: {self.total_seconds:.2f}s")
        if self.pages_extracted:
            lines.append(
                f"  extraction: {self.pages_extracted} pages in "
                f"{self.extract_seconds:.2f}s "
                f"({self.extract_pages_per_second:.1f} pages/s)")
        if self.train_seconds:
            lines.append(
                f"  training: {self.trees_fitted} trees + "
                f"{self.folds_fitted} CV folds in {self.train_seconds:.2f}s")
        if self.registered_scanned:
            lines.append(
                f"  scan: {self.registered_scanned} registered domains in "
                f"{self.scan_seconds:.2f}s "
                f"({self.scan_domains_per_second:.0f} domains/s)")
        if self.scan_kernel_rows:
            lines.append(
                f"  scan kernel: {self.scan_kernel_rows} rows, "
                f"{100 * self.scan_fallback_rate:.3f}% scalar fallback "
                f"({self._format_fallbacks(self.scan_fallbacks)})")
        if self.enrichments_done:
            lines.append(
                f"  enrichment: {self.enrichments_done} lookups in "
                f"{self.enrich_seconds:.2f}s "
                f"({self.enrichments_per_second:.0f} lookups/s, "
                f"{self.hedges_fired} hedges, "
                f"{100 * self.negcache_hit_rate:.1f}% negcache hits)")
        if self.queries_served:
            lines.append(
                f"  serving: {self.queries_served} queries in "
                f"{self.serve_batches} batches, "
                f"{self.serve_seconds:.2f}s "
                f"({self.serve_qps:.0f} qps, "
                f"{self.serve_swaps} generation swaps, "
                f"{self.serve_negcache_hits} negcache hits)")
        if self.serve_kernel_rows:
            lines.append(
                f"  serve kernel: {self.serve_kernel_rows} rows, "
                f"{100 * self.serve_fallback_rate:.3f}% scalar fallback "
                f"({self._format_fallbacks(self.serve_fallbacks)})")
        if self.stream_events:
            lines.append(
                f"  streaming: {self.stream_events} events in "
                f"{self.stream_segments} segments "
                f"({self.stream_cached_segments} cached), "
                f"{self.stream_seconds:.2f}s "
                f"({self.stream_events_per_second:.0f} events/s, "
                f"{self.stream_compactions} compactions, "
                f"{self.stream_detections} detections, "
                f"p50 latency {self.stream_latency_p50:.2f}s sim)")
        if self.stream_kernel_rows:
            lines.append(
                f"  stream kernel: {self.stream_kernel_rows} rows, "
                f"{100 * self.stream_fallback_rate:.3f}% scalar fallback "
                f"({self._format_fallbacks(self.stream_fallbacks)})")
        if self.peak_rss_kb:
            lines.append(f"  peak RSS: {self.peak_rss_kb / 1024:.1f} MiB")
        return "\n".join(lines)
