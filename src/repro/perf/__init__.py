"""Parallel execution engine + content-addressed capture cache.

The paper's system is explicitly at-scale: §3.1 scans a 224M-record DNS
snapshot, §3.2 crawls 657K domains with 5 machines × 20 browser
instances.  This package supplies the reproduction's execution engine for
that scale:

* :mod:`repro.perf.engine` — sharded process-pool maps (snapshot scan)
  and ordered thread-pool maps (crawl dispatch), both with serial
  fallbacks and deterministic ordered merges;
* :mod:`repro.perf.cache` — a content-addressed render/OCR/feature cache
  that lets duplicate page templates (parked pages, marketplace landers,
  template phishing kits) skip the expensive render → OCR → spell-correct
  → feature path entirely;
* :mod:`repro.perf.report` — :class:`PerfReport`, the run-level account of
  workers, stage timings, and cache effectiveness, printed by the CLI
  next to :class:`~repro.faults.resilience.CrawlHealth`.

Everything here preserves the repo's determinism contract: results and
snapshot digests are byte-identical for any worker count and for cache
on/off; only wall-clock timings and hit/miss split points are execution
metadata (see DESIGN.md, "The execution engine's determinism contract").
"""

from repro.perf.cache import CaptureCache
from repro.perf.engine import process_map, shard, thread_map
from repro.perf.report import CacheStats, PerfReport

__all__ = [
    "CacheStats",
    "CaptureCache",
    "PerfReport",
    "process_map",
    "shard",
    "thread_map",
]
