"""Content-addressed capture cache: skip duplicate render/OCR work.

Squatting crawls are dominated by a handful of page templates — registrar
parking pages, marketplace "for sale" landers, bare login portals, and
template phishing kits stamped out per brand.  Rendering and OCR-ing the
same bytes thousands of times is pure waste, so the pipeline keys the
expensive artifacts by *content digest*:

* **render layer** — ``(served-body digest, UA profile, snapshot epoch)``
  → (executed HTML, screenshot raster).  Two domains serving byte-identical
  markup share one render; a cloaked site serves different markup per UA
  and therefore can never share entries across profiles (the UA is in the
  key *and* the digest differs).
* **feature layer** — ``(HTML digest, raster digest, extractor flags)`` →
  :class:`~repro.features.extraction.PageFeatures`.  OCR, spell
  correction, and tokenization run once per distinct page content.
* **spell memo** — per-checker word → correction memo (see
  :class:`~repro.ocr.spellcheck.SpellChecker`), counted here.

Because every cached computation is a *pure function of the key* (renders
are deterministic, OCR noise is seeded by raster content, spell correction
by word), cache hits return byte-identical artifacts — ``--no-capture-cache``
runs byte-match cached runs, which the test suite asserts.

The cache is shared across crawler threads; a lock keeps the dictionaries
consistent, and the render layer is *single-flight*: concurrent duplicate
renders serialize on a per-key lock, so the second requester waits for
the first and hits.  That both dedupes the work and makes the hit/miss
split schedule-independent (misses == distinct keys), which keeps the
CLI's counter output byte-deterministic.  Counters still never enter
snapshot digests.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, Optional, Tuple

from repro.perf.report import CacheStats

#: sentinel digest for "no raster" feature keys
NO_RASTER = "-"


def content_digest(text: str) -> str:
    """SHA-256 of a text blob (the cache's address space)."""
    return hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()


def raster_digest(pixels: Optional[Any]) -> str:
    """SHA-256 of a screenshot raster (shape-qualified), or a sentinel."""
    if pixels is None:
        return NO_RASTER
    hasher = hashlib.sha256()
    hasher.update(repr(getattr(pixels, "shape", None)).encode())
    hasher.update(pixels.tobytes())
    return hasher.hexdigest()


class CaptureCache:
    """Process-wide content-addressed cache for rendered-page artifacts.

    One instance serves a whole pipeline run and is shared by every
    browser (crawler worker threads and degraded-stage visits) and the
    feature extractor.  With ``enabled=False`` every lookup is a *bypass*:
    it misses unconditionally, stores nothing, and only counts how much
    traffic the cache would have absorbed.
    """

    def __init__(self, enabled: bool = True,
                 stats: Optional[CacheStats] = None) -> None:
        self.enabled = enabled
        self.stats = stats if stats is not None else CacheStats()
        self._lock = threading.Lock()
        self._render: Dict[Tuple[str, str, int], Tuple[str, Any]] = {}
        self._features: Dict[Tuple[str, str, Tuple], Any] = {}
        self._render_inflight: Dict[Tuple[str, str, int], threading.Lock] = {}

    # ------------------------------------------------------------------
    # render layer
    # ------------------------------------------------------------------
    @staticmethod
    def render_key(body: str, profile: str, snapshot: int) -> Tuple[str, str, int]:
        """Address of one rendered page: content × UA profile × epoch."""
        return (content_digest(body), profile, snapshot)

    def render_lock(self, key: Tuple[str, str, int]) -> threading.Lock:
        """Single-flight lock for one render key.

        Holding it across lookup→render→store serializes concurrent
        duplicates: the follower blocks until the leader stores, then
        hits.  Misses therefore equal distinct keys regardless of thread
        schedule.
        """
        with self._lock:
            return self._render_inflight.setdefault(key, threading.Lock())

    def lookup_render(self, key: Tuple[str, str, int]) -> Optional[Tuple[str, Any]]:
        """Cached ``(executed html, screenshot)`` for a served body, or None."""
        if not self.enabled:
            with self._lock:
                self.stats.render_bypasses += 1
            return None
        with self._lock:
            hit = self._render.get(key)
            if hit is not None:
                self.stats.render_hits += 1
            else:
                self.stats.render_misses += 1
            return hit

    def store_render(self, key: Tuple[str, str, int], html: str,
                     screenshot: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._render.setdefault(key, (html, screenshot))

    # ------------------------------------------------------------------
    # feature layer
    # ------------------------------------------------------------------
    @staticmethod
    def feature_key(html: str, pixels: Optional[Any],
                    flags: Tuple) -> Tuple[str, str, Tuple]:
        """Address of one feature extraction: page content × extractor flags."""
        return (content_digest(html), raster_digest(pixels), flags)

    def lookup_features(self, key: Tuple[str, str, Tuple]) -> Optional[Any]:
        """Cached :class:`PageFeatures` for page content, or None."""
        if not self.enabled:
            with self._lock:
                self.stats.feature_bypasses += 1
            return None
        with self._lock:
            hit = self._features.get(key)
            if hit is not None:
                self.stats.feature_hits += 1
            else:
                self.stats.feature_misses += 1
            return hit

    def store_features(self, key: Tuple[str, str, Tuple], features: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._features.setdefault(key, features)

    # ------------------------------------------------------------------
    def entry_counts(self) -> Dict[str, int]:
        """Number of distinct entries per layer (diagnostics/tests)."""
        with self._lock:
            return {"render": len(self._render), "features": len(self._features)}

    def render_keys(self):
        """Snapshot of render-layer keys (tests: cloaking isolation)."""
        with self._lock:
            return list(self._render.keys())
