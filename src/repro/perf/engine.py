"""Ordered parallel maps: the execution primitives behind SquatPhi's scale.

Two primitives, one contract — **results come back in input order**, so a
parallel run merges to byte-identical output regardless of which worker
finished first:

* :func:`process_map` — CPU-bound fan-out over shards on a
  ``ProcessPoolExecutor``.  Used by the snapshot scan, where each worker
  rebuilds the detector's indices once (via ``initializer``) and then
  classifies whole chunks of registered domains.  Shard *work* is
  unordered across processes; shard *results* are merged in shard order.
* :func:`thread_map` — I/O-shaped fan-out on a ``ThreadPoolExecutor``.
  Used by the crawl scheduler, where each task is a self-contained domain
  group (own clock lane, own fault-injector clone) so tasks never share
  mutable state and order of completion cannot leak into results.

Both fall back to a plain serial loop when ``workers <= 1`` or there is
nothing to parallelize — the fallback runs the *same* function over the
*same* shards, which is how the determinism suite can assert serial and
parallel runs byte-match.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def shard(items: Iterable[T], chunk_size: int) -> List[List[T]]:
    """Partition ``items`` into consecutive chunks of ``chunk_size``.

    Consecutive (not strided) so that concatenating per-shard results in
    shard order reproduces the serial iteration order exactly.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    shards: List[List[T]] = []
    current: List[T] = []
    for item in items:
        current.append(item)
        if len(current) >= chunk_size:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


def thread_map(fn: Callable[[T], R], items: Sequence[T],
               workers: int) -> List[R]:
    """Map ``fn`` over ``items`` on a thread pool, results in input order.

    Tasks must be self-contained (no shared mutable state) — the crawl
    scheduler guarantees this by giving each domain group its own clock
    lane and fault-injector clone.  With ``workers <= 1`` or a single
    item, runs the plain serial loop.
    """
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def process_map(fn: Callable[[T], R], shards: Sequence[T], workers: int,
                initializer: Optional[Callable] = None,
                initargs: Tuple = ()) -> List[R]:
    """Map ``fn`` over ``shards`` on a process pool, results in shard order.

    ``initializer(*initargs)`` runs once per worker process to rebuild
    per-process state (e.g. detector indices) from picklable inputs, so
    the heavy index build is paid ``workers`` times, not ``len(shards)``
    times.  With ``workers <= 1`` or a single shard, runs serially in
    this process — calling the initializer first so ``fn`` sees the same
    environment either way.
    """
    if workers <= 1 or len(shards) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in shards]
    with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(fn, shards))
