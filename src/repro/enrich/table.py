"""Columnar bulk-enrichment result table.

One row per input domain (lowercased, deduped, first-seen order), one
numpy column per enrichment field, plus a per-backend status column
carrying the typed miss reason for every cell — a partially-enriched
domain keeps its row, it never aborts the run.

String values (countries, registrars) are interned to small integer ids.
Intern order during the fill is arrival order — which depends on
scheduling — so :meth:`finalize` remaps every id column onto *sorted*
intern tables, making the binary representation canonical.  The
:meth:`digest` additionally hashes fully *decoded* rows, so two tables
are digest-equal iff they agree on actual values, regardless of how they
were produced (serial, concurrent, hedged, fault-swept).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.enrich.backends import (
    MISS_REASONS,
    STATUS_OK,
    u32_to_ip,
)

#: the backends every table carries status columns for, in resolve order
BACKEND_ORDER = ("a", "mx", "whois", "geo")


def _dedupe_lower(domains: Sequence[str]) -> List[str]:
    seen = set()
    ordered: List[str] = []
    for domain in domains:
        lowered = domain.lower()
        if lowered not in seen:
            seen.add(lowered)
            ordered.append(lowered)
    return ordered


class EnrichmentTable:
    """Columnar (domain × enrichment field) result store."""

    def __init__(self, domains: Sequence[str]) -> None:
        self.domains: List[str] = _dedupe_lower(domains)
        n = len(self.domains)
        self._row_of: Dict[str, int] = {
            domain: i for i, domain in enumerate(self.domains)}
        self.a_ip = np.zeros(n, dtype=np.uint32)        # 0 == miss
        self.country_id = np.zeros(n, dtype=np.uint16)  # 0 == miss
        self.reg_year = np.zeros(n, dtype=np.uint16)    # 0 == miss
        self.registrar_id = np.zeros(n, dtype=np.uint16)  # 0 == miss/none
        self.mx_present = np.zeros(n, dtype=np.uint8)
        self.status = {
            backend: np.zeros(n, dtype=np.uint8) for backend in BACKEND_ORDER}
        # id 0 is reserved for "missing" in both intern tables
        self._countries: List[str] = [""]
        self._country_ids: Dict[str, int] = {"": 0}
        self._registrars: List[str] = [""]
        self._registrar_ids: Dict[str, int] = {"": 0}
        self._finalized = False

    def __len__(self) -> int:
        return len(self.domains)

    def row_of(self, domain: str) -> int:
        return self._row_of[domain.lower()]

    # ------------------------------------------------------------------
    # fill (resolver-facing)
    # ------------------------------------------------------------------
    def _intern(self, ids: Dict[str, int], values: List[str],
                value: str) -> int:
        got = ids.get(value)
        if got is None:
            got = len(values)
            ids[value] = got
            values.append(value)
        return got

    def set_result(self, backend: str, domain: str, value, status: int) -> None:
        """Record one backend's outcome for one domain."""
        row = self._row_of[domain.lower()]
        self.status[backend][row] = status
        if status == STATUS_OK:
            self.set_value(backend, row, value)

    def set_value(self, backend: str, row: int, value) -> None:
        """Write a successful lookup's value into its column cell."""
        if self._finalized:
            raise RuntimeError("table is finalized")
        if backend == "a":
            self.a_ip[row] = value
        elif backend == "mx":
            self.mx_present[row] = value
        elif backend == "whois":
            year, registrar = value
            self.reg_year[row] = year
            if registrar is not None:
                self.registrar_id[row] = self._intern(
                    self._registrar_ids, self._registrars, registrar)
        elif backend == "geo":
            self.country_id[row] = self._intern(
                self._country_ids, self._countries, value)
        else:
            raise KeyError(f"unknown backend {backend!r}")

    def finalize(self) -> "EnrichmentTable":
        """Remap intern ids onto sorted tables → canonical binary form."""
        if self._finalized:
            return self
        for attr_values, attr_ids, column in (
            ("_countries", "_country_ids", self.country_id),
            ("_registrars", "_registrar_ids", self.registrar_id),
        ):
            values = getattr(self, attr_values)
            canonical = [""] + sorted(values[1:])
            remap = np.zeros(len(values), dtype=column.dtype)
            for old_id, value in enumerate(values):
                remap[old_id] = canonical.index(value) if old_id else 0
            column[:] = remap[column]
            setattr(self, attr_values, canonical)
            setattr(self, attr_ids, {v: i for i, v in enumerate(canonical)})
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # decoded reads
    # ------------------------------------------------------------------
    @property
    def countries(self) -> List[str]:
        """Intern table; index 0 is the missing sentinel."""
        return self._countries

    @property
    def registrars(self) -> List[str]:
        return self._registrars

    def country_of_row(self, row: int) -> Optional[str]:
        cid = int(self.country_id[row])
        return self._countries[cid] if cid else None

    def registrar_of_row(self, row: int) -> Optional[str]:
        rid = int(self.registrar_id[row])
        return self._registrars[rid] if rid else None

    def decoded_row(self, row: int) -> Dict[str, object]:
        """One row as plain python values (reports, spot checks)."""
        return {
            "domain": self.domains[row],
            "a_ip": u32_to_ip(int(self.a_ip[row])) if self.a_ip[row] else None,
            "country": self.country_of_row(row),
            "registration_year": int(self.reg_year[row]) or None,
            "registrar": self.registrar_of_row(row),
            "mx_present": bool(self.mx_present[row]),
            "miss_reasons": {
                backend: MISS_REASONS[int(self.status[backend][row])]
                for backend in BACKEND_ORDER
                if int(self.status[backend][row]) != STATUS_OK
            },
        }

    def miss_reason_counts(self) -> Dict[str, Dict[str, int]]:
        """backend → miss reason → count (degradation reporting)."""
        out: Dict[str, Dict[str, int]] = {}
        for backend in BACKEND_ORDER:
            codes, counts = np.unique(self.status[backend],
                                      return_counts=True)
            reasons = {
                MISS_REASONS[int(code)]: int(count)
                for code, count in zip(codes, counts)
                if int(code) != STATUS_OK
            }
            if reasons:
                out[backend] = reasons
        return out

    # ------------------------------------------------------------------
    # canonical digest
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over fully decoded rows.

        Decoding makes the digest independent of intern-id assignment, so
        it compares *values*: the determinism contract asserts this digest
        is byte-identical across concurrency levels, hedging on/off, and
        fault seeds.
        """
        import hashlib
        hasher = hashlib.sha256()
        hasher.update(b"enrichment\n")
        for row, domain in enumerate(self.domains):
            statuses = ",".join(
                str(int(self.status[backend][row]))
                for backend in BACKEND_ORDER)
            line = "|".join((
                domain,
                str(int(self.a_ip[row])),
                self.country_of_row(row) or "-",
                str(int(self.reg_year[row])),
                self.registrar_of_row(row) or "-",
                str(int(self.mx_present[row])),
                statuses,
            ))
            hasher.update(line.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()
