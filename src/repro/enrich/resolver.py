"""Event-loop bulk enrichment resolver.

:class:`EnrichResolver` drives thousands of (domain × backend) lookups
through a simulated-time event loop with bounded in-flight concurrency,
deterministic retry ladders (:class:`~repro.faults.resilience.RetryPolicy`
via capped rungs), per-(backend, host) circuit breakers, hedged duplicate
requests for stragglers, and a TTL'd negative cache — all under a private
:class:`~repro.faults.clock.SimClock`, so every timeline is reproducible.

Determinism contract
--------------------
Backend lookups are pure functions of the domain, and every retry ladder
is unbounded by default (``max_attempts=None``), so injected faults,
hedging, concurrency, and caching change only *timing and accounting* —
never a result value.  The finalized table therefore digests identically
to the serial no-fault oracle (:func:`repro.enrich.serial.enrich_serial`)
for any concurrency level, hedging setting, or fault seed.  Bounding
``max_attempts`` (tests of graceful degradation) is the one way to get
partial rows; those carry typed miss reasons instead of raising.

Fast path
---------
At realistic fault rates most lookups never see any weather.  The
resolver screens each (backend, domain) with
:meth:`~repro.faults.plan.FaultInjector.backend_dirty_many` — the same
hash draws :meth:`check_backend` would make on the first attempt,
batched with per-host incremental CRC prefixes — and routes
clean tasks through a vectorized bulk loop with zero event-loop/resilience
overhead; only the dirty tail is simulated.  Backend flapping is
time-dependent, so any flap rate disables the fast path entirely.
"""

from __future__ import annotations

import heapq
import zlib
from collections import Counter, deque
from dataclasses import dataclass, field
from itertools import compress
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.enrich.backends import (
    STATUS_BREAKER_OPEN,
    STATUS_NO_RECORD,
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_RETRIES_EXHAUSTED,
    tlds_many,
)
from repro.enrich.table import EnrichmentTable
from repro.faults.clock import SimClock
from repro.faults.errors import FaultError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.resilience import CircuitBreaker, RetryPolicy


@dataclass
class EnrichTask:
    """One in-flight (domain, backend) lookup with its retry state."""

    domain: str
    backend: int  # index into the resolver's backend list
    host: str
    row: int  # the domain's row in the output table
    attempt: int = 0


@dataclass
class ResolverStats:
    """Resolver-local accounting (never merged into pipeline health).

    Everything here is wall-clock/scheduling metadata: identical tables
    can carry different stats across concurrency levels, which is exactly
    why stats live outside every deterministic digest.
    """

    tasks: int = 0
    fast_path_tasks: int = 0
    event_loop_tasks: int = 0
    attempts: int = 0
    successes: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    hedges_fired: int = 0
    hedge_wins: int = 0
    negcache_hits: int = 0
    negcache_stores: int = 0
    breaker_deferrals: int = 0
    breaker_trips: int = 0
    partial_rows: int = 0
    sim_seconds: float = 0.0
    failures: Counter = field(default_factory=Counter)
    injected: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "tasks": self.tasks,
            "fast_path_tasks": self.fast_path_tasks,
            "event_loop_tasks": self.event_loop_tasks,
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "negcache_hits": self.negcache_hits,
            "negcache_stores": self.negcache_stores,
            "breaker_deferrals": self.breaker_deferrals,
            "breaker_trips": self.breaker_trips,
            "partial_rows": self.partial_rows,
            "sim_seconds": round(self.sim_seconds, 6),
            "failures": dict(sorted(self.failures.items())),
            "injected": dict(sorted(self.injected.items())),
        }


class NegativeCache:
    """TTL'd (scope, domain) → permanent-miss cache on the resolver clock.

    Scopes let backends share verdicts they agree on: every
    zone-membership backend (A, MX, GeoIP) returns NXDOMAIN for a name
    absent from the zone, so one backend's miss short-circuits the
    others'.  Shortcut results are value-identical to a recomputation by
    construction, so the cache affects timing and stats only.
    """

    def __init__(self, ttl: float = 3600.0) -> None:
        self.ttl = ttl
        self._expiry: Dict[Tuple[str, str], float] = {}

    def __len__(self) -> int:
        return len(self._expiry)

    def put(self, scope: str, domain: str, now: float) -> None:
        self._expiry[(scope, domain)] = now + self.ttl

    def hit(self, scope: str, domain: str, now: float) -> bool:
        expiry = self._expiry.get((scope, domain))
        if expiry is None:
            return False
        if now >= expiry:
            del self._expiry[(scope, domain)]
            return False
        return True


#: delay chain cap: rung 6 is 64 × base, already past the default
#: ``max_delay``, so higher rungs would be identical anyway
DEFAULT_LADDER_CAP = 6

#: per-task hard ceiling; unreachable under any valid plan (abort rate is
#: capped at 0.999 and draws are attempt-keyed), purely a runaway backstop
ATTEMPT_SAFETY_CAP = 10_000


class EnrichResolver:
    """Bulk resolver over a fixed backend list.

    Args:
        backends: adapter instances (see :mod:`repro.enrich.backends`),
            resolved backend-major in list order — zone-membership
            backends should come first so their NXDOMAINs seed the
            negative cache for the rest.
        plan: fault plan; ``None`` disables all weather.
        concurrency: max in-flight tasks; a task holds its slot through
            retries and breaker waits.
        hedging: duplicate straggler attempts (see :meth:`_run_attempt`).
        hedge_after: simulated seconds after which a straggling primary
            attempt fires its hedge.
        retry_policy: backoff ladder, shared semantics with the crawler.
        ladder_cap: backoff rung where the exponential ladder plateaus.
        max_attempts: ``None`` retries until success (the deterministic
            default); an int bounds the ladder and produces partial rows
            with typed miss reasons.
        negcache_ttl: negative-cache TTL in simulated seconds.
    """

    def __init__(
        self,
        backends: Sequence,
        plan: Optional[FaultPlan] = None,
        *,
        concurrency: int = 8,
        hedging: bool = True,
        hedge_after: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        ladder_cap: int = DEFAULT_LADDER_CAP,
        max_attempts: Optional[int] = None,
        negcache_ttl: float = 3600.0,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout: float = 300.0,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        self.backends = list(backends)
        self.plan = plan or FaultPlan()
        self.concurrency = concurrency
        self.hedging = hedging
        self.hedge_after = hedge_after
        self.retry_policy = retry_policy or RetryPolicy()
        self.ladder_cap = ladder_cap
        self.max_attempts = max_attempts
        self.negcache = NegativeCache(negcache_ttl)
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        # private clock: enrichment must never advance the pipeline clock
        # (crawl timelines would shift with a throughput knob otherwise)
        self.clock = SimClock()
        self.injector = FaultInjector(self.plan, self.clock)
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self.stats = ResolverStats()

    # ------------------------------------------------------------------
    def _breaker(self, backend_name: str, host: str) -> CircuitBreaker:
        key = (backend_name, host)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_failure_threshold,
                                     self.breaker_reset_timeout)
            self._breakers[key] = breaker
        return breaker

    def _latency(self, backend, host: str, domain: str,
                 attempt: int, hedge: int) -> float:
        """Simulated clean-service latency, hash-jittered into
        ``base × [0.5, 1.5)`` so stragglers exist even without faults."""
        token = (f"{self.plan.seed}|lat|{backend.name}|{host}|{domain}"
                 f"|{attempt}|{hedge}")
        frac = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
        return backend.base_latency * (0.5 + frac)

    def _simulate_attempt(self, backend, task: EnrichTask, start: float,
                          hedge: int) -> Tuple[Optional[str], float]:
        """One attempt starting at simulated ``start``.

        Returns ``(fault kind or None, end time)``.  Fault penalties
        (timeout, slow host) are measured off the private clock, which
        only ever moves forward — event times are processed in
        nondecreasing order, so ``advance_to`` is safe.
        """
        self.clock.advance_to(start)
        before = self.clock.now()
        kind: Optional[str] = None
        try:
            self.injector.check_backend(backend.name, task.host, task.domain,
                                        task.attempt, hedge)
        except FaultError as fault:
            kind = fault.kind
        charged = self.clock.now() - before
        service = self._latency(backend, task.host, task.domain,
                                task.attempt, hedge)
        return kind, start + service + charged

    def _run_attempt(self, task: EnrichTask,
                     start: float) -> Tuple[Optional[str], float]:
        """Primary attempt plus (maybe) its hedge; earliest success wins.

        A hedge fires when the primary's simulated duration exceeds
        ``hedge_after``: a duplicate request starts at ``start +
        hedge_after`` under a fresh draw namespace (``hedge=1``).  If
        either copy succeeds the earliest success is the outcome (ties go
        to the primary); if both fail the primary's fault stands.  Since
        lookups are pure, the winning copy's *value* is always the same —
        hedging buys tail latency and converts some failed primaries into
        successes, never different data.
        """
        backend = self.backends[task.backend]
        fault, end = self._simulate_attempt(backend, task, start, hedge=0)
        if not self.hedging or end - start <= self.hedge_after:
            return fault, end
        self.stats.hedges_fired += 1
        h_fault, h_end = self._simulate_attempt(
            backend, task, start + self.hedge_after, hedge=1)
        if h_fault is None and (fault is not None or h_end < end):
            self.stats.hedge_wins += 1
            return None, h_end
        return fault, end

    # ------------------------------------------------------------------
    def resolve(self, domains: Sequence[str]) -> EnrichmentTable:
        """Enrich every domain through every backend; returns the
        finalized table.  Accounting lands on :attr:`stats`."""
        self.stats = ResolverStats()
        table = EnrichmentTable(domains)
        self.stats.tasks = len(table) * len(self.backends)
        # one registered-domain split and one encoded screen tail per
        # domain, shared by every backend below
        tlds = tlds_many(table.domains)
        tails = ([f"|{domain}|0|0".encode() for domain in table.domains]
                 if self.plan.any_faults else None)
        dirty: List[EnrichTask] = []
        for backend_index, backend in enumerate(self.backends):
            dirty.extend(
                self._fast_path(backend_index, backend, table, tlds, tails))
        self.stats.event_loop_tasks = len(dirty)
        self.stats.fast_path_tasks = self.stats.tasks - len(dirty)
        if dirty:
            self._event_loop(dirty, table)
        self.stats.breaker_trips = sum(
            b.trips for b in self._breakers.values())
        self.stats.injected = self.injector.counts()
        for backend in self.backends:
            column = table.status[backend.name]
            self.stats.partial_rows += int(np.count_nonzero(
                (column == STATUS_RETRIES_EXHAUSTED)
                | (column == STATUS_BREAKER_OPEN)))
        return table.finalize()

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------
    def _fast_path(self, backend_index: int, backend, table: EnrichmentTable,
                   tlds: List[str],
                   tails: Optional[List[bytes]]) -> List[EnrichTask]:
        """Bulk-resolve every clean (domain, backend) task; return the
        dirty tail as event-loop tasks."""
        domains = table.domains
        if hasattr(backend, "host_for_tld"):
            mapping = {tld: backend.host_for_tld(tld) for tld in set(tlds)}
            hosts = [mapping[tld] for tld in tlds]
        else:
            hosts = [backend.host(domain) for domain in domains]
        if not self.plan.any_faults:
            self._bulk_fill(backend, table, domains, range(len(domains)))
            return []
        flags = self.injector.backend_dirty_many(backend.name, hosts, domains,
                                                 tails)
        if True not in flags:
            self._bulk_fill(backend, table, domains, range(len(domains)))
            return []
        keep = [not flag for flag in flags]
        rows = range(len(domains))
        clean = list(compress(domains, keep))
        clean_rows = list(compress(rows, keep))
        dirty = [
            EnrichTask(domain=domain, backend=backend_index,
                       host=host, row=row)
            for domain, host, row in zip(compress(domains, flags),
                                         compress(hosts, flags),
                                         compress(rows, flags))
        ]
        if clean:
            self._bulk_fill(backend, table, clean, clean_rows)
        return dirty

    def _bulk_fill(self, backend, table: EnrichmentTable,
                   domains: Sequence[str], rows: Sequence[int]) -> None:
        """Write clean lookups straight into the table columns.

        Statuses and the fixed-width value columns (A record, MX flag)
        land as single numpy scatter writes; only interned strings
        (countries, registrars) and negative-cache stores loop, over
        their small OK/miss subsets.
        """
        name = backend.name
        scope = backend.negcache_scope
        now = self.clock.now()
        if hasattr(backend, "lookup_many"):
            results = backend.lookup_many(domains)
        else:
            lookup = backend.lookup
            results = [lookup(domain) for domain in domains]
        count = len(results)
        if count == 0:
            return
        self.stats.attempts += count
        self.stats.successes += count
        values, statuses = zip(*results)
        rows_arr = np.fromiter(rows, dtype=np.int64, count=count)
        status_arr = np.fromiter(statuses, dtype=np.uint8, count=count)
        table.status[name][rows_arr] = status_arr
        if name == "a":
            # misses carry value 0, identical to the column's initial
            # state, so the unconditional scatter is value-exact
            table.a_ip[rows_arr] = np.fromiter(
                values, dtype=np.uint32, count=count)
        elif name == "mx":
            table.mx_present[rows_arr] = np.fromiter(
                values, dtype=np.uint8, count=count)
        else:
            set_value = table.set_value
            for row, (value, status) in zip(rows, results):
                if status == STATUS_OK:
                    set_value(name, row, value)
        if scope == "zone":
            misses = np.nonzero(status_arr == STATUS_NXDOMAIN)[0]
        elif scope == "whois":
            misses = np.nonzero(status_arr == STATUS_NO_RECORD)[0]
        else:
            misses = ()
        put = self.negcache.put
        for index in misses:
            put(scope, domains[int(index)], now)
        self.stats.negcache_stores += len(misses)

    # ------------------------------------------------------------------
    # event loop (the dirty tail)
    # ------------------------------------------------------------------
    def _negative_result(self, backend) -> Tuple[object, int]:
        """The (value, status) a negative-cache shortcut stands for."""
        if backend.negcache_scope == "zone":
            return (0 if backend.name in ("a", "mx") else None,
                    STATUS_NXDOMAIN)
        return None, STATUS_NO_RECORD

    def _event_loop(self, tasks: List[EnrichTask],
                    table: EnrichmentTable) -> None:
        """Simulated-time loop over the dirty tasks.

        Event heap entries are ``(time, seq, kind, payload)``; ``seq``
        makes ordering total, hence deterministic.  A task occupies one
        of ``concurrency`` slots from admission to completion — through
        retries, backoff sleeps, and breaker waits — modelling a real
        bounded-connection resolver.
        """
        stats = self.stats
        heap: List[Tuple[float, int, str, object]] = []
        seq = 0
        pending = deque(tasks)
        in_flight = 0
        start_time = self.clock.now()
        makespan = start_time

        def push(at: float, kind: str, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (at, seq, kind, payload))
            seq += 1

        def admit(at: float) -> None:
            nonlocal in_flight
            while in_flight < self.concurrency and pending:
                task = pending.popleft()
                in_flight += 1
                push(at, "attempt", task)

        admit(start_time)
        while heap:
            t, _seq, kind, payload = heapq.heappop(heap)
            makespan = max(makespan, t)
            if kind == "done":
                task, value, status = payload
                backend = self.backends[task.backend]
                table.status[backend.name][task.row] = status
                if status == STATUS_OK:
                    table.set_value(backend.name, task.row, value)
                in_flight -= 1
                admit(t)
                continue
            task = payload
            backend = self.backends[task.backend]
            if task.attempt >= ATTEMPT_SAFETY_CAP:
                raise RuntimeError(
                    f"enrichment of {task.domain} via {backend.name} "
                    f"exceeded {ATTEMPT_SAFETY_CAP} attempts — "
                    "fault plan cannot terminate")
            # negative cache: a sibling backend already proved the miss
            if self.negcache.hit(backend.negcache_scope, task.domain, t):
                stats.negcache_hits += 1
                value, status = self._negative_result(backend)
                push(t, "done", (task, value, status))
                continue
            breaker = self._breaker(backend.name, task.host)
            if not breaker.allow(t):
                if self.max_attempts is not None:
                    # bounded mode fails fast, like the crawl scheduler
                    stats.failures["breaker_open"] += 1
                    push(t, "done", (task, None, STATUS_BREAKER_OPEN))
                    continue
                stats.breaker_deferrals += 1
                assert breaker.opened_at is not None
                push(breaker.opened_at + breaker.reset_timeout,
                     "attempt", task)
                continue
            stats.attempts += 1
            fault, end = self._run_attempt(task, t)
            if fault is None:
                breaker.record_success()
                stats.successes += 1
                value, status = backend.lookup(task.domain)
                if status != STATUS_OK:
                    scope = backend.negcache_scope
                    if (status == STATUS_NXDOMAIN and scope == "zone") or \
                            (status == STATUS_NO_RECORD and scope == "whois"):
                        self.negcache.put(scope, task.domain, end)
                        stats.negcache_stores += 1
                push(end, "done", (task, value, status))
                continue
            breaker.record_failure(end)
            stats.failures[fault] += 1
            stats.retries += 1
            task.attempt += 1
            if self.max_attempts is not None and \
                    task.attempt >= self.max_attempts:
                push(end, "done", (task, None, STATUS_RETRIES_EXHAUSTED))
                continue
            rung = min(task.attempt - 1, self.ladder_cap)
            delay = self.retry_policy.delay(
                rung, f"{backend.name}|{task.host}|{task.domain}")
            stats.backoff_seconds += delay
            push(end + delay, "attempt", task)
        stats.sim_seconds = makespan - start_time
        self.clock.advance_to(makespan)
