"""Pluggable enrichment-backend adapters.

Each backend wraps one existing data source — the zone's A records, a
synthetic MX presence model, :class:`~repro.phishworld.whois.WhoisRegistry`,
:class:`~repro.phishworld.geoip.GeoIPRegistry` — behind one tiny protocol:

* ``name`` — stable identifier, part of every fault-draw key;
* ``host(domain)`` — which *server host* answers the lookup (circuit
  breakers are per (backend, host): one dead WHOIS server must not trip
  the breaker of another TLD's server);
* ``base_latency`` — simulated seconds a clean lookup costs;
* ``negcache_scope`` — negative-cache namespace this backend shares (all
  zone-membership backends agree a name absent from the zone is NXDOMAIN
  everywhere, so they share the ``"zone"`` scope);
* ``lookup(domain)`` — the pure data access, returning ``(value, status)``.

Lookups are *pure functions of the domain*: faults, retries, hedges, and
caches change only timing and accounting — never the value — which is what
makes the resolver's output byte-identical to the serial no-fault oracle.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.dns.records import split_domain

# ----------------------------------------------------------------------
# per-cell status codes (the typed miss reasons of graceful degradation)
# ----------------------------------------------------------------------
STATUS_OK = 0
STATUS_NXDOMAIN = 1           # name absent from the data source entirely
STATUS_NO_RECORD = 2          # name known, this record type missing
STATUS_RETRIES_EXHAUSTED = 3  # bounded ladder ran dry (partial row)
STATUS_BREAKER_OPEN = 4       # host breaker refused the final attempt

MISS_REASONS: Dict[int, str] = {
    STATUS_OK: "ok",
    STATUS_NXDOMAIN: "nxdomain",
    STATUS_NO_RECORD: "no_record",
    STATUS_RETRIES_EXHAUSTED: "retries_exhausted",
    STATUS_BREAKER_OPEN: "breaker_open",
}

#: fraction of zone-present domains that publish an MX record; the draw is
#: hash-addressed per domain so MX presence is a pure domain function
MX_PRESENT_RATE = 0.85


def _tld_of(domain: str) -> str:
    _core, tld = split_domain(domain.lower())
    return tld or "root"


def _zone_records(zone, domains) -> list:
    """One zone record per domain, bulk when the store can.

    Misses come back falsy — :data:`~repro.dns.zone.MISS` from the bulk
    stores, None from a bare ``get`` fallback — so consumers test
    ``if not record`` and never raise on never-registered names.
    """
    if hasattr(zone, "get_many"):
        return zone.get_many(domains)
    get = zone.get
    return [get(domain) for domain in domains]


def tlds_many(domains) -> list:
    """One TLD per domain, split once.

    The resolver computes this list a single time per :meth:`resolve`
    and shares it across every TLD-hosted backend (via
    ``host_for_tld``), so the registered-domain split runs once per
    domain instead of once per (backend, domain).
    """
    return [_tld_of(domain) for domain in domains]


def ip_to_u32(ip: str) -> int:
    """Dotted-quad → uint32 (0 for anything unparsable, e.g. ``0.0.0.0``)."""
    parts = ip.split(".")
    if len(parts) != 4:
        return 0
    try:
        a, b, c, d = (int(parts[0]), int(parts[1]),
                      int(parts[2]), int(parts[3]))
    except ValueError:
        return 0
    if (a | b | c | d) & ~0xFF:
        # a negative octet sets high bits too (two's complement), so one
        # mask covers both the > 255 and the < 0 rejections
        return 0
    return (a << 24) | (b << 16) | (c << 8) | d


def u32_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class ARecordBackend:
    """A-record lookup against the zone snapshot (one NS host per TLD)."""

    name = "a"
    base_latency = 0.05
    negcache_scope = "zone"

    def __init__(self, zone) -> None:
        self.zone = zone

    def host(self, domain: str) -> str:
        return self.host_for_tld(_tld_of(domain))

    def host_for_tld(self, tld: str) -> str:
        return f"ns.{tld}"

    def lookup(self, domain: str) -> Tuple[int, int]:
        record = self.zone.get(domain)
        if record is None:
            return 0, STATUS_NXDOMAIN
        packed = ip_to_u32(record.ip)
        if packed == 0:
            return 0, STATUS_NO_RECORD
        return packed, STATUS_OK

    def lookup_many(self, domains) -> list:
        """Bulk path: one zone probe per domain, no per-call dispatch."""
        out = []
        append = out.append
        for record in _zone_records(self.zone, domains):
            if not record:
                append((0, STATUS_NXDOMAIN))
                continue
            packed = ip_to_u32(record.ip)
            append((packed, STATUS_OK) if packed else (0, STATUS_NO_RECORD))
        return out


class MXBackend:
    """MX-presence probe (one MX resolver host per TLD).

    The synthetic world has no mail topology, so presence is modelled as a
    hash-addressed per-domain draw at :data:`MX_PRESENT_RATE` over
    zone-present names — deterministic, zone-membership-gated, and
    independent of fault weather.
    """

    name = "mx"
    base_latency = 0.05
    negcache_scope = "zone"

    def __init__(self, zone) -> None:
        self.zone = zone

    def host(self, domain: str) -> str:
        return self.host_for_tld(_tld_of(domain))

    def host_for_tld(self, tld: str) -> str:
        return f"mx.{tld}"

    def lookup(self, domain: str) -> Tuple[int, int]:
        if self.zone.get(domain) is None:
            return 0, STATUS_NXDOMAIN
        draw = (zlib.crc32(f"mx|{domain}".encode()) % 1_000_000) / 1_000_000.0
        if draw < MX_PRESENT_RATE:
            return 1, STATUS_OK
        return 0, STATUS_NO_RECORD

    #: crc32("mx|") — the draw token's constant prefix, hashed once so the
    #: bulk path only feeds the domain through the incremental CRC
    _DRAW_PREFIX_CRC = zlib.crc32(b"mx|")

    def lookup_many(self, domains) -> list:
        """Bulk path mirroring :meth:`lookup` draw for draw."""
        crc = zlib.crc32
        prefix = self._DRAW_PREFIX_CRC
        out = []
        append = out.append
        for domain, record in zip(domains, _zone_records(self.zone, domains)):
            if not record:
                append((0, STATUS_NXDOMAIN))
            elif (crc(domain.encode(), prefix)
                  % 1_000_000) / 1_000_000.0 < MX_PRESENT_RATE:
                append((1, STATUS_OK))
            else:
                append((0, STATUS_NO_RECORD))
        return out


class WhoisBackend:
    """Registration metadata via the WHOIS registry (one server per TLD)."""

    name = "whois"
    base_latency = 0.4
    negcache_scope = "whois"

    def __init__(self, whois) -> None:
        self.whois = whois

    def host(self, domain: str) -> str:
        return self.host_for_tld(_tld_of(domain))

    def host_for_tld(self, tld: str) -> str:
        return f"whois.{tld}"

    def lookup(self, domain: str) -> Tuple[Optional[Tuple[int, Optional[str]]], int]:
        record = self.whois.lookup(domain)
        if record is None:
            return None, STATUS_NO_RECORD
        return (record.registration_year, record.registrar), STATUS_OK

    def lookup_many(self, domains) -> list:
        """Bulk path over :meth:`WhoisRegistry.lookup_many`."""
        return [
            (None, STATUS_NO_RECORD) if record is None
            else ((record.registration_year, record.registrar), STATUS_OK)
            for record in self.whois.lookup_many(domains)
        ]


class GeoIPBackend:
    """ASN/GeoIP country of the domain's A record (one shared service host).

    Composes the zone A lookup internally so a geolocation row never
    depends on cross-backend ordering: absent from the zone → NXDOMAIN,
    unallocated address → NO_RECORD.
    """

    name = "geo"
    base_latency = 0.1
    negcache_scope = "zone"

    def __init__(self, geoip, zone) -> None:
        self.geoip = geoip
        self.zone = zone

    def host(self, domain: str) -> str:
        return "geoip.local"

    def host_for_tld(self, tld: str) -> str:
        return "geoip.local"

    def lookup(self, domain: str) -> Tuple[Optional[str], int]:
        record = self.zone.get(domain)
        if record is None:
            return None, STATUS_NXDOMAIN
        country = self.geoip.country(record.ip)
        if country is None:
            return None, STATUS_NO_RECORD
        return country, STATUS_OK

    def lookup_many(self, domains) -> list:
        """Bulk path over :meth:`GeoIPRegistry.country_many`."""
        records = _zone_records(self.zone, domains)
        countries = self.geoip.country_many(
            [record.ip if record else "" for record in records])
        out = []
        for record, country in zip(records, countries):
            if not record:
                out.append((None, STATUS_NXDOMAIN))
            elif country is None:
                out.append((None, STATUS_NO_RECORD))
            else:
                out.append((country, STATUS_OK))
        return out
