"""Serial per-domain enrichment: the resolver's reference twin.

This is the "synchronous, per-domain, one lookup at a time" path the
event-loop resolver replaces: every (backend, domain) task runs to
completion through a :class:`~repro.faults.guard.GuardedCall` — the exact
resilience wiring the crawl scheduler uses — before the next one starts.
Run with no fault plan it is THE oracle: the bench and tests assert the
resolver's finalized table digests byte-identical to this function's
output at every concurrency level, hedging setting, and fault seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.enrich.table import EnrichmentTable
from repro.faults.clock import SimClock
from repro.faults.guard import GuardedCall
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.resilience import CircuitBreaker, CrawlHealth, RetryPolicy


def enrich_serial(
    domains: Sequence[str],
    backends: Sequence,
    plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    ladder_cap: int = 6,
    breaker_failure_threshold: int = 5,
    breaker_reset_timeout: float = 300.0,
) -> Tuple[EnrichmentTable, CrawlHealth]:
    """Enrich ``domains`` one lookup at a time; returns (table, health).

    Uses ``GuardedCall(max_retries=None, wait_for_breaker=True)``: every
    lookup retries until it succeeds (lookups are pure, so faults cannot
    change values), and an open breaker is waited out on the private
    simulated clock instead of aborting — the serial path has no other
    work to interleave, so waiting is the only faithful behaviour.
    """
    clock = SimClock()
    injector = FaultInjector(plan or FaultPlan(), clock)
    policy = retry_policy or RetryPolicy()
    guard = GuardedCall(policy, clock, max_retries=None,
                        wait_for_breaker=True, ladder_cap=ladder_cap)
    breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
    health = CrawlHealth()
    table = EnrichmentTable(domains)
    for backend in backends:
        for domain in table.domains:
            host = backend.host(domain)
            breaker = breakers.get((backend.name, host))
            if breaker is None:
                breaker = CircuitBreaker(breaker_failure_threshold,
                                         breaker_reset_timeout)
                breakers[(backend.name, host)] = breaker

            def fn(attempt: int, backend=backend, domain=domain, host=host):
                injector.check_backend(backend.name, host, domain, attempt)
                clock.sleep(backend.base_latency)
                return backend.lookup(domain)

            outcome = guard.run(f"{backend.name}|{host}|{domain}",
                                fn, breaker, health)
            value, status = outcome.value
            table.set_result(backend.name, domain, value, status)
    health.breaker_trips = sum(b.trips for b in breakers.values())
    health.slow_responses = injector.injected.get("slow_response", 0)
    return table.finalize(), health
