"""Async bulk enrichment: event-loop resolver over pluggable backends.

The paper's hosting/registration analyses (Fig 15 geolocation, Fig 16
registration years) need WHOIS/GeoIP/DNS enrichment at zone scale.  This
package turns the per-domain registry walks into a bulk resolver:

* :mod:`repro.enrich.backends` — adapters over the existing registries
  (zone A records, synthetic MX presence, WHOIS, GeoIP) with per-host
  addressing and typed miss statuses;
* :mod:`repro.enrich.table` — the columnar result table (numpy columns,
  canonical interning, value-level digest);
* :mod:`repro.enrich.resolver` — the event-loop
  :class:`~repro.enrich.resolver.EnrichResolver`: bounded concurrency,
  retry ladders, per-(backend, host) breakers, hedging, negative cache,
  and a vectorized fast path for fault-free lookups;
* :mod:`repro.enrich.serial` — the synchronous reference twin whose
  no-fault run is the byte-identity oracle.
"""

from repro.enrich.backends import (
    MISS_REASONS,
    STATUS_BREAKER_OPEN,
    STATUS_NO_RECORD,
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_RETRIES_EXHAUSTED,
    ARecordBackend,
    GeoIPBackend,
    MXBackend,
    WhoisBackend,
)
from repro.enrich.resolver import (
    EnrichResolver,
    EnrichTask,
    NegativeCache,
    ResolverStats,
)
from repro.enrich.serial import enrich_serial
from repro.enrich.table import BACKEND_ORDER, EnrichmentTable

__all__ = [
    "ARecordBackend",
    "BACKEND_ORDER",
    "EnrichResolver",
    "EnrichTask",
    "EnrichmentTable",
    "GeoIPBackend",
    "MISS_REASONS",
    "MXBackend",
    "NegativeCache",
    "ResolverStats",
    "STATUS_BREAKER_OPEN",
    "STATUS_NO_RECORD",
    "STATUS_NXDOMAIN",
    "STATUS_OK",
    "STATUS_RETRIES_EXHAUSTED",
    "WhoisBackend",
    "default_backends",
    "enrich_serial",
]


def default_backends(zone, whois, geoip):
    """The standard four-backend stack in resolve order (zone-membership
    backends first so their NXDOMAINs seed the shared negative cache)."""
    return [
        ARecordBackend(zone),
        MXBackend(zone),
        WhoisBackend(whois),
        GeoIPBackend(geoip, zone),
    ]
