"""URL parsing and relative-reference resolution.

The crawler follows redirects (§3.2) whose ``Location`` headers may be
relative in the wild; this module gives the browser a real resolver instead
of assuming absolute targets.  Implements the subset of RFC 3986 the
synthetic web exercises: scheme/host/port/path/query parsing, path merging,
and dot-segment removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class URL:
    """A parsed absolute URL."""

    scheme: str
    host: str
    port: Optional[int] = None
    path: str = "/"
    query: str = ""

    def __str__(self) -> str:
        port = f":{self.port}" if self.port is not None else ""
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{self.host}{port}{self.path}{query}"

    @property
    def origin(self) -> str:
        port = f":{self.port}" if self.port is not None else ""
        return f"{self.scheme}://{self.host}{port}"


class URLError(ValueError):
    """Raised for unparseable absolute URLs."""


def parse_url(raw: str) -> URL:
    """Parse an absolute http(s) URL."""
    raw = raw.strip()
    scheme, separator, rest = raw.partition("://")
    if not separator or scheme.lower() not in ("http", "https"):
        raise URLError(f"not an absolute http(s) URL: {raw!r}")
    scheme = scheme.lower()
    authority, slash, path_and_query = rest.partition("/")
    path_and_query = slash + path_and_query if slash else "/"
    path, question, query = path_and_query.partition("?")
    host, colon, port_text = authority.partition(":")
    if not host:
        raise URLError(f"missing host: {raw!r}")
    port: Optional[int] = None
    if colon:
        try:
            port = int(port_text)
        except ValueError as exc:
            raise URLError(f"bad port in {raw!r}") from exc
        if not 0 < port < 65536:
            raise URLError(f"port out of range in {raw!r}")
    return URL(scheme=scheme, host=host.lower(), port=port,
               path=path or "/", query=query if question else "")


def is_absolute(reference: str) -> bool:
    """True when ``reference`` carries a scheme or is protocol-relative."""
    return "://" in reference or reference.startswith("//")


def remove_dot_segments(path: str) -> str:
    """RFC 3986 §5.2.4 dot-segment removal."""
    output: List[str] = []
    for segment in path.split("/"):
        if segment == ".":
            continue
        if segment == "..":
            if output and output[-1]:
                output.pop()
            continue
        output.append(segment)
    # preserve a trailing slash produced by . or ..
    if path.endswith(("/.", "/..")) and (not output or output[-1]):
        output.append("")
    cleaned = "/".join(output)
    if not cleaned.startswith("/"):
        cleaned = "/" + cleaned
    return cleaned


def resolve(base: str, reference: str) -> str:
    """Resolve a (possibly relative) reference against a base URL."""
    base_url = parse_url(base)
    reference = reference.strip()
    if not reference:
        return str(base_url)
    if reference.startswith("//"):
        return str(parse_url(f"{base_url.scheme}:{reference}"))
    if is_absolute(reference):
        return str(parse_url(reference))
    if reference.startswith("?"):
        return str(URL(scheme=base_url.scheme, host=base_url.host,
                       port=base_url.port, path=base_url.path,
                       query=reference[1:]))
    if reference.startswith("/"):
        path, _, query = reference.partition("?")
        return str(URL(scheme=base_url.scheme, host=base_url.host,
                       port=base_url.port,
                       path=remove_dot_segments(path), query=query))
    # relative path: merge with the base path's directory
    directory = base_url.path.rsplit("/", 1)[0]
    path, _, query = reference.partition("?")
    merged = remove_dot_segments(f"{directory}/{path}")
    return str(URL(scheme=base_url.scheme, host=base_url.host,
                   port=base_url.port, path=merged, query=query))
