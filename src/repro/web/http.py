"""HTTP request/response models and the two crawl profiles of §3.2."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class UserAgent:
    """A browser identity presented to hosted sites.

    The paper crawls every domain twice: once as Chrome 65 on a desktop and
    once as Safari on an iPhone 6, to surface cloaking and mobile-only
    phishing pages.
    """

    name: str
    header: str
    is_mobile: bool


WEB_UA = UserAgent(
    name="web",
    header=(
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
        "(KHTML, like Gecko) Chrome/65.0.3325.181 Safari/537.36"
    ),
    is_mobile=False,
)

MOBILE_UA = UserAgent(
    name="mobile",
    header=(
        "Mozilla/5.0 (iPhone; CPU iPhone OS 11_0 like Mac OS X) "
        "AppleWebKit/604.1.38 (KHTML, like Gecko) Version/11.0 "
        "Mobile/15A372 Safari/604.1"
    ),
    is_mobile=True,
)

CRAWL_PROFILES = (WEB_UA, MOBILE_UA)


@dataclass(frozen=True)
class Request:
    """One HTTP GET issued by the crawler."""

    url: str
    user_agent: UserAgent = WEB_UA
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def domain(self) -> str:
        """Registered host part of the URL (no scheme/path)."""
        url = self.url
        for prefix in ("https://", "http://"):
            if url.startswith(prefix):
                url = url[len(prefix):]
                break
        return url.split("/", 1)[0].lower()


@dataclass
class Response:
    """One HTTP response as seen by the crawler."""

    url: str
    status: int = 200
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)

    @property
    def location(self) -> Optional[str]:
        """Redirect target, when :attr:`is_redirect`."""
        return self.headers.get("Location")
