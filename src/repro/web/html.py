"""HTML document model and parser.

Pages in the synthetic world are *built* as element trees, *served* as markup
strings, and *re-parsed* by the measurement side — the crawler never sees
anything but HTML text, exactly like the real system.  The parser is built on
:class:`html.parser.HTMLParser` (stdlib tokenizer) with our own tree
construction, void-element handling, and the extraction helpers the feature
pipeline needs (§5.1: h/p/a/title texts, form attributes, scripts).
"""

from __future__ import annotations

import html as html_escape
from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)

# Tags whose raw text is not page text (scripts and styles).
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


class HTMLParserError(ValueError):
    """Raised when a document cannot be parsed into a tree."""


@dataclass
class Element:
    """One node of the document tree.

    Children are either :class:`Element` or plain ``str`` text nodes.
    """

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Union["Element", str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def append(self, child: Union["Element", str]) -> "Element":
        """Append a child and return self for chaining."""
        self.children.append(child)
        return self

    def extend(self, children: Sequence[Union["Element", str]]) -> "Element":
        for child in children:
            self.append(child)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, tag: str) -> List["Element"]:
        """All descendant elements with the given tag (including self)."""
        return [el for el in self.iter() if el.tag == tag]

    def find(self, tag: str) -> Optional["Element"]:
        """First descendant with the given tag, or None."""
        for el in self.iter():
            if el.tag == tag:
                return el
        return None

    def get(self, attr: str, default: str = "") -> str:
        """Attribute lookup with a default."""
        return self.attrs.get(attr, default)

    @property
    def own_text(self) -> str:
        """Concatenated direct text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def text(self) -> str:
        """All visible text under this element (skips script/style)."""
        if self.tag in RAW_TEXT_ELEMENTS:
            return ""
        parts: List[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text())
        return " ".join(p.strip() for p in parts if p.strip())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_html(self, indent: int = 0) -> str:
        """Serialize the subtree to markup."""
        pad = "  " * indent
        attrs = "".join(
            f' {key}="{html_escape.escape(str(value), quote=True)}"'
            for key, value in self.attrs.items()
        )
        if self.tag in VOID_ELEMENTS:
            return f"{pad}<{self.tag}{attrs}>"
        if self.tag in RAW_TEXT_ELEMENTS:
            raw = "".join(c if isinstance(c, str) else "" for c in self.children)
            return f"{pad}<{self.tag}{attrs}>{raw}</{self.tag}>"
        if not self.children:
            return f"{pad}<{self.tag}{attrs}></{self.tag}>"
        inner_parts: List[str] = []
        only_text = all(isinstance(c, str) for c in self.children)
        if only_text:
            inner = html_escape.escape("".join(self.children))
            return f"{pad}<{self.tag}{attrs}>{inner}</{self.tag}>"
        for child in self.children:
            if isinstance(child, str):
                if child.strip():
                    inner_parts.append("  " * (indent + 1) + html_escape.escape(child))
            else:
                inner_parts.append(child.to_html(indent + 1))
        inner = "\n".join(inner_parts)
        return f"{pad}<{self.tag}{attrs}>\n{inner}\n{pad}</{self.tag}>"


def el(tag: str, *children: Union[Element, str], **attrs: str) -> Element:
    """Terse element constructor: ``el("p", "hi", cls="x")``.

    The ``cls`` keyword maps to the ``class`` attribute; other underscores
    become hyphens (``data_embedded_text`` → ``data-embedded-text``).
    """
    fixed: Dict[str, str] = {}
    for key, value in attrs.items():
        if key == "cls":
            key = "class"
        fixed[key.replace("_", "-")] = str(value)
    node = Element(tag=tag, attrs=fixed)
    node.extend(children)
    return node


class _TreeBuilder(HTMLParser):
    """Tree-building callback sink for the stdlib tokenizer."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element(tag="#document")
        self.stack: List[Element] = [self.root]

    def handle_starttag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        element = Element(tag=tag, attrs={k: (v or "") for k, v in attrs})
        self.stack[-1].append(element)
        if tag not in VOID_ELEMENTS:
            self.stack.append(element)

    def handle_startendtag(self, tag: str, attrs: List[Tuple[str, Optional[str]]]) -> None:
        self.stack[-1].append(Element(tag=tag, attrs={k: (v or "") for k, v in attrs}))

    def handle_endtag(self, tag: str) -> None:
        # pop to the matching open tag; tolerate stray end tags
        for i in range(len(self.stack) - 1, 0, -1):
            if self.stack[i].tag == tag:
                del self.stack[i:]
                return

    def handle_data(self, data: str) -> None:
        if data:
            self.stack[-1].append(data)


def parse_html(markup: str) -> Element:
    """Parse markup into a document tree rooted at ``#document``."""
    builder = _TreeBuilder()
    try:
        builder.feed(markup)
        builder.close()
    except Exception as exc:  # html.parser raises bare exceptions on bad input
        raise HTMLParserError(str(exc)) from exc
    return builder.root


def document(title: str, *body_children: Union[Element, str]) -> Element:
    """Build a full page skeleton with ``title`` and body content."""
    return el(
        "html",
        el("head", el("title", title)),
        el("body", *body_children),
    )


# ----------------------------------------------------------------------
# extraction helpers used by the feature pipeline (§5.1)
# ----------------------------------------------------------------------

def text_content(root: Element) -> str:
    """All visible text in the document."""
    return root.text()


def lexical_texts(root: Element) -> Dict[str, List[str]]:
    """Texts from the tags the paper's lexical features use.

    Returns a map with keys ``h``, ``p``, ``a``, ``title`` (§5.1).
    """
    out: Dict[str, List[str]] = {"h": [], "p": [], "a": [], "title": []}
    for element in root.iter():
        if element.tag in ("h1", "h2", "h3", "h4", "h5", "h6"):
            out["h"].append(element.text())
        elif element.tag == "p":
            out["p"].append(element.text())
        elif element.tag == "a":
            out["a"].append(element.text())
        elif element.tag == "title":
            out["title"].append(element.text())
    return out


def forms(root: Element) -> List[Element]:
    """All form elements in the document."""
    return root.find_all("form")


def form_attributes(root: Element) -> List[str]:
    """Texts of the four §5.1 form attributes across all forms.

    ``type``, ``name``, ``placeholder`` of inputs and the submit value of
    buttons; plus the form count is reported separately by the caller.
    """
    texts: List[str] = []
    for form in forms(root):
        for node in form.iter():
            if node.tag == "input":
                for attr in ("type", "name", "placeholder", "value"):
                    value = node.get(attr)
                    if value:
                        texts.append(value)
            elif node.tag == "button":
                label = node.text() or node.get("value")
                if label:
                    texts.append(label)
            elif node.tag == "label":
                label = node.text()
                if label:
                    texts.append(label)
    return texts


def scripts(root: Element) -> List[str]:
    """All inline script bodies in the document."""
    out: List[str] = []
    for node in root.find_all("script"):
        body = "".join(c for c in node.children if isinstance(c, str))
        if body.strip():
            out.append(body)
    return out
