"""Distributed snapshot crawler (§3.2).

The paper crawls 657K domains with 5 machines × 20 Puppeteer instances, two
device profiles each, four weekly snapshots.  We reproduce the *scheduler*
faithfully — a worker pool with shared-counter work stealing (their shmget
trick), per-worker browsers, per-profile captures — on top of the synthetic
:class:`~repro.web.server.WebHost`.  Workers are simulated deterministically
(no real threads) so crawls are reproducible, but the scheduling accounting
(per-worker job counts, balance) is real and tested.

Browser instability is modelled too: the paper rejected Selenium for being
"error-prone when crawling webpages at the million-level" — so visits can
fail transiently (per-job deterministic draw) and the crawler retries up to
``max_retries`` times, recording the retry volume.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.web.browser import Browser, PageCapture
from repro.web.http import CRAWL_PROFILES, MOBILE_UA, WEB_UA, UserAgent
from repro.web.server import WebHost


@dataclass
class CrawlResult:
    """Outcome of crawling one domain with one profile in one snapshot."""

    domain: str
    profile: str
    snapshot: int
    live: bool
    capture: Optional[PageCapture] = None
    worker_id: int = -1

    @property
    def redirected(self) -> bool:
        return bool(self.capture and self.capture.was_redirected)

    @property
    def final_domain(self) -> Optional[str]:
        return self.capture.final_domain if self.capture else None


@dataclass
class CrawlSnapshot:
    """All results of one crawl pass (one snapshot index)."""

    snapshot: int
    results: Dict[Tuple[str, str], CrawlResult] = field(default_factory=dict)
    worker_job_counts: List[int] = field(default_factory=list)
    retries: int = 0

    def get(self, domain: str, profile: str) -> Optional[CrawlResult]:
        return self.results.get((domain.lower(), profile))

    def live_domains(self, profile: str) -> List[str]:
        """Domains that served content (or a redirect) for a profile."""
        return sorted(
            domain for (domain, prof), result in self.results.items()
            if prof == profile and result.live
        )

    def captures(self, profile: str) -> List[CrawlResult]:
        """Live results with page captures for a profile."""
        return [
            result for (_, prof), result in sorted(self.results.items())
            if prof == profile and result.capture is not None
        ]

    def stats(self, profile: str) -> Dict[str, int]:
        """Liveness/redirect counts for one profile (Table 2 inputs)."""
        live = 0
        redirected = 0
        total = 0
        for (_, prof), result in self.results.items():
            if prof != profile:
                continue
            total += 1
            if result.live:
                live += 1
                if result.redirected:
                    redirected += 1
        return {"total": total, "live": live, "redirected": redirected}


class _SharedCounter:
    """The crawler's work-stealing cursor.

    Stands in for the kernel shared-memory segment the paper allocates with
    ``shmget``: each worker atomically claims the next job index.
    """

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        claimed = self.value
        self.value += 1
        return claimed


class DistributedCrawler:
    """Worker-pool crawler over the synthetic web."""

    def __init__(
        self,
        host: WebHost,
        workers: int = 20,
        profiles: Sequence[UserAgent] = CRAWL_PROFILES,
        transient_failure_rate: float = 0.0,
        max_retries: int = 2,
    ) -> None:
        """
        Args:
            transient_failure_rate: probability a single visit attempt dies
                for infrastructure reasons (browser crash, timeout); drawn
                deterministically per (domain, profile, snapshot, attempt).
            max_retries: extra attempts after a transient failure.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        if not 0.0 <= transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1)")
        self.host = host
        self.workers = workers
        self.profiles = tuple(profiles)
        self.transient_failure_rate = transient_failure_rate
        self.max_retries = max_retries
        self._browsers = {
            profile.name: Browser(host, user_agent=profile) for profile in self.profiles
        }

    def _attempt_fails(self, domain: str, profile: str,
                       snapshot: int, attempt: int) -> bool:
        """Deterministic transient-failure draw for one visit attempt."""
        if self.transient_failure_rate == 0.0:
            return False
        token = f"{domain}|{profile}|{snapshot}|{attempt}".encode()
        draw = (zlib.crc32(token) % 10_000) / 10_000.0
        return draw < self.transient_failure_rate

    def _visit_with_retries(self, domain: str, profile: UserAgent,
                            snapshot: int) -> Tuple[Optional[PageCapture], int]:
        """Visit a domain, retrying transient failures; returns
        (capture, retries used)."""
        browser = self._browsers[profile.name]
        retries = 0
        for attempt in range(self.max_retries + 1):
            if self._attempt_fails(domain, profile.name, snapshot, attempt):
                retries += 1
                continue
            return browser.visit(f"http://{domain}/", snapshot=snapshot), retries
        return None, retries

    def crawl(self, domains: Iterable[str], snapshot: int = 0) -> CrawlSnapshot:
        """Crawl every domain with every profile for one snapshot.

        Jobs are (domain, profile) pairs dispatched through the shared
        counter round-robin of simulated workers; per-worker job counts are
        recorded so tests can assert the balance property the paper's IPC
        scheme provides.
        """
        jobs: List[Tuple[str, UserAgent]] = [
            (domain.lower(), profile)
            for domain in domains
            for profile in self.profiles
        ]
        counter = _SharedCounter()
        result = CrawlSnapshot(snapshot=snapshot, worker_job_counts=[0] * self.workers)
        # deterministic simulation: workers take turns claiming from the
        # shared counter until the job list is exhausted
        worker_id = 0
        while True:
            index = counter.next()
            if index >= len(jobs):
                break
            domain, profile = jobs[index]
            result.worker_job_counts[worker_id] += 1
            capture, retries = self._visit_with_retries(domain, profile, snapshot)
            result.retries += retries
            result.results[(domain, profile.name)] = CrawlResult(
                domain=domain,
                profile=profile.name,
                snapshot=snapshot,
                live=capture is not None,
                capture=capture,
                worker_id=worker_id,
            )
            worker_id = (worker_id + 1) % self.workers
        return result

    def crawl_series(
        self, domains: Sequence[str], snapshots: int = 4
    ) -> List[CrawlSnapshot]:
        """Run several weekly snapshots over the same domain list (§3.2:
        one full snapshot, then three follow-ups of the detected pages)."""
        return [self.crawl(domains, snapshot=i) for i in range(snapshots)]
