"""Distributed snapshot crawler (§3.2).

The paper crawls 657K domains with 5 machines × 20 Puppeteer instances, two
device profiles each, four weekly snapshots.  We reproduce the *scheduler*
faithfully — a worker pool with shared-counter work stealing (their shmget
trick), per-worker browsers, per-profile captures — on top of the synthetic
:class:`~repro.web.server.WebHost`.  Dispatch is real thread-pool
parallelism (:func:`repro.perf.engine.thread_map`), yet crawls stay
byte-reproducible for any worker count: see "Determinism under
concurrency" below.

Infrastructure instability is modelled too: the paper rejected Selenium for
being "error-prone when crawling webpages at the million-level" — so visits
can die for typed reasons (DNS SERVFAIL/timeout, connection reset, HTTP
5xx, browser crash; see :mod:`repro.faults`), on top of the legacy flat
``transient_failure_rate``.  The crawler answers with a real resilience
stack:

* **retries with exponential backoff** — deterministic jitter, slept on a
  simulated clock (:class:`~repro.faults.clock.SimClock`), so the timeline
  is reproducible;
* **per-host circuit breakers** — a host failing repeatedly is not
  hammered; its jobs fail fast until a cool-down probe succeeds;
* **dead-letter queue** — jobs that exhaust retries (or are refused by an
  open breaker) are recorded, never silently lost;
* **checkpoint/resume** — ``crawl(..., max_jobs=N)`` returns a partial
  :class:`CrawlSnapshot` carrying a :class:`CrawlCheckpoint`; feeding it
  back via ``resume=`` continues without re-visiting completed jobs and
  yields a snapshot identical to an uninterrupted run.

Everything is surfaced in the snapshot's
:class:`~repro.faults.resilience.CrawlHealth` report.

Determinism under concurrency
-----------------------------
The unit of dispatch is a *domain group* — all profile jobs of one domain.
Each group runs on its own **time lane**: a private
:class:`~repro.faults.clock.SimClock` starting at the crawl's shared
``base_time`` (plus the lane's elapsed time when resuming), with a private
:class:`~repro.faults.plan.FaultInjector` clone on that lane and private
browsers.  Since fault draws and backoff jitter are hash-addressed (no
RNG state) and the breaker/backoff timeline of a domain only reads its own
lane clock, a group's outcome is a pure function of (plan, domain, jobs) —
independent of which thread runs it and of what other groups do.  Group
results are merged strictly in group order, so health counters, float
sums, dead-letter order, and :meth:`CrawlSnapshot.digest` are
byte-identical for any worker count, serial included.  A checkpoint stores
each lane's elapsed time, so a resumed group continues its lane exactly
where it stopped.  Wall-clock scheduling (which thread ran what, when) is
execution metadata and is deliberately excluded from digests.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.faults.clock import SimClock
from repro.faults.errors import BrowserCrashFault
from repro.faults.guard import GuardedCall
from repro.faults.plan import FaultInjector, FaultKind
from repro.faults.resilience import (
    CircuitBreaker,
    CrawlHealth,
    DeadLetter,
    RetryPolicy,
)
from repro.perf.engine import thread_map
from repro.web.browser import Browser, PageCapture
from repro.web.http import CRAWL_PROFILES, MOBILE_UA, WEB_UA, UserAgent
from repro.web.server import WebHost

#: fault-kind label for the legacy flat transient-failure draw
TRANSIENT = "transient"


@dataclass
class CrawlResult:
    """Outcome of crawling one domain with one profile in one snapshot."""

    domain: str
    profile: str
    snapshot: int
    live: bool
    capture: Optional[PageCapture] = None
    worker_id: int = -1

    @property
    def redirected(self) -> bool:
        return bool(self.capture and self.capture.was_redirected)

    @property
    def final_domain(self) -> Optional[str]:
        return self.capture.final_domain if self.capture else None


@dataclass
class CrawlCheckpoint:
    """Everything needed to continue an interrupted crawl pass.

    Captured by :meth:`DistributedCrawler.crawl` when it stops early
    (``max_jobs``); passing it back as ``resume=`` restores the partial
    results, scheduler accounting, breaker states, and per-domain lane
    times, so the continued crawl is indistinguishable from one that never
    stopped — at any worker count.
    """

    snapshot: int
    completed: Set[Tuple[str, str]]
    results: Dict[Tuple[str, str], "CrawlResult"]
    worker_job_counts: List[int]
    retries: int
    dead_letters: List[DeadLetter]
    breakers: Dict[str, CircuitBreaker]
    health: CrawlHealth
    clock_time: float
    base_time: float = 0.0
    lane_elapsed: Dict[str, float] = field(default_factory=dict)

    @property
    def completed_jobs(self) -> int:
        return len(self.completed)


@dataclass
class CrawlSnapshot:
    """All results of one crawl pass (one snapshot index)."""

    snapshot: int
    results: Dict[Tuple[str, str], CrawlResult] = field(default_factory=dict)
    worker_job_counts: List[int] = field(default_factory=list)
    retries: int = 0
    dead_letters: List[DeadLetter] = field(default_factory=list)
    health: CrawlHealth = field(default_factory=CrawlHealth)
    breaker_states: Dict[str, Tuple] = field(default_factory=dict)
    complete: bool = True
    checkpoint: Optional[CrawlCheckpoint] = None

    def get(self, domain: str, profile: str) -> Optional[CrawlResult]:
        return self.results.get((domain.lower(), profile))

    def live_domains(self, profile: str) -> List[str]:
        """Domains that served content (or a redirect) for a profile."""
        return sorted(
            domain for (domain, prof), result in self.results.items()
            if prof == profile and result.live
        )

    def captures(self, profile: str) -> List[CrawlResult]:
        """Live results with page captures for a profile."""
        return [
            result for (_, prof), result in sorted(self.results.items())
            if prof == profile and result.capture is not None
        ]

    def stats(self, profile: str) -> Dict[str, int]:
        """Liveness/redirect counts for one profile (Table 2 inputs)."""
        live = 0
        redirected = 0
        total = 0
        for (_, prof), result in self.results.items():
            if prof != profile:
                continue
            total += 1
            if result.live:
                live += 1
                if result.redirected:
                    redirected += 1
        return {"total": total, "live": live, "redirected": redirected}

    def digest(self) -> str:
        """Canonical content hash of the snapshot.

        Covers results (including capture HTML and screenshot bytes),
        retries, dead letters, breaker states, and the health report — the
        determinism tests assert byte-identity of this digest across
        reruns, worker counts, cache on/off, and checkpoint/resume splits.
        Scheduling accounting (worker ids, per-worker job counts) is
        execution metadata and deliberately excluded.
        """
        hasher = hashlib.sha256()
        hasher.update(f"snapshot={self.snapshot}\n".encode())
        for (domain, profile) in sorted(self.results):
            result = self.results[(domain, profile)]
            hasher.update(f"{domain}|{profile}|{result.live}".encode())
            capture = result.capture
            if capture is not None:
                hasher.update(capture.final_url.encode())
                hasher.update("|".join(capture.redirect_chain).encode())
                hasher.update(capture.html.encode())
                hasher.update(capture.screenshot.pixels.tobytes())
            hasher.update(b"\n")
        hasher.update(f"retries={self.retries}\n".encode())
        for letter in self.dead_letters:
            hasher.update(f"dead={letter.key()}\n".encode())
        for domain in sorted(self.breaker_states):
            hasher.update(f"breaker={domain}:{self.breaker_states[domain]}\n".encode())
        hasher.update(repr(sorted(self.health.to_dict().items())).encode())
        return hasher.hexdigest()


class _SharedCounter:
    """The crawler's work-stealing cursor.

    Stands in for the kernel shared-memory segment the paper allocates with
    ``shmget``: each worker atomically claims the next job index.  Job →
    worker assignment derives from claimed indices, which is why
    ``worker_id = index % workers`` below models the balanced claim order.
    """

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        claimed = self.value
        self.value += 1
        return claimed


@dataclass
class _GroupSpec:
    """One dispatch unit: every pending profile job of one domain."""

    domain: str
    jobs: List[Tuple[int, UserAgent]]  # (global job index, profile)
    breaker: Optional[CircuitBreaker]
    lane_start: float  # lane-elapsed seconds already spent (resume)


@dataclass
class _GroupOutcome:
    """Everything a domain group produced, merged in group order."""

    domain: str
    results: List[Tuple[int, CrawlResult]]
    retries: int
    dead_letters: List[DeadLetter]
    health: CrawlHealth
    injected: Dict[str, int]
    breaker: CircuitBreaker
    lane_elapsed: float


class DistributedCrawler:
    """Worker-pool crawler over the synthetic web."""

    def __init__(
        self,
        host: WebHost,
        workers: int = 20,
        profiles: Sequence[UserAgent] = CRAWL_PROFILES,
        transient_failure_rate: float = 0.0,
        max_retries: int = 2,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout: float = 300.0,
        clock: Optional[SimClock] = None,
        capture_cache=None,
    ) -> None:
        """
        Args:
            transient_failure_rate: probability a single visit attempt dies
                for infrastructure reasons (browser crash, timeout); drawn
                deterministically per (domain, profile, snapshot, attempt).
            max_retries: extra attempts after a failed visit.
            fault_injector: typed fault source (DNS/HTTP/browser faults)
                threaded through the resolver, web host, and browsers.
            retry_policy: backoff schedule; defaults to exponential backoff
                with ``max_retries`` retries.
            breaker_failure_threshold: consecutive failures on one host
                before its circuit breaker opens.
            breaker_reset_timeout: simulated seconds an open breaker waits
                before allowing a half-open probe.
            clock: simulated clock shared with the injector/backoff; a
                private one is created when omitted.
            capture_cache: optional
                :class:`~repro.perf.cache.CaptureCache` shared by every
                worker browser, so byte-identical page templates render
                once per (content, profile, snapshot).
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1)")
        self.host = host
        self.workers = workers
        self.profiles = tuple(profiles)
        self.transient_failure_rate = transient_failure_rate
        self.max_retries = max_retries
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy(max_retries=max_retries)
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        self.capture_cache = capture_cache
        if clock is not None:
            self.clock = clock
        elif fault_injector is not None:
            self.clock = fault_injector.clock
        else:
            self.clock = SimClock()

    def _attempt_fails(self, domain: str, profile: str,
                       snapshot: int, attempt: int) -> bool:
        """Deterministic transient-failure draw for one visit attempt."""
        if self.transient_failure_rate == 0.0:
            return False
        token = f"{domain}|{profile}|{snapshot}|{attempt}".encode()
        draw = (zlib.crc32(token) % 10_000) / 10_000.0
        return draw < self.transient_failure_rate

    def _visit_once(self, browser: Browser, injector: Optional[FaultInjector],
                    domain: str, profile: UserAgent,
                    snapshot: int, attempt: int) -> Optional[PageCapture]:
        """One visit attempt; raises a typed fault or returns the capture
        (None for a cleanly dead site)."""
        if self._attempt_fails(domain, profile.name, snapshot, attempt):
            raise BrowserCrashFault(TRANSIENT, domain)
        if injector is not None:
            # resolver step: the crawler looks the domain up before fetching
            injector.check_dns(domain, snapshot, attempt)
        return browser.visit(f"http://{domain}/", snapshot=snapshot, attempt=attempt)

    def _run_job(
        self,
        domain: str,
        profile: UserAgent,
        snapshot: int,
        breaker: CircuitBreaker,
        health: CrawlHealth,
        clock: SimClock,
        browser: Browser,
        injector: Optional[FaultInjector],
    ) -> Tuple[Optional[PageCapture], int, Optional[DeadLetter]]:
        """Run one (domain, profile) job through the resilience stack.

        All time flows through ``clock`` — the domain's private lane — so
        the job's outcome is independent of concurrent groups.

        Returns (capture, failed attempts, dead letter or None).
        """
        guard = GuardedCall(self.retry_policy, clock,
                            max_retries=self.max_retries)
        outcome = guard.run(
            f"{domain}|{profile.name}|{snapshot}",
            lambda attempt: self._visit_once(browser, injector, domain,
                                             profile, snapshot, attempt),
            breaker, health)
        if outcome.ok:
            return outcome.value, outcome.retries, None
        dead = DeadLetter(domain=domain, profile=profile.name, snapshot=snapshot,
                          attempts=outcome.retries,
                          last_fault=outcome.last_fault or "unknown")
        return None, outcome.retries, dead

    def _run_group(self, spec: _GroupSpec, snapshot: int,
                   base_time: float) -> _GroupOutcome:
        """Crawl one domain group on its own time lane.

        The lane clock starts at ``base_time`` plus whatever the lane had
        already spent before a checkpoint, the fault-injector clone draws
        from the same plan (hash-addressed, so tallies — not draws —
        are private), and the browsers are group-local.  Nothing here
        touches shared mutable state, which is what makes the group's
        outcome thread-invariant.
        """
        lane_clock = SimClock(start=base_time + spec.lane_start)
        injector: Optional[FaultInjector] = None
        if self.fault_injector is not None:
            injector = FaultInjector(self.fault_injector.plan, lane_clock)
        browsers = {
            profile.name: Browser(self.host, user_agent=profile,
                                  fault_injector=injector,
                                  capture_cache=self.capture_cache)
            for profile in self.profiles
        }
        breaker = spec.breaker or CircuitBreaker(self.breaker_failure_threshold,
                                                 self.breaker_reset_timeout)
        health = CrawlHealth()
        results: List[Tuple[int, CrawlResult]] = []
        retries = 0
        dead_letters: List[DeadLetter] = []
        for index, profile in spec.jobs:
            capture, job_retries, dead = self._run_job(
                spec.domain, profile, snapshot, breaker, health,
                lane_clock, browsers[profile.name], injector)
            retries += job_retries
            if dead is not None:
                dead_letters.append(dead)
            results.append((index, CrawlResult(
                domain=spec.domain,
                profile=profile.name,
                snapshot=snapshot,
                live=capture is not None,
                capture=capture,
                worker_id=index % self.workers,
            )))
        if injector is not None:
            health.slow_responses = injector.injected[FaultKind.SLOW_RESPONSE]
        return _GroupOutcome(
            domain=spec.domain,
            results=results,
            retries=retries,
            dead_letters=dead_letters,
            health=health,
            injected=dict(injector.injected) if injector is not None else {},
            breaker=breaker,
            lane_elapsed=lane_clock.now() - base_time,
        )

    @staticmethod
    def _dedupe(domains: Iterable[str]) -> List[str]:
        """Lowercase and drop duplicate domains, keeping first-seen order.

        Duplicates used to create twin jobs that overwrote each other's
        results while inflating the scheduling and retry accounting.
        """
        seen: Set[str] = set()
        ordered: List[str] = []
        for domain in domains:
            lowered = domain.lower()
            if lowered not in seen:
                seen.add(lowered)
                ordered.append(lowered)
        return ordered

    def crawl(
        self,
        domains: Iterable[str],
        snapshot: int = 0,
        resume: Optional[CrawlCheckpoint] = None,
        max_jobs: Optional[int] = None,
    ) -> CrawlSnapshot:
        """Crawl every domain with every profile for one snapshot.

        Jobs are (domain, profile) pairs; consecutive jobs of one domain
        form a group, groups are dispatched on a thread pool (serial loop
        when ``workers`` would not help), and outcomes are merged in group
        order.  Per-worker job counts are recorded so tests can assert the
        balance property the paper's IPC scheme provides.

        Args:
            resume: checkpoint from a previous, interrupted pass over the
                *same* domain list and snapshot; completed jobs are skipped
                and all accounting continues where it left off.
            max_jobs: stop after completing this many jobs *in this call*;
                the returned snapshot is then partial (``complete=False``)
                and carries the checkpoint to continue from.
        """
        jobs: List[Tuple[str, UserAgent]] = [
            (domain, profile)
            for domain in self._dedupe(domains)
            for profile in self.profiles
        ]
        if resume is not None:
            if resume.snapshot != snapshot:
                raise ValueError(
                    f"checkpoint is for snapshot {resume.snapshot}, not {snapshot}")
            completed = set(resume.completed)
            result = CrawlSnapshot(
                snapshot=snapshot,
                results=dict(resume.results),
                worker_job_counts=list(resume.worker_job_counts),
                retries=resume.retries,
                dead_letters=list(resume.dead_letters),
                health=resume.health,
            )
            breakers = resume.breakers
            base_time = resume.base_time
            lane_elapsed = dict(resume.lane_elapsed)
            result.health.resumes += 1
        else:
            completed = set()
            result = CrawlSnapshot(snapshot=snapshot,
                                   worker_job_counts=[0] * self.workers)
            breakers = {}
            base_time = self.clock.now()
            lane_elapsed = {}

        # the job budget is applied to the *pending job list in index
        # order*, before dispatch — so which jobs a checkpoint covers is a
        # pure function of (jobs, completed, max_jobs), never of scheduling
        pending = [
            (index, domain, profile)
            for index, (domain, profile) in enumerate(jobs)
            if (domain, profile.name) not in completed
        ]
        if max_jobs is not None and max_jobs < len(pending):
            todo = pending[:max_jobs]
            interrupted = True
        else:
            todo = pending
            interrupted = False

        # group consecutive jobs by domain (jobs are domain-major, so a
        # domain's pending jobs are always adjacent)
        specs: List[_GroupSpec] = []
        for index, domain, profile in todo:
            if specs and specs[-1].domain == domain:
                specs[-1].jobs.append((index, profile))
            else:
                specs.append(_GroupSpec(
                    domain=domain,
                    jobs=[(index, profile)],
                    breaker=breakers.get(domain),
                    lane_start=lane_elapsed.get(domain, 0.0),
                ))

        outcomes = thread_map(
            lambda spec: self._run_group(spec, snapshot, base_time),
            specs, self.workers)

        # ordered merge: group order == job-index order, so every counter,
        # float sum, and list below is schedule-invariant
        injector = self.fault_injector
        for outcome in outcomes:
            for index, job_result in outcome.results:
                key = (job_result.domain, job_result.profile)
                result.worker_job_counts[job_result.worker_id] += 1
                result.results[key] = job_result
                completed.add(key)
            result.retries += outcome.retries
            result.dead_letters.extend(outcome.dead_letters)
            result.health.merge(outcome.health)
            if injector is not None:
                injector.injected.update(outcome.injected)
            breakers[outcome.domain] = outcome.breaker
            lane_elapsed[outcome.domain] = outcome.lane_elapsed

        result.health.dead_letters = len(result.dead_letters)
        result.health.breaker_trips = sum(b.trips for b in breakers.values())
        result.breaker_states = {
            domain: breaker.state_key()
            for domain, breaker in breakers.items()
            if breaker.state_key() != (CircuitBreaker.CLOSED, 0, None, 0)
        }
        # the crawl pass ends when its slowest lane does
        if lane_elapsed:
            self.clock.advance_to(base_time + max(lane_elapsed.values()))
        if interrupted:
            result.complete = False
            result.checkpoint = CrawlCheckpoint(
                snapshot=snapshot,
                completed=completed,
                results=dict(result.results),
                worker_job_counts=list(result.worker_job_counts),
                retries=result.retries,
                dead_letters=list(result.dead_letters),
                breakers=breakers,
                health=result.health,
                clock_time=self.clock.now(),
                base_time=base_time,
                lane_elapsed=dict(lane_elapsed),
            )
        return result

    def crawl_incremental(
        self,
        domains: Iterable[str],
        snapshot: int = 0,
        resume: Optional[CrawlCheckpoint] = None,
        interval: Optional[int] = None,
        on_checkpoint=None,
        max_slices: Optional[int] = None,
    ) -> CrawlSnapshot:
        """Crawl in ``interval``-job slices, reporting each checkpoint.

        The pipeline's crawl stages use this to fold the checkpoint into
        the run's artifact store: after every completed slice,
        ``on_checkpoint(checkpoint)`` is invoked with the pass's current
        :class:`CrawlCheckpoint`, so a killed process loses at most one
        slice of work.  Because the job budget is applied in job-index
        order before dispatch, the slice boundaries — and therefore the
        final snapshot — are byte-identical to an uninterrupted crawl.

        Args:
            resume: checkpoint to continue from (e.g. loaded back from a
                store partial).
            interval: jobs per slice; ``None`` or a non-positive value
                runs the whole pass in one slice (no checkpoints fire).
            on_checkpoint: callback receiving each intermediate
                checkpoint; ignored when the pass finishes in one slice.
            max_slices: stop after this many slices even if jobs remain,
                returning the partial snapshot (tests use this to model a
                worker whose time budget expires mid-pass).
        """
        domain_list = list(domains)
        checkpoint = resume
        slices = 0
        while True:
            budget = interval if interval is not None and interval > 0 else None
            result = self.crawl(domain_list, snapshot=snapshot,
                                resume=checkpoint, max_jobs=budget)
            slices += 1
            if result.complete:
                return result
            checkpoint = result.checkpoint
            if on_checkpoint is not None:
                on_checkpoint(checkpoint)
            if max_slices is not None and slices >= max_slices:
                return result

    def crawl_series(
        self, domains: Sequence[str], snapshots: int = 4
    ) -> List[CrawlSnapshot]:
        """Run several weekly snapshots over the same domain list (§3.2:
        one full snapshot, then three follow-ups of the detected pages)."""
        return [self.crawl(domains, snapshot=i) for i in range(snapshots)]
