"""Headless-browser facade: fetch, follow redirects, render, screenshot.

Plays the role Puppeteer plays in §3.2: given a URL and a device profile it
returns the final landing URL, the (dynamic) HTML, and a screenshot raster.
"Dynamic content" matters for fidelity — some attacker pages inject their
login form from JavaScript (the ADP case study, Fig 14d), so the browser
executes a tiny supported subset of DOM-writing scripts before rendering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.web.html import Element, parse_html

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector
from repro.web.http import Request, Response, UserAgent, WEB_UA
from repro.web.screenshot import Screenshot, render_page
from repro.web.server import WebHost

MAX_REDIRECTS = 8

# The browser's "JavaScript engine" understands the injection idiom the
# synthetic attacker uses:  document.body.innerHTML += "<form>...</form>";
_INNERHTML_RE = re.compile(
    r"document\.body\.innerHTML\s*\+=\s*(['\"])(?P<markup>(?:\\.|(?!\1).)*)\1",
    re.DOTALL,
)


@dataclass
class PageCapture:
    """Everything the crawler stores about one page visit."""

    requested_url: str
    final_url: str
    user_agent: UserAgent
    html: str
    screenshot: Screenshot
    redirect_chain: Tuple[str, ...] = ()

    @property
    def was_redirected(self) -> bool:
        return len(self.redirect_chain) > 0

    @property
    def final_domain(self) -> str:
        return Request(url=self.final_url).domain


class Browser:
    """Fetch + execute + render pipeline over a :class:`WebHost`."""

    def __init__(
        self,
        host: WebHost,
        user_agent: UserAgent = WEB_UA,
        fault_injector: Optional["FaultInjector"] = None,
        capture_cache=None,
    ) -> None:
        """
        Args:
            capture_cache: optional
                :class:`~repro.perf.cache.CaptureCache`; parse/execute/
                render is skipped when another visit already rendered a
                byte-identical served body under the same UA profile and
                snapshot epoch.  Fetch, redirects, and fault draws are
                never cached — they happen before the lookup, so failure
                behavior is identical with and without the cache.
        """
        self.host = host
        self.user_agent = user_agent
        self.fault_injector = fault_injector
        self.capture_cache = capture_cache

    def visit(self, url: str, snapshot: int = 0, attempt: int = 0) -> Optional[PageCapture]:
        """Visit a URL, following redirects; None when the site is dead.

        With a fault injector installed the visit can die for
        infrastructure reasons instead — the browser process may crash
        (:class:`~repro.faults.errors.BrowserCrashFault`), the transport
        may reset, or an origin may answer 5xx
        (:class:`~repro.faults.errors.HTTPServerError`).  All are
        :class:`~repro.faults.errors.FaultError` subclasses, and all are
        retryable; ``attempt`` re-addresses the fault draws per retry.
        """
        if self.fault_injector is not None:
            self.fault_injector.check_browser(
                url, self.user_agent.name, snapshot, attempt)
        chain: List[str] = []
        current = url
        response: Optional[Response] = None
        for _hop in range(MAX_REDIRECTS):
            response = self.host.serve(
                Request(url=current, user_agent=self.user_agent),
                snapshot=snapshot,
                injector=self.fault_injector,
                attempt=attempt,
            )
            if response is None:
                return None
            if response.status >= 500:
                from repro.faults.errors import HTTPServerError
                from repro.faults.plan import FaultKind

                raise HTTPServerError(FaultKind.HTTP_5XX,
                                      Request(url=current).domain,
                                      status=response.status)
            if response.is_redirect and response.location:
                # Location may be relative in the wild; resolve it
                from repro.web.urls import URLError, resolve

                try:
                    target = resolve(current, response.location)
                except URLError:
                    return None  # unresolvable redirect target
                chain.append(target)
                current = target
                continue
            break
        if response is None or response.is_redirect:
            return None  # redirect loop or dead end
        html, shot = self._render(response.body, snapshot)
        return PageCapture(
            requested_url=url,
            final_url=current,
            user_agent=self.user_agent,
            html=html,
            screenshot=shot,
            redirect_chain=tuple(chain),
        )

    def _render(self, body: str, snapshot: int) -> Tuple[str, Screenshot]:
        """Execute scripts and rasterize, content-addressed when cached.

        Rendering is a pure function of (served bytes, UA profile), so
        entries keyed on the body digest return byte-identical artifacts;
        a cloaked site serves per-UA bodies and the UA sits in the key,
        so profiles can never share entries.
        """
        cache = self.capture_cache
        if cache is not None and cache.enabled:
            key = cache.render_key(body, self.user_agent.name, snapshot)
            # single-flight: concurrent duplicates serialize per key, so
            # the follower hits and the hit/miss split is deterministic
            with cache.render_lock(key):
                hit = cache.lookup_render(key)
                if hit is not None:
                    return hit
                html, shot = self._render_uncached(body)
                cache.store_render(key, html, shot)
                return html, shot
        if cache is not None:
            cache.lookup_render(
                cache.render_key(body, self.user_agent.name, snapshot))
        return self._render_uncached(body)

    def _render_uncached(self, body: str) -> Tuple[str, Screenshot]:
        document = parse_html(body)
        document = self._execute_scripts(document)
        shot = render_page(document)
        html = document_to_html(document)
        return html, shot

    def _execute_scripts(self, document: Element) -> Element:
        """Apply supported DOM-writing scripts to the tree."""
        injected_markup: List[str] = []
        for script in document.find_all("script"):
            body = "".join(c for c in script.children if isinstance(c, str))
            for match in _INNERHTML_RE.finditer(body):
                markup = (
                    match.group("markup")
                    .replace('\\"', '"')
                    .replace("\\'", "'")
                    .replace("\\n", "\n")
                )
                injected_markup.append(markup)
        if not injected_markup:
            return document
        body = document.find("body")
        if body is None:
            return document
        for markup in injected_markup:
            fragment = parse_html(markup)
            for child in list(fragment.children):
                body.append(child)
        return document


def document_to_html(document: Element) -> str:
    """Serialize a parsed document back to markup.

    The parse root is the synthetic ``#document`` node; its children are the
    real top-level elements.
    """
    if document.tag == "#document":
        return "\n".join(
            child.to_html() for child in document.children if isinstance(child, Element)
        )
    return document.to_html()
