"""Web substrate: HTML, JavaScript, layout, screenshots, hosting, crawling.

Everything the paper's measurement needs from "the web" lives here:

* :mod:`repro.web.html` — an element-tree document model plus an HTML parser,
  so pages round-trip through real markup strings;
* :mod:`repro.web.javascript` — a JS tokenizer and the obfuscation-indicator
  extraction used by the evasion measurement (§4.2);
* :mod:`repro.web.layout` / :mod:`repro.web.screenshot` — a block layout
  engine and a bitmap-font rasterizer standing in for headless Chrome's
  renderer: the screenshot raster is what OCR and image hashing consume;
* :mod:`repro.web.server` — hosted-site behaviour (liveness, redirects,
  cloaking by User-Agent);
* :mod:`repro.web.browser` — a headless-browser facade that follows
  redirects and returns HTML + screenshot, like Puppeteer does in §3.2;
* :mod:`repro.web.crawler` — the distributed snapshot crawler.
"""

from repro.web.html import Element, HTMLParserError, parse_html, text_content
from repro.web.http import Request, Response, UserAgent, MOBILE_UA, WEB_UA
from repro.web.javascript import ObfuscationIndicators, analyze_script, tokenize_js
from repro.web.layout import LayoutEngine, TextRegion
from repro.web.screenshot import Screenshot, render_page
from repro.web.server import HostedSite, SiteBehavior
from repro.web.browser import Browser, PageCapture
from repro.web.crawler import CrawlResult, CrawlSnapshot, DistributedCrawler

__all__ = [
    "Browser",
    "CrawlResult",
    "CrawlSnapshot",
    "DistributedCrawler",
    "Element",
    "HTMLParserError",
    "HostedSite",
    "LayoutEngine",
    "MOBILE_UA",
    "ObfuscationIndicators",
    "PageCapture",
    "Request",
    "Response",
    "Screenshot",
    "SiteBehavior",
    "TextRegion",
    "UserAgent",
    "WEB_UA",
    "analyze_script",
    "parse_html",
    "render_page",
    "text_content",
    "tokenize_js",
]
