"""Screenshot rasterizer: page layout → grayscale numpy raster.

The raster is the common currency of the visual pipeline: the OCR engine
reads glyphs off it and the image hasher (Fig 8/9) fingerprints it.  Pages
are drawn with the shared 5×7 bitmap font; boxed regions (inputs, buttons)
get border ink, and image-embedded text renders exactly like ordinary text —
which is the whole point of the paper's OCR features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ocr.font import GLYPH_HEIGHT, GLYPH_SPACING, GLYPH_WIDTH, render_text
from repro.web.html import Element
from repro.web.layout import LayoutEngine, PageLayout, TextRegion

CELL_WIDTH = GLYPH_WIDTH + GLYPH_SPACING
CELL_HEIGHT = GLYPH_HEIGHT + 3  # line leading

INK = 0       # glyph pixels are dark
PAPER = 255   # background is light


@dataclass
class Screenshot:
    """A rendered page: pixels plus the region list that produced them.

    ``pixels`` is a (H, W) uint8 array, PAPER background / INK glyphs.
    ``regions`` is kept for ground-truth introspection and tests; the
    measurement pipeline itself only reads :attr:`pixels`.
    """

    pixels: "np.ndarray"
    regions: List[TextRegion] = field(default_factory=list)

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    def crop(self, x: int, y: int, width: int, height: int) -> "Screenshot":
        """Crop a pixel rectangle (clamped to bounds)."""
        y0 = max(0, y)
        x0 = max(0, x)
        return Screenshot(pixels=self.pixels[y0:y0 + height, x0:x0 + width].copy())

    def ink_ratio(self) -> float:
        """Fraction of dark pixels — a cheap density fingerprint."""
        return float((self.pixels < 128).mean())


def rasterize(layout: PageLayout) -> Screenshot:
    """Draw a laid-out page into pixels."""
    height_px = layout.height_cells * CELL_HEIGHT
    width_px = layout.width_cells * CELL_WIDTH
    pixels = np.full((height_px, width_px), PAPER, dtype=np.uint8)
    for region in layout.regions:
        _draw_region(pixels, region)
    return Screenshot(pixels=pixels, regions=list(layout.regions))


def _draw_region(pixels: "np.ndarray", region: TextRegion) -> None:
    strip = render_text(region.text)
    if strip.shape[1] == 0:
        return
    if region.scale > 1:
        strip = np.kron(strip, np.ones((region.scale, region.scale), dtype=np.uint8))
    y_px = region.y * CELL_HEIGHT + 1
    x_px = region.x * CELL_WIDTH + 1
    height, width = strip.shape
    max_y, max_x = pixels.shape
    if y_px >= max_y or x_px >= max_x:
        return
    height = min(height, max_y - y_px)
    width = min(width, max_x - x_px)
    target = pixels[y_px:y_px + height, x_px:x_px + width]
    target[strip[:height, :width] == 1] = INK
    if region.boxed:
        _draw_box(pixels, x_px - 1, y_px - 1, width + 4, height + 3)


def _draw_box(pixels: "np.ndarray", x: int, y: int, width: int, height: int) -> None:
    max_y, max_x = pixels.shape
    x2 = min(max_x - 1, x + width)
    y2 = min(max_y - 1, y + height)
    x = max(0, x)
    y = max(0, y)
    pixels[y, x:x2] = INK
    pixels[y2, x:x2] = INK
    pixels[y:y2, x] = INK
    pixels[y:y2 + 1, x2] = INK


def render_page(root: Element, page_width_cells: Optional[int] = None) -> Screenshot:
    """Layout + rasterize a document in one call (the browser's "screenshot")."""
    engine = LayoutEngine(page_width=page_width_cells) if page_width_cells else LayoutEngine()
    layout = engine.layout(root)
    return rasterize(layout)


def to_ascii_art(shot: Screenshot, max_width: int = 100) -> str:
    """Downsample a screenshot to ASCII for terminal case studies (Fig 14)."""
    step_y = max(1, shot.height // 40)
    step_x = max(1, shot.width // max_width)
    rows = []
    for y in range(0, shot.height, step_y):
        row = []
        for x in range(0, shot.width, step_x):
            block = shot.pixels[y:y + step_y, x:x + step_x]
            row.append("#" if (block < 128).mean() > 0.15 else " ")
        rows.append("".join(row).rstrip())
    # trim trailing blank rows
    while rows and not rows[-1]:
        rows.pop()
    return "\n".join(rows)
