"""Block layout engine: document tree → positioned text regions.

This is the stand-in for headless Chrome's renderer.  It walks the body in
document order and assigns each visible piece of text a rectangle on the
page, flowing top-to-bottom with per-tag styling (heading scale, form box
insets, button chrome).  Two properties matter for fidelity to the paper:

* text that the HTML hides from extraction (drawn inside images via the
  ``data-embedded-text`` attribute, the string-obfuscation trick of §4.2)
  still yields a region — it is *visible*, just not HTML text;
* layout-obfuscated pages (shuffled sections, offset blocks) produce a
  different region geometry, which is what drives the image-hash distances
  of Fig 8/9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.web.html import Element

# Page geometry in glyph-cell units.  A "cell" is one font glyph footprint;
# the rasterizer maps cells to pixels.
PAGE_WIDTH_CELLS = 64
DEFAULT_PAGE_HEIGHT_CELLS = 48

HEADING_TAGS = {"h1": 2, "h2": 2, "h3": 1}  # extra vertical padding rows


@dataclass(frozen=True)
class TextRegion:
    """One laid-out run of text.

    Attributes:
        text: the visible string.
        x, y: top-left cell position.
        scale: font scale factor (headings render larger).
        kind: semantic origin — ``heading`` / ``text`` / ``link`` /
            ``input`` / ``button`` / ``image`` / ``title``.
        from_image: True when the text is pixels inside an image, i.e.
            invisible to HTML text extraction but visible to OCR.
        boxed: True when the region is drawn inside a box (inputs, buttons),
            which adds border ink around the glyphs.
    """

    text: str
    x: int
    y: int
    scale: int = 1
    kind: str = "text"
    from_image: bool = False
    boxed: bool = False

    @property
    def width_cells(self) -> int:
        return len(self.text) * self.scale

    @property
    def height_cells(self) -> int:
        return self.scale


@dataclass
class PageLayout:
    """The full layout result for one page."""

    regions: List[TextRegion] = field(default_factory=list)
    height_cells: int = DEFAULT_PAGE_HEIGHT_CELLS
    width_cells: int = PAGE_WIDTH_CELLS

    def visible_text(self) -> str:
        """All text a user can see, in paint order."""
        return " ".join(region.text for region in self.regions if region.text.strip())

    def form_regions(self) -> List[TextRegion]:
        """Regions belonging to form controls (the paper's login-form area)."""
        return [r for r in self.regions if r.kind in ("input", "button")]


class LayoutEngine:
    """Flow layout over the supported tag set."""

    def __init__(self, page_width: int = PAGE_WIDTH_CELLS) -> None:
        self.page_width = page_width

    def layout(self, root: Element) -> PageLayout:
        """Lay out a parsed document (or subtree) into text regions."""
        page = PageLayout(width_cells=self.page_width)
        body = root.find("body") or root
        cursor_y = 1
        title = root.find("title")
        if title is not None and title.text():
            page.regions.append(
                TextRegion(text=title.text()[: self.page_width], x=1, y=0, kind="title")
            )
            cursor_y = 2
        cursor_y = self._layout_children(body, page, cursor_y, indent=1)
        page.height_cells = max(DEFAULT_PAGE_HEIGHT_CELLS, cursor_y + 1)
        return page

    # ------------------------------------------------------------------
    def _layout_children(self, element: Element, page: PageLayout, y: int, indent: int) -> int:
        for child in element.children:
            if isinstance(child, str):
                y = self._emit_wrapped(child, page, y, indent, kind="text")
                continue
            y = self._layout_element(child, page, y, indent)
        return y

    def _layout_element(self, element: Element, page: PageLayout, y: int, indent: int) -> int:
        tag = element.tag
        if tag in ("script", "style", "head", "title", "meta", "link"):
            return y
        offset = self._style_offset(element)
        if tag in HEADING_TAGS:
            pad = HEADING_TAGS[tag]
            text = element.text()
            if text:
                y += 1
                page.regions.append(
                    TextRegion(text=text[: self.page_width], x=indent + offset, y=y,
                               scale=1, kind="heading")
                )
                y += pad
            return y
        if tag == "p":
            y = self._emit_wrapped(element.text(), page, y, indent + offset, kind="text")
            return y + 1
        if tag == "a":
            text = element.text() or element.get("href")
            if text:
                page.regions.append(
                    TextRegion(text=text[: self.page_width], x=indent + offset, y=y, kind="link")
                )
                y += 1
            return y
        if tag == "img":
            return self._layout_image(element, page, y, indent + offset)
        if tag == "form":
            return self._layout_form(element, page, y, indent + offset)
        if tag == "input":
            return self._layout_input(element, page, y, indent + offset)
        if tag == "button":
            label = element.text() or element.get("value") or "submit"
            page.regions.append(
                TextRegion(text=label[:24], x=indent + offset + 1, y=y,
                           kind="button", boxed=True)
            )
            return y + 2
        if tag == "br":
            return y + 1
        if tag in ("div", "section", "main", "header", "footer", "body", "html",
                   "#document", "span", "label", "ul", "li", "nav", "table",
                   "tr", "td", "center"):
            # walk children in document order so text interleaved with
            # elements (e.g. around <br>) keeps its position
            for child in element.children:
                if isinstance(child, Element):
                    y = self._layout_element(child, page, y, indent + offset)
                elif child.strip():
                    y = self._emit_wrapped(child, page, y, indent + offset,
                                           kind="text")
            return y
        # unknown tags: render their text conservatively
        text = element.text()
        if text:
            y = self._emit_wrapped(text, page, y, indent + offset, kind="text")
        return y

    def _layout_form(self, element: Element, page: PageLayout, y: int, indent: int) -> int:
        y += 1  # form top margin
        for child in element.children:
            if isinstance(child, str):
                y = self._emit_wrapped(child, page, y, indent, kind="text")
                continue
            y = self._layout_element(child, page, y, indent + 1)
        return y + 1

    def _layout_input(self, element: Element, page: PageLayout, y: int, indent: int) -> int:
        input_type = element.get("type", "text")
        if input_type == "hidden":
            return y
        hint = element.get("placeholder") or element.get("value") or element.get("name")
        if input_type == "submit":
            page.regions.append(
                TextRegion(text=(element.get("value") or "submit")[:24],
                           x=indent + 1, y=y, kind="button", boxed=True)
            )
            return y + 2
        if hint:
            page.regions.append(
                TextRegion(text=hint[:32], x=indent + 1, y=y, kind="input", boxed=True)
            )
        return y + 2

    def _layout_image(self, element: Element, page: PageLayout, y: int, indent: int) -> int:
        embedded = element.get("data-embedded-text")
        alt = element.get("alt")
        height = max(2, int(element.get("height", "3") or 3) // 16)
        if embedded:
            # the image file contains rendered text: visible, not in HTML
            page.regions.append(
                TextRegion(text=embedded[: self.page_width], x=indent + 1, y=y + 1,
                           kind="image", from_image=True)
            )
        elif alt:
            # pure-graphic image: alt text is NOT painted; draw nothing
            pass
        return y + height + 1

    def _emit_wrapped(self, text: str, page: PageLayout, y: int, indent: int, kind: str) -> int:
        text = " ".join(text.split())
        if not text:
            return y
        width = max(8, self.page_width - indent - 1)
        words = text.split(" ")
        line: List[str] = []
        length = 0
        for word in words:
            extra = len(word) + (1 if line else 0)
            if length + extra > width and line:
                page.regions.append(TextRegion(text=" ".join(line), x=indent, y=y, kind=kind))
                y += 1
                line, length = [word], len(word)
            else:
                line.append(word)
                length += extra
        if line:
            page.regions.append(TextRegion(text=" ".join(line), x=indent, y=y, kind=kind))
            y += 1
        return y

    @staticmethod
    def _style_offset(element: Element) -> int:
        """Horizontal offset from inline style (layout obfuscation uses
        ``margin-left`` to push blocks around)."""
        style = element.get("style")
        if not style:
            return 0
        for decl in style.split(";"):
            decl = decl.strip()
            if decl.startswith("margin-left:"):
                value = decl.split(":", 1)[1].strip().rstrip("px").strip()
                try:
                    return max(0, min(20, int(value) // 8))
                except ValueError:
                    return 0
        return 0
