"""Hosted-site behaviour: what a domain serves to a visiting browser.

Each registered domain in the synthetic world maps to a :class:`HostedSite`
with one of the behaviours the crawl measurement observes (§3.2):

* ``dead`` — no response (about 45% of squatting domains in the paper);
* ``content`` — serves a page, possibly different per User-Agent (cloaking);
* ``redirect`` — 302 to another URL, classified later as *original* brand
  site, domain *marketplace*, or *other*.

Content is provided by callables so attacker pages can vary per snapshot
(takedown, resurrection — Table 13) and per device profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.web.html import Element
from repro.web.http import Request, Response, UserAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector


class SiteBehavior(str, enum.Enum):
    """Top-level serving behaviour of a hosted domain."""

    DEAD = "dead"
    CONTENT = "content"
    REDIRECT = "redirect"


# A content provider maps (user agent, snapshot index) to a document, or
# None when the page is down for that snapshot.
ContentProvider = Callable[[UserAgent, int], Optional[Element]]


@dataclass
class HostedSite:
    """One domain's serving configuration.

    Attributes:
        domain: registered domain this site answers for.
        behavior: dead / content / redirect.
        provider: content provider when ``behavior == CONTENT``.
        redirect_to: target URL when ``behavior == REDIRECT``.
        ip: hosting address (joins to geoip).
        label: ground-truth world label (``benign`` / ``parked`` /
            ``phishing`` / ``defensive`` / ``original``), never exposed to
            the measurement pipeline — used only for oracle verification
            and for scoring the classifier.
    """

    domain: str
    behavior: SiteBehavior
    provider: Optional[ContentProvider] = None
    redirect_to: Optional[str] = None
    ip: str = "0.0.0.0"
    label: str = "benign"
    metadata: Dict[str, str] = field(default_factory=dict)

    def respond(self, request: Request, snapshot: int = 0) -> Optional[Response]:
        """Serve a request at a given snapshot; None when unreachable."""
        if self.behavior == SiteBehavior.DEAD:
            return None
        if self.behavior == SiteBehavior.REDIRECT:
            return Response(
                url=request.url,
                status=302,
                headers={"Location": self.redirect_to or ""},
            )
        assert self.provider is not None, f"content site {self.domain} lacks a provider"
        page = self.provider(request.user_agent, snapshot)
        if page is None:
            return None
        return Response(url=request.url, status=200, body=page.to_html())


class WebHost:
    """The synthetic web: a resolvable-domain → site table."""

    def __init__(self) -> None:
        self._sites: Dict[str, HostedSite] = {}

    def register(self, site: HostedSite) -> None:
        self._sites[site.domain.lower()] = site

    def get(self, domain: str) -> Optional[HostedSite]:
        return self._sites.get(domain.lower())

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._sites

    def sites(self):
        """Iterate over all hosted sites."""
        return iter(self._sites.values())

    def serve(
        self,
        request: Request,
        snapshot: int = 0,
        injector: Optional["FaultInjector"] = None,
        attempt: int = 0,
    ) -> Optional[Response]:
        """Route a request to the owning site; None if domain unresolvable.

        With a fault ``injector``, the transport can misbehave first: the
        connection may reset (raises
        :class:`~repro.faults.errors.ConnectionResetFault`), the origin may
        answer ``503`` instead of content, or the response may simply be
        slow (charged to the injector's simulated clock).  ``attempt``
        addresses the draws so each retry sees fresh weather.
        """
        site = self._sites.get(request.domain)
        if site is None:
            return None
        if injector is not None:
            status_override = injector.check_server(
                request.domain, request.user_agent.name, snapshot, attempt
            )
            if status_override is not None:
                return Response(url=request.url, status=status_override)
        return site.respond(request, snapshot=snapshot)
