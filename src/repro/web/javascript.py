"""JavaScript tokenizer and obfuscation-indicator extraction (§4.2).

The paper parses page JavaScript into an AST and extracts known obfuscation
indicators (borrowed from FrameHanger): heavy use of string-builder functions
(``fromCharCode`` / ``charCodeAt``), dynamic evaluation (``eval``,
``Function``, ``unescape``), and a high density of special characters or
long opaque string literals.

We implement a compact JS tokenizer (strings, comments, regex-safe enough for
indicator counting, identifiers, numbers, punctuation) and derive the
indicator statistics from the token stream.  That is equivalent to the
paper's AST usage for this purpose: every indicator is a call-site or literal
property, all visible at token level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Sequence, Tuple

# Call-site identifiers that signal string-decoding obfuscation.
STRING_FUNCTION_INDICATORS = frozenset(
    {"fromCharCode", "charCodeAt", "charAt", "unescape", "decodeURIComponent",
     "atob", "parseInt"}
)

# Dynamic-evaluation entry points.
DYNAMIC_EVAL_INDICATORS = frozenset({"eval", "Function", "setTimeout", "setInterval",
                                     "execScript", "document.write"})

_PUNCTUATION = set("{}()[];,.<>+-*/%=&|^!~?:")


class Token(NamedTuple):
    """One lexical token: kind in {identifier, number, string, punct}."""

    kind: str
    value: str


def tokenize_js(source: str) -> List[Token]:
    """Tokenize JavaScript source for indicator counting.

    Comments are skipped; string literals keep their body (no quotes).
    The tokenizer is forgiving: unterminated constructs consume to EOF
    rather than raising, since crawled pages contain broken scripts.
    """
    tokens: List[Token] = []
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        if char.isspace():
            i += 1
            continue
        # comments
        if char == "/" and i + 1 < n:
            nxt = source[i + 1]
            if nxt == "/":
                end = source.find("\n", i)
                i = n if end == -1 else end + 1
                continue
            if nxt == "*":
                end = source.find("*/", i + 2)
                i = n if end == -1 else end + 2
                continue
        # strings
        if char in "'\"`":
            j = i + 1
            buf: List[str] = []
            while j < n and source[j] != char:
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j:j + 2])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            tokens.append(Token("string", "".join(buf)))
            i = j + 1
            continue
        # numbers
        if char.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] in ".xXbBoO"):
                j += 1
            tokens.append(Token("number", source[i:j]))
            i = j
            continue
        # identifiers
        if char.isalpha() or char in "_$":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_$"):
                j += 1
            tokens.append(Token("identifier", source[i:j]))
            i = j
            continue
        tokens.append(Token("punct", char))
        i += 1
    return tokens


@dataclass
class ObfuscationIndicators:
    """Indicator statistics for one script (or one page's scripts)."""

    string_function_calls: int = 0
    dynamic_eval_calls: int = 0
    long_string_literals: int = 0
    max_string_entropy: float = 0.0
    special_char_ratio: float = 0.0
    hex_escape_count: int = 0
    token_count: int = 0

    @property
    def is_obfuscated(self) -> bool:
        """Conservative verdict using strong, well-known indicators only.

        Mirrors the paper's choice to count "strong indicators" and accept a
        lower bound: decode-function or eval usage, or opaque high-entropy
        payload strings.
        """
        if self.string_function_calls >= 2:
            return True
        if self.dynamic_eval_calls >= 1 and self.string_function_calls >= 1:
            return True
        if self.hex_escape_count >= 8:
            return True
        if self.long_string_literals >= 1 and self.max_string_entropy >= 4.2:
            return True
        return False


def _shannon_entropy(text: str) -> float:
    if not text:
        return 0.0
    counts: dict = {}
    for char in text:
        counts[char] = counts.get(char, 0) + 1
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def analyze_script(source: str) -> ObfuscationIndicators:
    """Extract obfuscation indicators from one script body."""
    tokens = tokenize_js(source)
    out = ObfuscationIndicators(token_count=len(tokens))
    special = sum(1 for t in tokens if t.kind == "punct")
    out.special_char_ratio = special / len(tokens) if tokens else 0.0
    for index, token in enumerate(tokens):
        if token.kind == "identifier":
            if token.value in STRING_FUNCTION_INDICATORS:
                out.string_function_calls += 1
            elif token.value in DYNAMIC_EVAL_INDICATORS:
                out.dynamic_eval_calls += 1
        elif token.kind == "string":
            if len(token.value) >= 40:
                out.long_string_literals += 1
                out.max_string_entropy = max(
                    out.max_string_entropy, _shannon_entropy(token.value)
                )
            out.hex_escape_count += token.value.count("\\x") + token.value.count("\\u")
    return out


def analyze_scripts(sources: Sequence[str]) -> ObfuscationIndicators:
    """Aggregate indicators over all scripts of one page."""
    combined = ObfuscationIndicators()
    weighted_ratio = 0.0
    for source in sources:
        one = analyze_script(source)
        combined.string_function_calls += one.string_function_calls
        combined.dynamic_eval_calls += one.dynamic_eval_calls
        combined.long_string_literals += one.long_string_literals
        combined.max_string_entropy = max(combined.max_string_entropy, one.max_string_entropy)
        combined.hex_escape_count += one.hex_escape_count
        combined.token_count += one.token_count
        weighted_ratio += one.special_char_ratio * one.token_count
    if combined.token_count:
        combined.special_char_ratio = weighted_ratio / combined.token_count
    return combined
