"""Deterministic fault injection + resilience primitives.

Two halves, mirroring the repo's world/measurement split:

* the **fault model** (:mod:`repro.faults.plan`) makes the synthetic
  internet fail the way the real one does — DNS SERVFAIL/timeouts, HTTP
  5xx, connection resets, slow responses, browser crashes, OCR garbling —
  from a seeded, hash-addressed :class:`FaultPlan`, so failure weather is
  byte-reproducible;
* the **resilience stack** (:mod:`repro.faults.resilience`,
  :mod:`repro.faults.clock`) is what the measurement system fights back
  with — exponential backoff with deterministic jitter on a simulated
  clock, per-host circuit breakers, dead-letter accounting, and the
  :class:`CrawlHealth` report the pipeline surfaces.
"""

from repro.faults.clock import SimClock
from repro.faults.errors import (
    BreakerOpenError,
    BrowserCrashFault,
    ConnectionResetFault,
    DNSFault,
    FaultError,
    HTTPServerError,
    SnapshotCorruptError,
)
from repro.faults.guard import GuardedCall, GuardOutcome
from repro.faults.plan import FaultInjector, FaultKind, FaultPlan
from repro.faults.resilience import (
    CircuitBreaker,
    CrawlHealth,
    DeadLetter,
    RetryPolicy,
)

__all__ = [
    "BreakerOpenError",
    "BrowserCrashFault",
    "CircuitBreaker",
    "ConnectionResetFault",
    "CrawlHealth",
    "DNSFault",
    "DeadLetter",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "GuardOutcome",
    "GuardedCall",
    "HTTPServerError",
    "RetryPolicy",
    "SimClock",
    "SnapshotCorruptError",
]
