"""Deterministic fault plan + injector.

The paper's crawl fights real infrastructure failure — Selenium was
rejected as "error-prone when crawling webpages at the million-level"
(§3.2) — so the synthetic world needs typed failures too, not just the
flat transient rate the crawler started with.  A :class:`FaultPlan` fixes
per-kind rates and a seed; a :class:`FaultInjector` turns the plan into
hash-addressed draws: whether fault ``kind`` fires for key ``(domain,
profile, snapshot, attempt)`` is a pure function of plan + key, exactly
like the crawler's original ``_attempt_fails`` draw.  Two runs with the
same plan see byte-identical weather, and a resumed crawl re-derives the
same outcomes for the jobs it replays.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence

from repro.faults.clock import SimClock
from repro.faults.errors import (
    BrowserCrashFault,
    ConnectionResetFault,
    DNSFault,
    FaultError,
    HTTPServerError,
)


class FaultKind:
    """String constants naming every injectable fault."""

    DNS_SERVFAIL = "dns_servfail"
    DNS_TIMEOUT = "dns_timeout"
    HTTP_5XX = "http_5xx"
    CONN_RESET = "conn_reset"
    SLOW_RESPONSE = "slow_response"
    BROWSER_CRASH = "browser_crash"
    OCR_GARBLE = "ocr_garble"
    BACKEND_FLAP = "backend_flap"

    ALL = (DNS_SERVFAIL, DNS_TIMEOUT, HTTP_5XX, CONN_RESET,
           SLOW_RESPONSE, BROWSER_CRASH, OCR_GARBLE, BACKEND_FLAP)

    #: transport-layer kinds that abort a visit (slow responses degrade
    #: latency but still deliver content; OCR garbling degrades text)
    TRANSPORT = (DNS_SERVFAIL, DNS_TIMEOUT, HTTP_5XX, CONN_RESET, BROWSER_CRASH)


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault rates plus the seed that addresses every draw."""

    seed: int = 0
    dns_servfail_rate: float = 0.0
    dns_timeout_rate: float = 0.0
    http_5xx_rate: float = 0.0
    conn_reset_rate: float = 0.0
    slow_response_rate: float = 0.0
    browser_crash_rate: float = 0.0
    ocr_garble_rate: float = 0.0

    # latency penalties charged to the simulated clock when the matching
    # fault fires (seconds)
    dns_timeout_delay: float = 5.0
    slow_response_delay: float = 10.0

    # enrichment-backend flapping: a whole backend host goes dark for
    # entire ``backend_flap_period``-second windows, drawn per (backend,
    # host, window) — every request in a bad window fails, modelling a
    # WHOIS server rate-limiting or an anycast resolver mid-failover
    backend_flap_rate: float = 0.0
    backend_flap_period: float = 120.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if not 0.0 <= value < 1.0:
                    raise ValueError(f"{spec.name} must be in [0, 1), got {value}")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan whose *compound* transport failure rate is ~``rate``.

        The budget is split evenly across the five transport kinds (DNS
        SERVFAIL/timeout, HTTP 5xx, connection reset, browser crash) so a
        single visit attempt dies with probability ≈ ``rate``; OCR
        garbling rides along at the same per-kind share.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError("compound fault rate must be in [0, 1)")
        share = rate / len(FaultKind.TRANSPORT)
        return cls(
            seed=seed,
            dns_servfail_rate=share,
            dns_timeout_rate=share,
            http_5xx_rate=share,
            conn_reset_rate=share,
            slow_response_rate=share,
            browser_crash_rate=share,
            ocr_garble_rate=share,
        )

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, spec.name) > 0.0
            for spec in fields(self) if spec.name.endswith("_rate")
        )


class FaultInjector:
    """Draws typed faults from a :class:`FaultPlan`, deterministically.

    Each draw hashes ``seed | kind | key-parts`` with CRC-32 into [0, 1)
    and fires when below the kind's rate — no mutable RNG state, so draw
    order is irrelevant and checkpoint/resume replays identically.  Fired
    faults are tallied in :attr:`injected` for health reporting.
    """

    def __init__(self, plan: FaultPlan, clock: Optional[SimClock] = None) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else SimClock()
        self.injected: Counter = Counter()

    # ------------------------------------------------------------------
    def draw(self, kind: str, rate: float, *key: object) -> bool:
        """Hash-addressed Bernoulli draw; tallies ``kind`` when it fires."""
        if rate <= 0.0:
            return False
        token = f"{self.plan.seed}|{kind}|" + "|".join(str(part) for part in key)
        value = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
        if value < rate:
            self.injected[kind] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # layer entry points (each raises the typed fault, or returns quietly)
    # ------------------------------------------------------------------
    def check_dns(self, name: str, snapshot: int = 0, attempt: int = 0) -> None:
        """Resolver step: may raise SERVFAIL or (clock-charging) timeout."""
        if self.draw(FaultKind.DNS_SERVFAIL, self.plan.dns_servfail_rate,
                     name, snapshot, attempt):
            raise DNSFault(FaultKind.DNS_SERVFAIL, name)
        if self.draw(FaultKind.DNS_TIMEOUT, self.plan.dns_timeout_rate,
                     name, snapshot, attempt):
            self.clock.sleep(self.plan.dns_timeout_delay)
            raise DNSFault(FaultKind.DNS_TIMEOUT, name)

    def check_server(self, domain: str, profile: str,
                     snapshot: int = 0, attempt: int = 0) -> Optional[int]:
        """Origin-side faults for one request.

        Raises :class:`ConnectionResetFault`, or returns an HTTP status
        override (``503``) for an injected 5xx, or charges the clock for a
        slow response and returns None (content still served).
        """
        if self.draw(FaultKind.CONN_RESET, self.plan.conn_reset_rate,
                     domain, profile, snapshot, attempt):
            raise ConnectionResetFault(FaultKind.CONN_RESET, domain)
        if self.draw(FaultKind.HTTP_5XX, self.plan.http_5xx_rate,
                     domain, profile, snapshot, attempt):
            return 503
        if self.draw(FaultKind.SLOW_RESPONSE, self.plan.slow_response_rate,
                     domain, profile, snapshot, attempt):
            self.clock.sleep(self.plan.slow_response_delay)
        return None

    def check_browser(self, url: str, profile: str,
                      snapshot: int = 0, attempt: int = 0) -> None:
        """Browser-process crash before the page is captured."""
        if self.draw(FaultKind.BROWSER_CRASH, self.plan.browser_crash_rate,
                     url, profile, snapshot, attempt):
            raise BrowserCrashFault(FaultKind.BROWSER_CRASH, url)

    def check_ocr(self, raster_digest: str) -> bool:
        """True when recognition of this raster should be garbled."""
        return self.draw(FaultKind.OCR_GARBLE, self.plan.ocr_garble_rate,
                         raster_digest)

    # ------------------------------------------------------------------
    # enrichment-backend faults
    # ------------------------------------------------------------------
    def _backend_abort_rate(self) -> float:
        """Compound abort probability for one backend attempt.

        SERVFAIL, lookup timeout, and connection reset all abort an
        enrichment attempt, so they are screened with *one* hash draw and
        the kind is recovered from the same draw (conditional-uniform:
        given ``value < rate``, ``value / rate`` is uniform).  Capped just
        below 1 so unbounded retry ladders always terminate.
        """
        plan = self.plan
        total = (plan.dns_servfail_rate + plan.dns_timeout_rate
                 + plan.conn_reset_rate)
        return min(total, 0.999)

    def check_backend(self, backend: str, host: str, domain: str,
                      attempt: int = 0, hedge: int = 0) -> None:
        """One enrichment-backend attempt: may raise a typed abort fault.

        Draws are keyed by (backend, host, domain, attempt, hedge) so a
        retry ladder and a hedged duplicate each see fresh, independent
        weather.  Charges the simulated clock for timeout and slow-host
        penalties; returns quietly when the attempt survives.
        """
        plan = self.plan
        if plan.backend_flap_rate > 0.0:
            # whole-host outage windows, keyed by wall-clock window index
            window = int(self.clock.now() // plan.backend_flap_period)
            if self.draw(FaultKind.BACKEND_FLAP, plan.backend_flap_rate,
                         backend, host, window):
                raise DNSFault(FaultKind.BACKEND_FLAP, host, detail=domain)
        rate = self._backend_abort_rate()
        if rate > 0.0:
            token = (f"{plan.seed}|backend|{backend}|{host}|{domain}"
                     f"|{attempt}|{hedge}")
            value = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
            if value < rate:
                # recover the kind from the same draw: partition [0, 1)
                # by each kind's share of the (uncapped) compound rate
                u = value / rate
                total = (plan.dns_servfail_rate + plan.dns_timeout_rate
                         + plan.conn_reset_rate)
                if u < plan.dns_servfail_rate / total:
                    self.injected[FaultKind.DNS_SERVFAIL] += 1
                    raise DNSFault(FaultKind.DNS_SERVFAIL, host, detail=domain)
                if u < (plan.dns_servfail_rate
                        + plan.dns_timeout_rate) / total:
                    self.injected[FaultKind.DNS_TIMEOUT] += 1
                    self.clock.sleep(plan.dns_timeout_delay)
                    raise DNSFault(FaultKind.DNS_TIMEOUT, host, detail=domain)
                self.injected[FaultKind.CONN_RESET] += 1
                raise ConnectionResetFault(FaultKind.CONN_RESET, host,
                                           detail=domain)
        if self.draw(FaultKind.SLOW_RESPONSE, plan.slow_response_rate,
                     "backend", backend, host, domain, attempt, hedge):
            self.clock.sleep(plan.slow_response_delay)

    def backend_dirty(self, backend: str, host: str, domain: str) -> bool:
        """Would this lookup's *first* attempt hit any fault?  (No tally.)

        The resolver's bulk fast path screens every (backend, domain) with
        this predicate: a clean first attempt means the task completes in
        one try with zero injected latency, so its entire resilience
        timeline is a no-op and the lookup can run in the vectorized bulk
        loop.  Flapping makes faults time-dependent, so any flap rate
        screens everything as dirty.  Tokens mirror :meth:`check_backend`
        at ``attempt=0, hedge=0`` exactly.
        """
        plan = self.plan
        if plan.backend_flap_rate > 0.0:
            return True
        rate = self._backend_abort_rate()
        if rate > 0.0:
            token = f"{plan.seed}|backend|{backend}|{host}|{domain}|0|0"
            value = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
            if value < rate:
                return True
        if plan.slow_response_rate > 0.0:
            token = (f"{plan.seed}|{FaultKind.SLOW_RESPONSE}|backend"
                     f"|{backend}|{host}|{domain}|0|0")
            value = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
            if value < plan.slow_response_rate:
                return True
        return False

    def backend_dirty_many(self, backend: str, hosts: Sequence[str],
                           domains: Sequence[str],
                           tails: Optional[Sequence[bytes]] = None,
                           ) -> List[bool]:
        """Bulk :meth:`backend_dirty` over parallel (host, domain) lists.

        Decision-identical to calling :meth:`backend_dirty` per element:
        both tokens split into a per-(backend, host) prefix and a
        ``|{domain}|0|0`` tail, and CRC-32 is incremental —
        ``crc32(p + t) == crc32(t, crc32(p))`` — so each prefix is hashed
        once per host and only the short tail is hashed per domain.  This
        is the resolver fast path's screening hot loop.

        ``tails`` optionally carries the encoded per-domain tails
        (``f"|{domain}|0|0".encode()``), letting a caller screening the
        same domains against several backends build them once.
        """
        plan = self.plan
        n = len(domains)
        if plan.backend_flap_rate > 0.0:
            return [True] * n
        abort = self._backend_abort_rate()
        slow = plan.slow_response_rate
        if abort <= 0.0 and slow <= 0.0:
            return [False] * n
        if tails is None:
            tails = [f"|{domain}|0|0".encode() for domain in domains]
        crc = zlib.crc32
        abort_prefix: Dict[str, int] = {}
        slow_prefix: Dict[str, int] = {}
        out: List[bool] = []
        append = out.append
        for host, tail in zip(hosts, tails):
            if abort > 0.0:
                prefix = abort_prefix.get(host)
                if prefix is None:
                    prefix = crc(
                        f"{plan.seed}|backend|{backend}|{host}".encode())
                    abort_prefix[host] = prefix
                if (crc(tail, prefix) % 1_000_000) / 1_000_000.0 < abort:
                    append(True)
                    continue
            if slow > 0.0:
                prefix = slow_prefix.get(host)
                if prefix is None:
                    prefix = crc(
                        f"{plan.seed}|{FaultKind.SLOW_RESPONSE}|backend"
                        f"|{backend}|{host}".encode())
                    slow_prefix[host] = prefix
                if (crc(tail, prefix) % 1_000_000) / 1_000_000.0 < slow:
                    append(True)
                    continue
            append(False)
        return out

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Injected-fault tallies by kind (only kinds that fired)."""
        return dict(self.injected)


__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HTTPServerError",
]
