"""Deterministic fault plan + injector.

The paper's crawl fights real infrastructure failure — Selenium was
rejected as "error-prone when crawling webpages at the million-level"
(§3.2) — so the synthetic world needs typed failures too, not just the
flat transient rate the crawler started with.  A :class:`FaultPlan` fixes
per-kind rates and a seed; a :class:`FaultInjector` turns the plan into
hash-addressed draws: whether fault ``kind`` fires for key ``(domain,
profile, snapshot, attempt)`` is a pure function of plan + key, exactly
like the crawler's original ``_attempt_fails`` draw.  Two runs with the
same plan see byte-identical weather, and a resumed crawl re-derives the
same outcomes for the jobs it replays.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, fields
from typing import Optional

from repro.faults.clock import SimClock
from repro.faults.errors import (
    BrowserCrashFault,
    ConnectionResetFault,
    DNSFault,
    FaultError,
    HTTPServerError,
)


class FaultKind:
    """String constants naming every injectable fault."""

    DNS_SERVFAIL = "dns_servfail"
    DNS_TIMEOUT = "dns_timeout"
    HTTP_5XX = "http_5xx"
    CONN_RESET = "conn_reset"
    SLOW_RESPONSE = "slow_response"
    BROWSER_CRASH = "browser_crash"
    OCR_GARBLE = "ocr_garble"

    ALL = (DNS_SERVFAIL, DNS_TIMEOUT, HTTP_5XX, CONN_RESET,
           SLOW_RESPONSE, BROWSER_CRASH, OCR_GARBLE)

    #: transport-layer kinds that abort a visit (slow responses degrade
    #: latency but still deliver content; OCR garbling degrades text)
    TRANSPORT = (DNS_SERVFAIL, DNS_TIMEOUT, HTTP_5XX, CONN_RESET, BROWSER_CRASH)


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault rates plus the seed that addresses every draw."""

    seed: int = 0
    dns_servfail_rate: float = 0.0
    dns_timeout_rate: float = 0.0
    http_5xx_rate: float = 0.0
    conn_reset_rate: float = 0.0
    slow_response_rate: float = 0.0
    browser_crash_rate: float = 0.0
    ocr_garble_rate: float = 0.0

    # latency penalties charged to the simulated clock when the matching
    # fault fires (seconds)
    dns_timeout_delay: float = 5.0
    slow_response_delay: float = 10.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if not 0.0 <= value < 1.0:
                    raise ValueError(f"{spec.name} must be in [0, 1), got {value}")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan whose *compound* transport failure rate is ~``rate``.

        The budget is split evenly across the five transport kinds (DNS
        SERVFAIL/timeout, HTTP 5xx, connection reset, browser crash) so a
        single visit attempt dies with probability ≈ ``rate``; OCR
        garbling rides along at the same per-kind share.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError("compound fault rate must be in [0, 1)")
        share = rate / len(FaultKind.TRANSPORT)
        return cls(
            seed=seed,
            dns_servfail_rate=share,
            dns_timeout_rate=share,
            http_5xx_rate=share,
            conn_reset_rate=share,
            slow_response_rate=share,
            browser_crash_rate=share,
            ocr_garble_rate=share,
        )

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, spec.name) > 0.0
            for spec in fields(self) if spec.name.endswith("_rate")
        )


class FaultInjector:
    """Draws typed faults from a :class:`FaultPlan`, deterministically.

    Each draw hashes ``seed | kind | key-parts`` with CRC-32 into [0, 1)
    and fires when below the kind's rate — no mutable RNG state, so draw
    order is irrelevant and checkpoint/resume replays identically.  Fired
    faults are tallied in :attr:`injected` for health reporting.
    """

    def __init__(self, plan: FaultPlan, clock: Optional[SimClock] = None) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else SimClock()
        self.injected: Counter = Counter()

    # ------------------------------------------------------------------
    def draw(self, kind: str, rate: float, *key: object) -> bool:
        """Hash-addressed Bernoulli draw; tallies ``kind`` when it fires."""
        if rate <= 0.0:
            return False
        token = f"{self.plan.seed}|{kind}|" + "|".join(str(part) for part in key)
        value = (zlib.crc32(token.encode()) % 1_000_000) / 1_000_000.0
        if value < rate:
            self.injected[kind] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # layer entry points (each raises the typed fault, or returns quietly)
    # ------------------------------------------------------------------
    def check_dns(self, name: str, snapshot: int = 0, attempt: int = 0) -> None:
        """Resolver step: may raise SERVFAIL or (clock-charging) timeout."""
        if self.draw(FaultKind.DNS_SERVFAIL, self.plan.dns_servfail_rate,
                     name, snapshot, attempt):
            raise DNSFault(FaultKind.DNS_SERVFAIL, name)
        if self.draw(FaultKind.DNS_TIMEOUT, self.plan.dns_timeout_rate,
                     name, snapshot, attempt):
            self.clock.sleep(self.plan.dns_timeout_delay)
            raise DNSFault(FaultKind.DNS_TIMEOUT, name)

    def check_server(self, domain: str, profile: str,
                     snapshot: int = 0, attempt: int = 0) -> Optional[int]:
        """Origin-side faults for one request.

        Raises :class:`ConnectionResetFault`, or returns an HTTP status
        override (``503``) for an injected 5xx, or charges the clock for a
        slow response and returns None (content still served).
        """
        if self.draw(FaultKind.CONN_RESET, self.plan.conn_reset_rate,
                     domain, profile, snapshot, attempt):
            raise ConnectionResetFault(FaultKind.CONN_RESET, domain)
        if self.draw(FaultKind.HTTP_5XX, self.plan.http_5xx_rate,
                     domain, profile, snapshot, attempt):
            return 503
        if self.draw(FaultKind.SLOW_RESPONSE, self.plan.slow_response_rate,
                     domain, profile, snapshot, attempt):
            self.clock.sleep(self.plan.slow_response_delay)
        return None

    def check_browser(self, url: str, profile: str,
                      snapshot: int = 0, attempt: int = 0) -> None:
        """Browser-process crash before the page is captured."""
        if self.draw(FaultKind.BROWSER_CRASH, self.plan.browser_crash_rate,
                     url, profile, snapshot, attempt):
            raise BrowserCrashFault(FaultKind.BROWSER_CRASH, url)

    def check_ocr(self, raster_digest: str) -> bool:
        """True when recognition of this raster should be garbled."""
        return self.draw(FaultKind.OCR_GARBLE, self.plan.ocr_garble_rate,
                         raster_digest)

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Injected-fault tallies by kind (only kinds that fired)."""
        return dict(self.injected)


__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HTTPServerError",
]
