"""Shared retry-ladder + circuit-breaker wiring (``GuardedCall``).

The crawl scheduler and the bulk enrichment resolver both push every
backend call through the same resilience stack: a :class:`CircuitBreaker`
gate, a deterministic exponential-backoff :class:`RetryPolicy`, and a
:class:`CrawlHealth` ledger.  This module is the single implementation —
one attempt loop, one set of counter semantics, one breaker protocol — so
the two callers stay byte-compatible: identical fault sequences produce
identical ``CircuitBreaker.state_key()`` digests and health tallies
whichever subsystem drove them.

Semantics (mirrors the original crawl-scheduler loop exactly):

* each attempt first consults ``breaker.allow(now)``; a refusal counts a
  ``breaker_skips`` and either aborts the call (crawler) or, with
  ``wait_for_breaker=True`` (serial resolver), sleeps the simulated clock
  to the breaker's half-open instant and re-gates without consuming an
  attempt;
* a raised :class:`FaultError` records a breaker failure, a health
  failure, and — when attempts remain — sleeps
  ``policy.delay(attempt, key)`` on the shared clock, charging
  ``health.backoff_seconds``;
* ``ladder_cap`` (resolver) freezes the backoff exponent once the ladder
  reaches that rung, so unbounded retries plateau at a finite delay
  instead of saturating ``max_delay`` through ever-larger raw steps;
* ``max_retries=None`` retries forever (callers relying on this must
  guarantee eventual success, e.g. via fault rates < 1 and hash-addressed
  draws keyed by attempt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.faults.clock import SimClock
from repro.faults.errors import FaultError
from repro.faults.resilience import CircuitBreaker, CrawlHealth, RetryPolicy

#: hard ceiling on attempts for unbounded (``max_retries=None``) calls —
#: unreachable under any sane fault plan (rates < 1, attempt-keyed draws),
#: purely a runaway backstop so a misconfigured plan fails loudly.
ATTEMPT_SAFETY_CAP = 10_000


@dataclass
class GuardOutcome:
    """Result of one guarded call.

    ``ok`` is the success discriminator — ``value`` may legitimately be
    ``None`` on success (a cleanly dead site returns no capture).
    """

    value: Any = None
    ok: bool = False
    retries: int = 0
    last_fault: Optional[str] = None


class GuardedCall:
    """One call-site wrapper around breaker + retry ladder + health ledger.

    Args:
        policy: backoff schedule (deterministic, hash-jittered).
        clock: simulated clock all delays are charged to.
        max_retries: extra attempts after the first failure; ``None``
            retries until success (bounded by :data:`ATTEMPT_SAFETY_CAP`).
        wait_for_breaker: instead of aborting on an open breaker, advance
            the clock to its half-open instant and retry the gate.  No
            attempt is consumed by the wait.
        ladder_cap: highest backoff rung; attempts beyond it reuse the
            capped rung's delay (``None`` leaves the ladder unbounded,
            matching the crawler's historical behaviour).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        clock: SimClock,
        max_retries: Optional[int] = None,
        wait_for_breaker: bool = False,
        ladder_cap: Optional[int] = None,
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.max_retries = max_retries
        self.wait_for_breaker = wait_for_breaker
        self.ladder_cap = ladder_cap

    def run(
        self,
        key: str,
        fn: Callable[[int], Any],
        breaker: CircuitBreaker,
        health: CrawlHealth,
    ) -> GuardOutcome:
        """Drive ``fn(attempt)`` through the resilience stack.

        ``fn`` receives the zero-based attempt index (fault draws are
        attempt-keyed) and either returns a value or raises a
        :class:`FaultError`.
        """
        retries = 0
        last_fault: Optional[str] = None
        attempt = 0
        while self.max_retries is None or attempt <= self.max_retries:
            if attempt >= ATTEMPT_SAFETY_CAP:
                raise RuntimeError(
                    f"guarded call {key!r} exceeded {ATTEMPT_SAFETY_CAP} "
                    "attempts — fault plan cannot terminate")
            if not breaker.allow(self.clock.now()):
                health.breaker_skips += 1
                if self.wait_for_breaker and breaker.opened_at is not None:
                    self.clock.advance_to(
                        breaker.opened_at + breaker.reset_timeout)
                    continue
                last_fault = last_fault or "breaker_open"
                break
            health.attempts += 1
            try:
                value = fn(attempt)
            except FaultError as fault:
                breaker.record_failure(self.clock.now())
                health.record_failure(fault.kind)
                health.retries += 1
                retries += 1
                last_fault = fault.kind
                if self.max_retries is None or attempt < self.max_retries:
                    step = attempt if self.ladder_cap is None else \
                        min(attempt, self.ladder_cap)
                    delay = self.policy.delay(step, key)
                    self.clock.sleep(delay)
                    health.backoff_seconds += delay
                attempt += 1
                continue
            breaker.record_success()
            health.successes += 1
            return GuardOutcome(value=value, ok=True, retries=retries)
        return GuardOutcome(ok=False, retries=retries,
                            last_fault=last_fault or "unknown")
