"""Resilience primitives: backoff, circuit breakers, dead letters, health.

The machinery the crawler layers over the fault model.  All of it runs on
the shared :class:`~repro.faults.clock.SimClock` and derives any
randomness (backoff jitter) from hashes, so scheduling decisions are a
pure function of (plan, job history) and survive checkpoint/resume.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Delay for retry ``attempt`` (0-based) is ``base * 2**attempt`` capped
    at ``max_delay``, scaled into ``[1 - jitter, 1]`` by a hash of the job
    key — full determinism, but hosts retried in the same round do not
    thunder in lockstep.
    """

    max_retries: int = 2
    base_delay: float = 1.0
    max_delay: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, key: str) -> float:
        """Backoff before retry ``attempt`` of the job addressed by ``key``."""
        raw = min(self.base_delay * (2.0 ** attempt), self.max_delay)
        frac = (zlib.crc32(f"backoff|{key}|{attempt}".encode()) % 1_000_000) / 1_000_000.0
        return raw * (1.0 - self.jitter * frac)


class CircuitBreaker:
    """Per-host breaker: stop hammering a host that keeps failing.

    Classic three-state machine — CLOSED counts consecutive failures;
    ``failure_threshold`` of them trips it OPEN for ``reset_timeout``
    simulated seconds (visits refused); the first visit after the
    cool-down is a HALF_OPEN probe whose outcome closes or re-trips it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 300.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def allow(self, now: float) -> bool:
        """May a visit proceed at simulated time ``now``?"""
        if self.state == self.OPEN:
            if self.opened_at is not None and now >= self.opened_at + self.reset_timeout:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self.state = self.OPEN
            self.opened_at = now
            self.consecutive_failures = 0
            self.trips += 1

    def state_key(self) -> Tuple[str, int, Optional[float], int]:
        """Canonical state tuple (used in snapshot digests)."""
        return (self.state, self.consecutive_failures, self.opened_at, self.trips)


@dataclass
class DeadLetter:
    """A job that exhausted its retries (or was refused by a breaker)."""

    domain: str
    profile: str
    snapshot: int
    attempts: int
    last_fault: str

    def key(self) -> Tuple[str, str, int, int, str]:
        return (self.domain, self.profile, self.snapshot,
                self.attempts, self.last_fault)


@dataclass
class CrawlHealth:
    """Structured account of how rough a crawl (or whole run) was.

    ``failures`` tallies failed visit attempts by fault kind;
    ``degraded`` tallies pipeline stages that skipped work because of a
    fault (stage name → skip count).  Instances merge, so the pipeline
    can aggregate per-snapshot health into one run-level report.
    """

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    breaker_trips: int = 0
    breaker_skips: int = 0
    dead_letters: int = 0
    slow_responses: int = 0
    resumes: int = 0
    failures: Counter = field(default_factory=Counter)
    degraded: Counter = field(default_factory=Counter)

    def record_failure(self, kind: str) -> None:
        self.failures[kind] += 1

    def record_degraded(self, stage: str) -> None:
        self.degraded[stage] += 1

    @property
    def degraded_stages(self) -> int:
        """Number of distinct pipeline stages that had to skip work."""
        return len(self.degraded)

    def merge(self, other: "CrawlHealth") -> None:
        self.attempts += other.attempts
        self.successes += other.successes
        self.retries += other.retries
        self.backoff_seconds += other.backoff_seconds
        self.breaker_trips += other.breaker_trips
        self.breaker_skips += other.breaker_skips
        self.dead_letters += other.dead_letters
        self.slow_responses += other.slow_responses
        self.resumes += other.resumes
        self.failures.update(other.failures)
        self.degraded.update(other.degraded)

    def state_dict(self) -> Dict[str, object]:
        """Full-precision numeric state, including ``resumes``.

        Unlike :meth:`to_dict` (the digest-facing view), this is the
        stage runner's accounting view: it must capture *every* counter
        so a stage loaded from the artifact store can replay exactly the
        health delta the executed stage produced.
        """
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "breaker_trips": self.breaker_trips,
            "breaker_skips": self.breaker_skips,
            "dead_letters": self.dead_letters,
            "slow_responses": self.slow_responses,
            "resumes": self.resumes,
            "failures": dict(self.failures),
            "degraded": dict(self.degraded),
        }

    def apply_delta(self, delta: Dict[str, object]) -> None:
        """Add a :meth:`state_dict`-style delta onto this health report.

        The stage runner records each executed stage's health delta in
        the run manifest; when a later run loads that stage from cache,
        replaying the delta keeps run-level health identical to a run
        that executed every stage.
        """
        self.attempts += int(delta.get("attempts", 0))
        self.successes += int(delta.get("successes", 0))
        self.retries += int(delta.get("retries", 0))
        self.backoff_seconds += float(delta.get("backoff_seconds", 0.0))
        self.breaker_trips += int(delta.get("breaker_trips", 0))
        self.breaker_skips += int(delta.get("breaker_skips", 0))
        self.dead_letters += int(delta.get("dead_letters", 0))
        self.slow_responses += int(delta.get("slow_responses", 0))
        self.resumes += int(delta.get("resumes", 0))
        self.failures.update(delta.get("failures", {}) or {})
        self.degraded.update(delta.get("degraded", {}) or {})

    def to_dict(self) -> Dict[str, object]:
        # ``resumes`` is deliberately omitted: it records *how* a snapshot
        # was produced (one pass vs checkpoint/resume), not what it
        # contains, and snapshot digests promise identity across the two
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "breaker_trips": self.breaker_trips,
            "breaker_skips": self.breaker_skips,
            "dead_letters": self.dead_letters,
            "slow_responses": self.slow_responses,
            "failures": dict(sorted(self.failures.items())),
            "degraded": dict(sorted(self.degraded.items())),
        }

    def format(self) -> str:
        """Human-readable multi-line report (CLI output)."""
        lines = [
            "crawl health",
            f"  attempts:        {self.attempts}",
            f"  successes:       {self.successes}",
            f"  retries:         {self.retries}",
            f"  backoff seconds: {self.backoff_seconds:.1f}",
            f"  breaker trips:   {self.breaker_trips}"
            f" (skipped visits: {self.breaker_skips})",
            f"  dead letters:    {self.dead_letters}",
            f"  slow responses:  {self.slow_responses}",
        ]
        if self.failures:
            lines.append("  failures by kind:")
            for kind, count in sorted(self.failures.items()):
                lines.append(f"    {kind}: {count}")
        if self.degraded:
            lines.append("  degraded stages:")
            for stage, count in sorted(self.degraded.items()):
                lines.append(f"    {stage}: {count} skipped")
        return "\n".join(lines)
