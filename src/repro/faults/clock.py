"""Simulated wall clock.

The crawler's backoff sleeps and circuit-breaker cool-downs need a notion
of time, but real sleeping would make crawls slow and — worse —
non-reproducible.  ``SimClock`` is a monotonic counter that only advances
when someone "sleeps" on it; the whole resilience stack shares one
instance, so a crawl's timeline is a pure function of its inputs.
"""

from __future__ import annotations


class SimClock:
    """Deterministic monotonic clock; time advances only via :meth:`sleep`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.total_slept = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance time; negative durations are ignored."""
        if seconds > 0:
            self._now += seconds
            self.total_slept += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to an absolute time (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
