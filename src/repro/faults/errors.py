"""Typed fault exceptions raised by the measured world.

Every infrastructure failure the synthetic internet can inject is an
exception in this hierarchy, so resilience code (the crawler's retry loop,
the pipeline's degradation guards) can catch :class:`FaultError` once and
still account failures by kind.  Each carries the :mod:`repro.faults.plan`
fault-kind string it was drawn from.
"""

from __future__ import annotations

from typing import Optional


class FaultError(Exception):
    """Base class for injected infrastructure faults."""

    def __init__(self, kind: str, target: str, detail: str = "") -> None:
        self.kind = kind
        self.target = target
        self.detail = detail
        message = f"{kind} on {target}" + (f": {detail}" if detail else "")
        super().__init__(message)


class DNSFault(FaultError):
    """Resolution failed: SERVFAIL from the resolver or a lookup timeout."""


class ConnectionResetFault(FaultError):
    """TCP connection reset by peer mid-transfer."""


class HTTPServerError(FaultError):
    """The origin answered with a 5xx status."""

    def __init__(self, kind: str, target: str, status: int = 503) -> None:
        self.status = status
        super().__init__(kind, target, detail=f"HTTP {status}")


class BrowserCrashFault(FaultError):
    """The headless browser process died during the visit."""


class SnapshotCorruptError(FaultError):
    """A serialized DNS snapshot contains a truncated or corrupt line.

    Raised by :func:`repro.dns.activedns.iter_snapshot` instead of silently
    dropping the record — a truncated dump means the ingest was cut short,
    and downstream zone statistics would be wrong without anyone noticing.
    """

    def __init__(self, path: str, line_number: int, detail: str = "") -> None:
        self.path = path
        self.line_number = line_number
        super().__init__("snapshot_corrupt", f"{path}:{line_number}",
                         detail=detail)


class BreakerOpenError(FaultError):
    """A visit was refused locally because the host's circuit breaker is open.

    Not an injected fault — raised by the scheduler itself so jobs against
    known-dead hosts fail fast instead of burning attempts.
    """

    def __init__(self, target: str, retry_at: Optional[float] = None) -> None:
        self.retry_at = retry_at
        super().__init__("breaker_open", target)
