"""Visual-similarity phishing detection: the classic baseline (§2, [47]).

Pre-SquatPhi detectors flag a page as phishing when its screenshot is
*visually close* to a protected brand's legitimate page — e.g. a fuzzy
image hash within a hamming-distance threshold.  §4.2 measures why this
fails in practice: real phishing pages deliberately drift 20-38 bits away
from the originals (layout obfuscation) while still looking legitimate to a
human, so any threshold either misses them or floods with false positives.

This module implements that baseline faithfully so the failure can be
measured rather than asserted (see ``bench_ablation_visual_baseline``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vision.imagehash import ImageHash, hamming_distance, phash


@dataclass
class SimilarityMatch:
    """Nearest protected brand for one page."""

    brand: str
    distance: int

    def is_phishing(self, threshold: int) -> bool:
        return self.distance <= threshold


class VisualSimilarityDetector:
    """Flags pages visually close to any protected brand page."""

    def __init__(self, threshold: int = 10) -> None:
        """
        Args:
            threshold: maximum hamming distance (64-bit pHash) at which a
                page counts as an impersonation.  Classic deployments use
                small thresholds (≤10) to keep false positives down.
        """
        self.threshold = threshold
        self._references: Dict[str, ImageHash] = {}

    def register_brand(self, brand: str, pixels: "np.ndarray") -> None:
        """Add a protected brand's legitimate page screenshot."""
        self._references[brand] = phash(pixels)

    def register_brands(self, pages: Dict[str, "np.ndarray"]) -> None:
        for brand, pixels in pages.items():
            self.register_brand(brand, pixels)

    @property
    def protected_brands(self) -> List[str]:
        return sorted(self._references)

    def nearest(self, pixels: "np.ndarray") -> Optional[SimilarityMatch]:
        """The closest protected brand to a page, or None if none
        registered."""
        if not self._references:
            return None
        page_hash = phash(pixels)
        best_brand = ""
        best_distance = 65
        for brand, reference in self._references.items():
            distance = hamming_distance(page_hash, reference)
            if distance < best_distance:
                best_distance = distance
                best_brand = brand
        return SimilarityMatch(brand=best_brand, distance=best_distance)

    def classify(self, pixels: "np.ndarray") -> bool:
        """True when the page is flagged as a visual impersonation."""
        match = self.nearest(pixels)
        return match is not None and match.is_phishing(self.threshold)


@dataclass
class ThresholdSweepPoint:
    """Recall/FP of the baseline at one threshold (the §4.2 trade-off)."""

    threshold: int
    recall: float
    false_positive_rate: float


def sweep_thresholds(
    detector: VisualSimilarityDetector,
    positives: Sequence["np.ndarray"],
    negatives: Sequence["np.ndarray"],
    thresholds: Sequence[int] = (5, 10, 15, 20, 25, 30, 35),
) -> List[ThresholdSweepPoint]:
    """Evaluate the baseline across thresholds.

    Demonstrates §4.2's conclusion: by the time the threshold is loose
    enough to catch layout-obfuscated phishing (distance ~20-38), benign
    pages start matching too.
    """
    positive_distances = [
        match.distance for pixels in positives
        if (match := detector.nearest(pixels)) is not None
    ]
    negative_distances = [
        match.distance for pixels in negatives
        if (match := detector.nearest(pixels)) is not None
    ]
    points: List[ThresholdSweepPoint] = []
    for threshold in thresholds:
        recall = (
            sum(1 for d in positive_distances if d <= threshold)
            / len(positive_distances) if positive_distances else 0.0
        )
        fpr = (
            sum(1 for d in negative_distances if d <= threshold)
            / len(negative_distances) if negative_distances else 0.0
        )
        points.append(ThresholdSweepPoint(
            threshold=threshold, recall=recall, false_positive_rate=fpr,
        ))
    return points
