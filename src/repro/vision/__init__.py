"""Vision substrate: perceptual image hashing for layout comparison.

§4.2's layout-obfuscation measurement compares phishing screenshots against
the brand's original page using an image hash and hamming distance (the
paper uses the ``jenssegers/imagehash`` library; distances of ~7 are "still
similar", ~24–38 are obfuscated).  We implement the three standard hashes —
average, difference, and DCT-based perceptual — over numpy rasters.
"""

from repro.vision.imagehash import (
    ImageHash,
    average_hash,
    dhash,
    hamming_distance,
    phash,
    resize_bilinear,
)
from repro.vision.similarity_detector import (
    VisualSimilarityDetector,
    sweep_thresholds,
)

__all__ = [
    "ImageHash",
    "VisualSimilarityDetector",
    "average_hash",
    "dhash",
    "hamming_distance",
    "phash",
    "resize_bilinear",
    "sweep_thresholds",
]
