"""Perceptual image hashes over grayscale numpy rasters.

All three classic fingerprints are provided:

* :func:`average_hash` — threshold against the mean of a downsampled image;
* :func:`dhash` — horizontal gradient signs;
* :func:`phash` — signs of low-frequency DCT coefficients (most robust to
  local edits, and the default used by the evasion measurement).

Hashes are 64-bit by default, compared with :func:`hamming_distance`, which
is the distance plotted in Fig 8/9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ImageHash:
    """A fixed-length binary fingerprint of an image."""

    bits: Tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.bits)

    def __sub__(self, other: "ImageHash") -> int:
        return hamming_distance(self, other)

    def __int__(self) -> int:
        value = 0
        for bit in self.bits:
            value = (value << 1) | int(bit)
        return value

    def hex(self) -> str:
        """Hex rendering, e.g. for table output."""
        return f"{int(self):0{(len(self.bits) + 3) // 4}x}"


def hamming_distance(a: ImageHash, b: ImageHash) -> int:
    """Number of differing bits between two equal-length hashes."""
    if len(a) != len(b):
        raise ValueError(f"hash lengths differ: {len(a)} vs {len(b)}")
    return sum(1 for x, y in zip(a.bits, b.bits) if x != y)


def resize_bilinear(pixels: "np.ndarray", height: int, width: int) -> "np.ndarray":
    """Bilinear resize of a 2-D array (no PIL available, so hand-rolled)."""
    src = pixels.astype(np.float64)
    src_h, src_w = src.shape
    if src_h == height and src_w == width:
        return src
    # sample coordinates at pixel centers
    ys = (np.arange(height) + 0.5) * src_h / height - 0.5
    xs = (np.arange(width) + 0.5) * src_w / width - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = src[np.ix_(y0, x0)] * (1 - wx) + src[np.ix_(y0, x1)] * wx
    bottom = src[np.ix_(y1, x0)] * (1 - wx) + src[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def average_hash(pixels: "np.ndarray", hash_size: int = 8) -> ImageHash:
    """aHash: bit = pixel above the mean of the downsampled image."""
    small = resize_bilinear(pixels, hash_size, hash_size)
    mean = small.mean()
    return ImageHash(bits=tuple(bool(v > mean) for v in small.flatten()))


def dhash(pixels: "np.ndarray", hash_size: int = 8) -> ImageHash:
    """dHash: bit = left pixel brighter than its right neighbour."""
    small = resize_bilinear(pixels, hash_size, hash_size + 1)
    diff = small[:, 1:] > small[:, :-1]
    return ImageHash(bits=tuple(bool(v) for v in diff.flatten()))


@lru_cache(maxsize=8)
def _dct_matrix(n: int) -> "np.ndarray":
    """Orthonormal DCT-II basis matrix of size n×n."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    matrix = math.sqrt(2.0 / n) * np.cos(math.pi * (2 * i + 1) * k / (2 * n))
    matrix[0, :] /= math.sqrt(2.0)
    return matrix


def phash(pixels: "np.ndarray", hash_size: int = 8, highfreq_factor: int = 4) -> ImageHash:
    """pHash: signs of the low-frequency DCT block (minus the DC term)."""
    size = hash_size * highfreq_factor
    small = resize_bilinear(pixels, size, size)
    basis = _dct_matrix(size)
    transformed = basis @ small @ basis.T
    low = transformed[:hash_size, :hash_size].flatten()
    median = np.median(low[1:])  # exclude the DC coefficient
    bits = [bool(v > median) for v in low]
    bits[0] = False  # DC term carries only global brightness
    return ImageHash(bits=tuple(bits))
