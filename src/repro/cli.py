"""Command-line interface: the open-sourced-tool face of SquatPhi.

The paper ships its system as a standalone tool; this module provides the
equivalent workflows over this reproduction:

* ``squatphi gen <brand-domain>`` — enumerate squat candidates per type;
* ``squatphi classify <domain> ...`` — classify domains against the catalog;
* ``squatphi scan <snapshot.tsv>`` — scan an ActiveDNS-style dump and print
  the Fig 2/Fig 4 breakdowns;
* ``squatphi world <out.tsv>`` — generate a synthetic snapshot to play with;
* ``squatphi pipeline`` — run the end-to-end demo pipeline and print the
  headline exhibits;
* ``squatphi query <snapshot> <domain> ...`` — per-domain verdicts from the
  interactive serving engine (squat family, registration, enrichment);
* ``squatphi serve <snapshot>`` — replay a synthetic query burst through the
  batched multi-worker serving front and report QPS/latency;
* ``squatphi stream`` — drive a deterministic registration/CT-log event tape
  through the incremental ingest→delta-scan→compact loop and report
  events/sec plus sim-clock detection latency;
* ``squatphi lifecycle`` — generate a dated snapshot series with churn,
  diff consecutive packs with the vectorized kernel, and print the
  longitudinal exhibits (survival, re-registration, blacklist lag).

``scan``/``query``/``stream`` accept ``--verify`` to recompute every
packed snapshot's payload digest before use (corruption surfaces as a
typed :class:`~repro.dns.packedzone.PackedZoneCorruptError`, exit 2).

Each command is a plain function taking parsed args and returning an exit
code, so the test suite drives them directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Sequence

from repro.analysis.render import bar_chart, table
from repro.brands import Brand, BrandCatalog, build_paper_catalog
from repro.dns.activedns import load_snapshot, write_snapshot
from repro.squatting.detector import SquattingDetector
from repro.squatting.generator import SquattingGenerator
from repro.squatting.types import SquatType


def _build_catalog(
    brand_domains: Optional[Sequence[str]],
    sectors: Optional[Sequence[str]] = None,
) -> BrandCatalog:
    """The 702-brand catalog, an ad-hoc one from --brands, and/or the §7
    sector catalogs from --sectors."""
    if brand_domains:
        catalog = BrandCatalog()
        for domain in brand_domains:
            name = domain.split(".")[0].lower()
            catalog.add(Brand(name=name, domain=domain.lower()))
    elif sectors:
        catalog = BrandCatalog()
    else:
        return build_paper_catalog()
    if sectors:
        from repro.brands.sectors import sector_catalog

        for brand in sector_catalog(sectors):
            catalog.add(brand)
    return catalog


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

def cmd_gen(args: argparse.Namespace) -> int:
    """Enumerate squat candidates of one brand domain."""
    name = args.domain.split(".")[0].lower()
    brand = Brand(name=name, domain=args.domain.lower())
    generator = SquattingGenerator()
    candidates = generator.candidates(brand, include_combo=args.combo)

    wanted = {SquatType(t) for t in args.types} if args.types else set(SquatType)
    shown = 0
    for squat_type, labels in sorted(candidates.labels.items(),
                                     key=lambda kv: kv[0].value):
        if squat_type not in wanted:
            continue
        for label in sorted(labels):
            print(f"{label}.{brand.tld or 'com'}\t{squat_type.value}")
            shown += 1
            if args.limit and shown >= args.limit:
                return 0
    if SquatType.WRONG_TLD in wanted:
        for domain in sorted(candidates.domains.get(SquatType.WRONG_TLD, ())):
            print(f"{domain}\twrongTLD")
            shown += 1
            if args.limit and shown >= args.limit:
                return 0
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Classify domains against the brand catalog."""
    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    exit_code = 1
    for domain in args.domains:
        match = detector.classify_domain(domain)
        if match is None:
            print(f"{domain}\t-\t-")
        else:
            detail = f"\t{match.detail}" if match.detail else ""
            print(f"{domain}\t{match.brand}\t{match.squat_type.value}{detail}")
            exit_code = 0
    return exit_code


def _verify_zone(zone, label: str) -> Optional[int]:
    """Run a snapshot's ``verify()`` when it has one; exit code on failure.

    ``PackedZone``/``SegmentedZone`` recompute their payload digests;
    dict-backed stores have nothing to verify and pass through.
    """
    from repro.dns.packedzone import PackedZoneCorruptError

    verifier = getattr(zone, "verify", None)
    if verifier is None:
        return None
    try:
        verifier()
    except PackedZoneCorruptError as exc:
        print(f"error: {label} failed verification: {exc}", file=sys.stderr)
        return 2
    return None


def cmd_scan(args: argparse.Namespace) -> int:
    """Scan a DNS snapshot file (TSV or packed) for squatting domains."""
    from repro.dns.packedzone import PackedZone, is_packed_file

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if is_packed_file(args.snapshot):
        # packed snapshots mmap straight into the zero-copy scan kernel
        zone = PackedZone.load(args.snapshot)
    else:
        zone = load_snapshot(args.snapshot)
    if args.verify:
        failed = _verify_zone(zone, args.snapshot)
        if failed is not None:
            return failed
    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    matches = detector.scan_sharded(zone, workers=args.workers)

    print(f"scanned {len(zone)} records, found {len(matches)} squatting domains\n")
    histogram = Counter(m.squat_type.value for m in matches)
    print(bar_chart({t.value: histogram.get(t.value, 0) for t in SquatType},
                    title="squatting domains by type"))
    print()
    top = Counter(m.brand for m in matches).most_common(args.top)
    print(table(["brand", "count"], [[b, c] for b, c in top],
                title=f"top {args.top} brands"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for match in matches:
                handle.write(f"{match.domain}\t{match.brand}\t{match.squat_type.value}\n")
        print(f"\nwrote matches to {args.out}")
    return 0


def cmd_world(args: argparse.Namespace) -> int:
    """Generate a synthetic world and dump its DNS snapshot."""
    from repro.phishworld.world import WorldConfig, build_world

    config = WorldConfig(
        seed=args.seed,
        n_organic_domains=args.organic,
        n_squat_domains=args.squats,
        n_phish_domains=args.phish,
        phishtank_reports=max(20, args.phish * 4),
        packed_zone=args.packed,
    )
    world = build_world(config)
    if args.packed:
        world.zone.save(args.out)
        count = len(world.zone)
        print(f"wrote {count} DNS records to {args.out} (packed snapshot)")
    else:
        count = write_snapshot(iter(world.zone), args.out)
        print(f"wrote {count} DNS records to {args.out}")
    print(f"  brands: {len(world.catalog)}  squats: {len(world.squat_truth)}"
          f"  planted phishing: {len(world.phishing_sites)}")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Run the end-to-end demo pipeline on a fresh synthetic world."""
    from repro.core import PipelineConfig, SquatPhi
    from repro.faults import FaultPlan
    from repro.phishworld.world import WorldConfig, build_world
    from repro.stages import ArtifactStore

    if not 0.0 <= args.fault_rate < 1.0:
        print("error: --fault-rate must be in [0, 1)", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    if (args.scan_workers < 1 or args.crawl_workers < 1
            or args.train_workers < 1 or args.extract_workers < 1
            or args.enrich_workers < 1):
        print("error: worker counts must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.store:
        print("error: --resume requires --store", file=sys.stderr)
        return 2

    config = WorldConfig(
        seed=args.seed,
        n_organic_domains=args.squats,
        n_squat_domains=args.squats,
        n_phish_domains=max(4, args.squats // 12),
        phishtank_reports=max(40, args.squats // 3),
        packed_zone=args.packed_zone,
    )
    world = build_world(config)
    fault_plan = (FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)
                  if args.fault_rate > 0 else None)
    pipeline_config = PipelineConfig(
        cv_folds=5, rf_trees=15,
        fault_plan=fault_plan,
        crawl_max_retries=args.max_retries,
        scan_workers=args.scan_workers,
        crawl_workers=args.crawl_workers,
        train_workers=args.train_workers,
        extract_workers=args.extract_workers,
        enrich_workers=args.enrich_workers,
        enrich_hedging=not args.no_enrich_hedging,
        capture_cache=not args.no_capture_cache,
    )
    pipeline = SquatPhi(world, pipeline_config)
    store = ArtifactStore(args.store) if args.store else None
    try:
        result = pipeline.run(follow_up_snapshots=False, store=store,
                              resume=args.resume, from_stage=args.from_stage)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        # machine-readable summary only; wall-clock still goes to stderr
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
        timings = pipeline.perf.format_timings()
        if timings:
            print(timings, file=sys.stderr)
        return 0

    if args.store:
        print(f"run id: {result.run_id} (store: {args.store})\n")
    print(table(
        ["model", "FP", "FN", "AUC", "ACC"],
        [[name, f"{r.false_positive_rate:.3f}", f"{r.false_negative_rate:.3f}",
          f"{r.auc:.3f}", f"{r.accuracy:.3f}"]
         for name, r in result.cv_reports.items()],
        title="classifier cross-validation",
    ))
    print(f"\nsquatting domains: {len(result.squat_matches)}")
    if result.enrichment is not None:
        print(f"enriched domains:  {len(result.enrichment.domains)}")
    print(f"flagged pages:     {len(result.flagged)}")
    print(f"verified phishing: {len(result.verified)} "
          f"(planted: {len(world.phishing_sites)})")
    if fault_plan is not None:
        print()
        print(result.health.format())
        if result.injected_faults:
            print("  injected faults:")
            for kind, count in sorted(result.injected_faults.items()):
                print(f"    {kind}: {count}")
    print()
    # counters are deterministic -> stdout; wall-clock timings -> stderr,
    # so `diff`-ing two identical runs' stdout stays byte-identical
    print(pipeline.perf.format(timings=False))
    timings = pipeline.perf.format_timings()
    if timings:
        print(timings, file=sys.stderr)
    return 0


def _load_packed(path: str):
    """mmap a packed snapshot; pack a TSV one on the fly."""
    from repro.dns.packedzone import PackedZone, is_packed_file, pack_zone

    if is_packed_file(path):
        return PackedZone.load(path)
    return pack_zone(load_snapshot(path))


def cmd_query(args: argparse.Namespace) -> int:
    """Answer per-domain verdict queries over a packed snapshot."""
    from repro.serve import QueryEngine, verdict_line

    zone = _load_packed(args.snapshot)
    if args.verify:
        failed = _verify_zone(zone, args.snapshot)
        if failed is not None:
            return failed
    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    engine = QueryEngine(detector, zone)
    exit_code = 1
    for verdict in engine.lookup_batch(args.domains):
        print(verdict_line(verdict))
        if verdict.is_squat:
            exit_code = 0
    return exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a deterministic query burst against the serving front."""
    import tempfile

    from repro.dns.packedzone import PackedZone
    from repro.perf.report import PerfReport
    from repro.serve import (SnapshotPublisher, digest_verdicts, plan_batches,
                             serve_load, synth_requests)

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.queries < 1:
        print("error: --queries must be >= 1", file=sys.stderr)
        return 2
    if args.qps <= 0:
        print("error: --qps must be positive", file=sys.stderr)
        return 2

    zone = _load_packed(args.snapshot)
    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    requests = synth_requests(args.queries, args.qps, seed=args.seed,
                              registered=list(zone.registered_domains()))
    max_batch = 1 if args.no_batching else args.max_batch
    max_delay = 0.0 if args.no_batching else args.max_delay

    publisher = None
    on_dispatch = None
    tmp = None
    if args.hot_swap:
        # publish gen 1 into a scratch dir, then republish the same
        # snapshot as gen 2 halfway through the burst: the workers'
        # hot-reload path runs while in-flight batches drain on gen 1
        tmp = tempfile.TemporaryDirectory(prefix="squatphi-serve-")
        publisher = SnapshotPublisher(tmp.name)
        _generation, path = publisher.publish(zone)
        zone = PackedZone.load(path)
        swap_at = max(1, len(plan_batches(requests, max_batch, max_delay)) // 2)

        def on_dispatch(index: int, _zone=zone) -> None:
            if index == swap_at:
                publisher.publish(_zone)

    try:
        verdicts, stats = serve_load(
            detector, zone, requests,
            workers=args.workers, max_batch=max_batch, max_delay=max_delay,
            negcache=not args.no_negcache,
            publisher=publisher, on_dispatch=on_dispatch)
    finally:
        if tmp is not None:
            tmp.cleanup()

    # deterministic counters + the verdict digest -> stdout; wall-clock
    # throughput/latency -> stderr (same split as `pipeline`)
    squats = sum(1 for v in verdicts if v.is_squat)
    registered = sum(1 for v in verdicts if v.registered)
    print(f"served {stats.queries} queries in {stats.batches} batches "
          f"({stats.dropped} dropped)")
    print(f"  squatting verdicts: {squats}")
    print(f"  registered domains: {registered}")
    if args.hot_swap:
        by_gen = ", ".join(f"gen {g}: {n}" for g, n in
                           sorted(stats.served_by_generation.items()))
        print(f"  generation swaps:   {stats.generation_swaps} ({by_gen})")
    print(f"  verdict digest:     {digest_verdicts(verdicts)}")
    if args.out:
        from repro.serve import verdict_line
        with open(args.out, "w", encoding="utf-8") as handle:
            for verdict in verdicts:
                handle.write(verdict_line(verdict) + "\n")
        print(f"  wrote verdicts to {args.out}")

    perf = PerfReport()
    perf.record_stage("serve", stats.wall_seconds)
    perf.record_serving(stats.queries, stats.batches, stats.wall_seconds,
                        swaps=stats.generation_swaps,
                        negcache_hits=stats.negcache_hits,
                        kernel_rows=stats.kernel_rows,
                        fallbacks=stats.fallbacks)
    print(perf.format_timings(), file=sys.stderr)
    print(f"  p50 {stats.p50_ms:.3f} ms, p99 {stats.p99_ms:.3f} ms "
          f"({stats.qps:.0f} qps, {stats.workers} workers)",
          file=sys.stderr)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Stream an event tape through ingest→delta-scan→compact."""
    from repro.dns.packedzone import PackedZoneCorruptError
    from repro.perf.report import PerfReport
    from repro.phishworld.events import EventTapeConfig
    from repro.serve import SnapshotPublisher
    from repro.stages import ArtifactStore
    from repro.stream import StreamingDriver

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.events < 1:
        print("error: --events must be >= 1", file=sys.stderr)
        return 2
    if args.segment_events < 1 or args.compact_every < 1:
        print("error: --segment-events/--compact-every must be >= 1",
              file=sys.stderr)
        return 2
    if args.base_events < 0 or args.base_events >= args.events:
        print("error: --base-events must be in [0, --events)", file=sys.stderr)
        return 2

    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    perf = PerfReport(scan_workers=args.workers)
    driver = StreamingDriver(
        detector,
        EventTapeConfig(seed=args.seed, n_events=args.events),
        base_events=args.base_events,
        segment_events=args.segment_events,
        compact_every=args.compact_every,
        workers=args.workers,
        delta_dir=args.delta_dir,
        store=ArtifactStore(args.store) if args.store else None,
        publisher=SnapshotPublisher(args.publish) if args.publish else None,
        perf=perf,
        verify=args.verify)
    try:
        outcome = driver.run(limit_segments=args.limit_segments)
    except PackedZoneCorruptError as exc:
        print(f"error: snapshot failed verification: {exc}", file=sys.stderr)
        return 2
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stats = outcome.stats
    if args.json:
        summary = dict(stats.as_dict())
        summary["match_digest"] = outcome.match_digest
        summary["tape_digest"] = outcome.tape_digest
        summary["interrupted"] = outcome.interrupted
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        # deterministic counters + digests -> stdout; wall clock -> stderr
        print(f"streamed {stats.events} events in {stats.segments} segments "
              f"({stats.base_events} base events, "
              f"{stats.cached_segments} segments from cache)")
        print(f"  adds/removals:      {stats.adds}/{stats.removals}")
        print(f"  compactions:        {stats.compactions} "
              f"({stats.digest_checks} streaming-vs-batch digest checks)")
        print(f"  live records:       {stats.live_records}")
        print(f"  live squat matches: {stats.live_matches} "
              f"({stats.detections} detected while streaming)")
        print(f"  detection latency:  p50 {stats.latency_p50:.3f}s, "
              f"p95 {stats.latency_p95:.3f}s (sim clock)")
        print(f"  match digest:       {outcome.match_digest}")
        print(f"  tape digest:        {outcome.tape_digest}")
        if outcome.interrupted:
            print(f"  interrupted after {stats.segments} segments "
                  f"({len(outcome.pending)} deltas pending compaction)")
    timings = perf.format_timings()
    if timings:
        print(timings, file=sys.stderr)
    return 0


def cmd_lifecycle(args: argparse.Namespace) -> int:
    """Generate a dated series, diff it, print lifecycle analytics."""
    from repro.analysis.lifecycle import (
        diff_chain_digest,
        diff_series,
        diff_series_serial,
        lifecycle_report,
    )
    from repro.analysis.lifetime import survival_at
    from repro.perf.report import PerfReport
    from repro.phishworld.series import SeriesConfig, generate_series
    from repro.stages import ArtifactStore

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        config = SeriesConfig(
            seed=args.seed, n_snapshots=args.snapshots,
            base_events=args.base_events,
            events_per_snapshot=args.events_per_snapshot,
            start_date=args.start_date, cadence_days=args.cadence_days)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    perf = PerfReport(scan_workers=args.workers)
    store = ArtifactStore(args.store) if args.store else None
    series = generate_series(config, store=store, perf=perf)
    diffs = diff_series(series, workers=args.workers, perf=perf)
    chain = diff_chain_digest(diffs)
    perf.record_stage("lifecycle", series.stats.wall_seconds
                      + perf.diff_seconds)

    oracle_checked = False
    if args.oracle:
        oracle = diff_chain_digest(diff_series_serial(series))
        if oracle != chain:
            print(f"error: packed diff chain {chain[:12]}… diverged from "
                  f"the dict-set oracle {oracle[:12]}…", file=sys.stderr)
            return 2
        oracle_checked = True

    detector = SquattingDetector(_build_catalog(args.brands, args.sectors))
    report = lifecycle_report(series, diffs=diffs, detector=detector)

    if args.json:
        summary = report.as_dict()
        summary["series_digest"] = series.series_digest
        summary["tape_digest"] = series.tape_digest
        summary["series_stats"] = series.stats.as_dict()
        summary["oracle_checked"] = oracle_checked
        summary["workers"] = args.workers
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        stats = series.stats
        print(f"series: {len(series)} snapshots, {series[0].date} → "
              f"{series[-1].date} every {config.cadence_days}d "
              f"({stats.cached_snapshots} from cache)")
        print(f"  tape digest:   {series.tape_digest}")
        print(f"  series digest: {series.series_digest}")
        print(f"  diff chain:    {chain}"
              + ("  (== dict-set oracle)" if oracle_checked else ""))
        print()
        print(table(
            ["pair", "added", "removed", "changed", "retained", "rec +",
             "rec -", "rec ~"],
            [[f"{series[i].date}→{series[i + 1].date}",
              c["added"], c["removed"], c["changed"], c["retained"],
              c["records_added"], c["records_removed"],
              c["records_changed"]]
             for i, c in enumerate(report.pair_counts)],
            title="snapshot-pair diffs (registered domains)",
        ))
        print()
        families = [fam for name, fam in sorted(report.families.items())
                    if name != "organic"]
        print(table(
            ["family", "born", "takedowns", "rereg rate", "weaponized",
             "blacklisted", "lag (d)"],
            [[f.family, f.born, f.takedowns, f"{f.rereg_rate:.2f}",
              f.weaponized, f"{f.blacklist_coverage:.0%}",
              "-" if f.blacklist_lag_days is None
              else f"{f.blacklist_lag_days:.1f}"]
             for f in families],
            title="squat lifecycle by family",
        ))
        print()
        horizon = len(series) - 1
        print(table(
            ["family"] + [f"S({t})" for t in range(1, horizon + 1)],
            [[f.family] + [f"{survival_at(f.lifetimes, t):.2f}"
                           for t in range(1, horizon + 1)]
             for f in families],
            title="squat survival S(t) over snapshots "
                  f"({config.cadence_days}d cadence)",
        ))
    timings = perf.format_timings()
    if timings:
        print(timings, file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="squatphi",
        description="Search and detect squatting phishing domains (IMC'18).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="enumerate squat candidates of a brand")
    gen.add_argument("domain", help="brand domain, e.g. facebook.com")
    gen.add_argument("--types", nargs="*", metavar="TYPE",
                     choices=[t.value for t in SquatType],
                     help="restrict to squat types")
    gen.add_argument("--combo", action="store_true",
                     help="include (non-exhaustive) combo candidates")
    gen.add_argument("--limit", type=int, default=0, help="max candidates")
    gen.set_defaults(func=cmd_gen)

    sector_choices = ("government", "military", "university", "hospital")

    classify = sub.add_parser("classify", help="classify domains")
    classify.add_argument("domains", nargs="+")
    classify.add_argument("--brands", nargs="*",
                          help="restrict the catalog to these brand domains")
    classify.add_argument("--sectors", nargs="*", choices=sector_choices,
                          help="add sector catalogs (§7 extension)")
    classify.set_defaults(func=cmd_classify)

    scan = sub.add_parser("scan", help="scan a DNS snapshot file")
    scan.add_argument("snapshot",
                      help="ActiveDNS-style TSV (.gz ok) or a packed "
                           "snapshot from `world --packed` (autodetected)")
    scan.add_argument("--brands", nargs="*")
    scan.add_argument("--sectors", nargs="*", choices=sector_choices,
                      help="add sector catalogs (§7 extension)")
    scan.add_argument("--workers", type=int, default=1,
                      help="process-pool width for the sharded scan")
    scan.add_argument("--top", type=int, default=10)
    scan.add_argument("--out", help="write matches to this TSV file")
    scan.add_argument("--verify", action="store_true",
                      help="recompute the packed snapshot's payload digest "
                           "before scanning (corrupt files exit 2)")
    scan.set_defaults(func=cmd_scan)

    world = sub.add_parser("world", help="generate a synthetic DNS snapshot")
    world.add_argument("out", help="output snapshot path")
    world.add_argument("--seed", type=int, default=1803)
    world.add_argument("--organic", type=int, default=500)
    world.add_argument("--squats", type=int, default=500)
    world.add_argument("--phish", type=int, default=40)
    world.add_argument("--packed", action="store_true",
                       help="write a packed columnar snapshot (mmap-able "
                            "by `scan`) instead of a TSV")
    world.set_defaults(func=cmd_world)

    pipeline = sub.add_parser("pipeline", help="run the end-to-end demo")
    pipeline.add_argument("--seed", type=int, default=1803)
    pipeline.add_argument("--squats", type=int, default=400)
    pipeline.add_argument("--fault-rate", type=float, default=0.0,
                          help="compound infrastructure fault rate injected "
                               "across DNS/HTTP/browser (0 disables)")
    pipeline.add_argument("--fault-seed", type=int, default=0,
                          help="seed addressing the deterministic fault draws")
    pipeline.add_argument("--max-retries", type=int, default=2,
                          help="crawl retries per job after a failed visit")
    pipeline.add_argument("--scan-workers", type=int, default=1,
                          help="process-pool width for the snapshot scan")
    pipeline.add_argument("--packed-zone", action="store_true",
                          help="build the world's DNS zone as a packed "
                               "columnar snapshot; the scan stage then "
                               "mmaps it zero-copy across --scan-workers "
                               "(results are identical either way)")
    pipeline.add_argument("--crawl-workers", type=int, default=20,
                          help="thread-pool width for crawl dispatch")
    pipeline.add_argument("--train-workers", type=int, default=1,
                          help="process-pool width for forest trees and "
                               "cross-validation folds")
    pipeline.add_argument("--extract-workers", type=int, default=1,
                          help="process-pool width for feature extraction "
                               "over captured pages")
    pipeline.add_argument("--enrich-workers", type=int, default=8,
                          help="in-flight concurrency of the bulk "
                               "enrichment resolver (results are "
                               "byte-identical at any setting)")
    pipeline.add_argument("--no-enrich-hedging", action="store_true",
                          help="disable hedged duplicate requests for "
                               "enrichment stragglers")
    pipeline.add_argument("--no-capture-cache", action="store_true",
                          help="disable the content-addressed render/OCR "
                               "cache (results are identical either way)")
    pipeline.add_argument("--store", metavar="DIR",
                          help="persist artifacts + run manifests here "
                               "(enables --resume across processes)")
    pipeline.add_argument("--resume", metavar="RUN_ID",
                          help="resume/incrementally re-execute a prior run "
                               "from --store; unchanged stages are loaded "
                               "instead of recomputed")
    pipeline.add_argument("--from-stage", metavar="NAME",
                          help="with --resume, force NAME and every stage "
                               "downstream of it to re-execute")
    pipeline.add_argument("--json", action="store_true",
                          help="emit the machine-readable run summary as "
                               "JSON on stdout instead of the tables")
    pipeline.set_defaults(func=cmd_pipeline)

    query = sub.add_parser("query", help="per-domain verdicts from the "
                                         "interactive serving engine")
    query.add_argument("snapshot",
                       help="packed snapshot from `world --packed` "
                            "(TSV snapshots are packed on the fly)")
    query.add_argument("domains", nargs="+")
    query.add_argument("--brands", nargs="*",
                       help="restrict the catalog to these brand domains")
    query.add_argument("--sectors", nargs="*", choices=sector_choices,
                       help="add sector catalogs (§7 extension)")
    query.add_argument("--verify", action="store_true",
                       help="recompute the packed snapshot's payload digest "
                            "before serving (corrupt files exit 2)")
    query.set_defaults(func=cmd_query)

    serve = sub.add_parser("serve", help="replay a synthetic query burst "
                                         "through the serving front")
    serve.add_argument("snapshot",
                       help="packed snapshot from `world --packed` "
                            "(TSV snapshots are packed on the fly)")
    serve.add_argument("--queries", type=int, default=5000,
                       help="synthetic queries in the burst")
    serve.add_argument("--qps", type=float, default=2000.0,
                       help="target arrival rate (sim clock)")
    serve.add_argument("--seed", type=int, default=1803)
    serve.add_argument("--workers", type=int, default=1,
                       help="serving worker processes (each mmaps the "
                            "snapshot zero-copy; verdicts are identical "
                            "at any width)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch size bound")
    serve.add_argument("--max-delay", type=float, default=0.005,
                       help="micro-batch delay bound, seconds (sim clock)")
    serve.add_argument("--no-batching", action="store_true",
                       help="dispatch every request as its own batch")
    serve.add_argument("--no-negcache", action="store_true",
                       help="disable the TTL'd negative-verdict cache")
    serve.add_argument("--hot-swap", action="store_true",
                       help="republish the snapshot as a new generation "
                            "mid-burst to exercise worker hot-reload")
    serve.add_argument("--brands", nargs="*",
                       help="restrict the catalog to these brand domains")
    serve.add_argument("--sectors", nargs="*", choices=sector_choices,
                       help="add sector catalogs (§7 extension)")
    serve.add_argument("--out", help="write verdict lines to this file")
    serve.set_defaults(func=cmd_serve)

    stream = sub.add_parser("stream", help="drive a registration event tape "
                                           "through incremental delta scans")
    stream.add_argument("--events", type=int, default=2000,
                        help="total events on the deterministic tape")
    stream.add_argument("--base-events", type=int, default=400,
                        help="tape prefix that builds the initial base "
                             "snapshot (the rest streams)")
    stream.add_argument("--segment-events", type=int, default=120,
                        help="events per sealed delta segment")
    stream.add_argument("--compact-every", type=int, default=4,
                        help="segments between LSM-style compactions (each "
                             "asserts streaming == batch digests)")
    stream.add_argument("--seed", type=int, default=1803)
    stream.add_argument("--workers", type=int, default=1,
                        help="process-pool width for delta scans (digests "
                             "are identical at any width)")
    stream.add_argument("--delta-dir", metavar="DIR",
                        help="write sealed delta-segment files here")
    stream.add_argument("--store", metavar="DIR",
                        help="persist per-segment scan artifacts here "
                             "(a killed run resumes from cache)")
    stream.add_argument("--publish", metavar="DIR",
                        help="publish base + delta generations into this "
                             "directory for the serving layer")
    stream.add_argument("--limit-segments", type=int, default=None,
                        help="stop after N segments without the final "
                             "compaction (kill/resume harnesses)")
    stream.add_argument("--brands", nargs="*",
                        help="restrict the catalog to these brand domains")
    stream.add_argument("--sectors", nargs="*", choices=sector_choices,
                        help="add sector catalogs (§7 extension)")
    stream.add_argument("--json", action="store_true",
                        help="emit the run summary as JSON on stdout")
    stream.add_argument("--verify", action="store_true",
                        help="verify every base snapshot and sealed delta "
                             "segment (payload digests + chain binding) "
                             "as the stream advances")
    stream.set_defaults(func=cmd_stream)

    lifecycle = sub.add_parser(
        "lifecycle", help="dated snapshot series + longitudinal analytics")
    lifecycle.add_argument("--snapshots", type=int, default=8,
                           help="dated snapshots in the series")
    lifecycle.add_argument("--base-events", type=int, default=600,
                           help="tape prefix behind snapshot 0")
    lifecycle.add_argument("--events-per-snapshot", type=int, default=250,
                           help="churn events between snapshots")
    lifecycle.add_argument("--start-date", default="2018-03-01",
                           help="ISO date of snapshot 0")
    lifecycle.add_argument("--cadence-days", type=int, default=7,
                           help="days between snapshots")
    lifecycle.add_argument("--seed", type=int, default=1803)
    lifecycle.add_argument("--workers", type=int, default=1,
                           help="process-pool width for consecutive-pair "
                                "diffs (digests identical at any width)")
    lifecycle.add_argument("--store", metavar="DIR",
                           help="persist per-snapshot artifacts here "
                                "(re-runs skip unchanged snapshots)")
    lifecycle.add_argument("--oracle", action="store_true",
                           help="re-diff every pair with the dict-set "
                                "oracle and require digest equality")
    lifecycle.add_argument("--brands", nargs="*",
                           help="restrict the catalog to these brand domains")
    lifecycle.add_argument("--sectors", nargs="*", choices=sector_choices,
                           help="add sector catalogs (§7 extension)")
    lifecycle.add_argument("--json", action="store_true",
                           help="emit the report as JSON on stdout")
    lifecycle.set_defaults(func=cmd_lifecycle)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
