"""Packed columnar DNS snapshots: the scan stage's zone-file-scale substrate.

The paper scans an ActiveDNS snapshot of 224.8M records (§3); a
:class:`~repro.dns.zone.ZoneStore` holds every record as a Python
dict/set/dataclass web, which tops out one to two orders of magnitude
below that on one machine.  This module packs the same snapshot into a
handful of contiguous numpy arrays — interned label blobs plus offset and
id columns — serialized into a single mmap-able file, so that

* building a snapshot streams records straight into byte buffers (no
  per-record :class:`~repro.dns.records.DNSRecord` objects),
* sharded scan workers mmap the file and read ``[start, stop)`` slices of
  the registered-domain columns zero-copy (no pickled string chunks), and
* the whole snapshot is content-addressed: a SHA-256 digest over the
  payload sits in the header, giving the stage graph a canonical artifact
  digest without rehydrating anything.

Layout (all little-endian, every section 64-byte aligned)::

    magic "PZON0001" | u64 meta length | 32-byte payload sha256
    meta JSON  (section table with offsets relative to the data start,
                counts, tld/source/record-type intern tables, rare
                non-IPv4 ips)
    sections   name_blob/name_off   full names, utf-8, insertion order
               rec_reg rec_ip rec_type rec_src    per-record columns
               reg_core reg_tld     per-registered-domain columns,
                                    first-seen order (== dict order)
               core_blob/core_off   interned core labels, first-seen order
               reg_by_core/core_spans   registered ids grouped by core
               rec_by_reg/reg_spans     record ids grouped by registered

Ordering is the load-bearing invariant: records keep insertion order,
registered domains and core labels keep *first-seen* order — exactly the
iteration order of ``ZoneStore``'s backing dicts — so a scan over a packed
zone visits domains in the same order as the dict-backed store and its
output digests byte-match (see DESIGN.md §11).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
import weakref
from array import array
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.dns.records import DNSRecord, split_domain
from repro.dns.zone import MISS

if TYPE_CHECKING:  # pragma: no cover
    from repro.dns.zone import ZoneStore
    from repro.faults.plan import FaultInjector

MAGIC = b"PZON0001"
VERSION = 1
_HEADER_LEN = 8 + 8 + 32
_ALIGN = 64

PathLike = Union[str, Path]


class PackedZoneCorruptError(ValueError):
    """A packed snapshot file failed a structural or digest check.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; the dedicated type lets callers distinguish
    "this file is damaged" (truncated payload, flipped bytes, bad
    digest) from ordinary argument errors.
    """


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _ip_to_u32(ip: str) -> Optional[int]:
    """Strictly-canonical dotted-quad → u32 (None when not round-trippable)."""
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit() or str(int(part)) != part:
            return None
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


def _u32_to_ip(value: int) -> str:
    return f"{(value >> 24) & 255}.{(value >> 16) & 255}.{(value >> 8) & 255}.{value & 255}"


def _pack_file(meta: Dict[str, object],
               sections: List[Tuple[str, np.ndarray]]) -> bytes:
    """Assemble a snapshot file from meta fields + named sections.

    Shared by :meth:`PackedZoneBuilder.to_bytes` and
    :func:`attach_enrichment`: builds the section table (64-byte-aligned
    offsets relative to the data start), serializes the meta JSON, lays
    the sections out, and stamps the payload SHA-256 into the header.
    ``meta`` must not already contain a ``"sections"`` key.
    """
    table: Dict[str, Dict[str, object]] = {}
    cursor = 0
    for name, arr in sections:
        cursor = _align(cursor)
        table[name] = {"offset": cursor, "dtype": arr.dtype.str,
                       "count": int(arr.size)}
        cursor += arr.nbytes
    meta = dict(meta)
    meta["sections"] = table
    meta_bytes = json.dumps(meta, sort_keys=True,
                            separators=(",", ":")).encode("utf-8")
    data_start = _align(_HEADER_LEN + len(meta_bytes))
    total = data_start + cursor
    out = bytearray(total)
    out[0:8] = MAGIC
    out[8:16] = len(meta_bytes).to_bytes(8, "little")
    out[_HEADER_LEN:_HEADER_LEN + len(meta_bytes)] = meta_bytes
    for name, arr in sections:
        at = data_start + int(table[name]["offset"])  # type: ignore[index]
        out[at:at + arr.nbytes] = arr.tobytes()
    out[16:48] = hashlib.sha256(bytes(out[_HEADER_LEN:])).digest()
    return bytes(out)


class PackedZoneBuilder:
    """Streaming builder: feed ``(name, ip, type, source)`` rows, get a
    :class:`PackedZone`.

    Mirrors ``ZoneStore.add``'s semantics exactly — names are normalized
    (lowercase, trailing dot stripped), a repeated name *replaces* the
    earlier record in place, and registered domains / core labels are
    interned in first-seen order — without ever materializing a
    :class:`DNSRecord`.
    """

    def __init__(self) -> None:
        self._name_blob = bytearray()
        self._name_off = array("Q", [0])
        self._name_index: Dict[str, int] = {}
        self._rec_reg = array("I")
        self._rec_ip = array("I")
        self._rec_type = array("H")
        self._rec_src = array("H")
        self._extra_ips: Dict[int, str] = {}
        self._reg_index: Dict[str, int] = {}
        self._reg_core = array("I")
        self._reg_tld = array("H")
        self._core_index: Dict[str, int] = {}
        self._core_blob = bytearray()
        self._core_off = array("Q", [0])
        self._tld_index: Dict[str, int] = {}
        self._tlds: List[str] = []
        self._src_index: Dict[str, int] = {}
        self._srcs: List[str] = []
        self._type_index: Dict[str, int] = {}
        self._types: List[str] = []

    def __len__(self) -> int:
        return len(self._rec_reg)

    def _intern(self, value: str, index: Dict[str, int], table: List[str]) -> int:
        slot = index.get(value)
        if slot is None:
            slot = len(table)
            index[value] = slot
            table.append(value)
        return slot

    def add_name(self, name: str, ip: str = "0.0.0.0",
                 source: str = "zone", record_type: str = "A") -> None:
        """Insert one record (same contract as ``ZoneStore.add_name``)."""
        if not name:
            raise ValueError("DNS record requires a non-empty name")
        name = name.lower().rstrip(".")
        ip4 = _ip_to_u32(ip)
        type_id = self._intern(record_type, self._type_index, self._types)
        src_id = self._intern(source, self._src_index, self._srcs)
        existing = self._name_index.get(name)
        if existing is not None:
            # replacement: same name → same registered domain; only the
            # scalar columns change (dicts keep insertion position, and
            # so do we)
            self._rec_ip[existing] = 0 if ip4 is None else ip4
            if ip4 is None:
                self._extra_ips[existing] = ip
            else:
                self._extra_ips.pop(existing, None)
            self._rec_type[existing] = type_id
            self._rec_src[existing] = src_id
            return
        core, tld = split_domain(name)
        registered = f"{core}.{tld}" if tld else core
        reg_id = self._reg_index.get(registered)
        if reg_id is None:
            reg_id = len(self._reg_core)
            self._reg_index[registered] = reg_id
            core_id = self._core_index.get(core)
            if core_id is None:
                core_id = len(self._core_off) - 1
                self._core_index[core] = core_id
                self._core_blob.extend(core.encode("utf-8"))
                self._core_off.append(len(self._core_blob))
            self._reg_core.append(core_id)
            self._reg_tld.append(self._intern(tld, self._tld_index, self._tlds))
        rec_id = len(self._rec_reg)
        self._name_index[name] = rec_id
        self._name_blob.extend(name.encode("utf-8"))
        self._name_off.append(len(self._name_blob))
        self._rec_reg.append(reg_id)
        self._rec_ip.append(0 if ip4 is None else ip4)
        if ip4 is None:
            self._extra_ips[rec_id] = ip
        self._rec_type.append(type_id)
        self._rec_src.append(src_id)

    def add(self, record: DNSRecord) -> None:
        """Insert an already-built record (ZoneStore-compat convenience)."""
        self.add_name(record.name, ip=record.ip,
                      source=record.source, record_type=record.record_type)

    # ------------------------------------------------------------------
    def build(self) -> "PackedZone":
        """Finalize into an in-memory :class:`PackedZone`."""
        return PackedZone.from_bytes(self.to_bytes())

    def to_bytes(self) -> bytes:
        rec_reg = np.frombuffer(self._rec_reg, dtype=np.uint32) \
            if len(self._rec_reg) else np.zeros(0, dtype=np.uint32)
        reg_core = np.frombuffer(self._reg_core, dtype=np.uint32) \
            if len(self._reg_core) else np.zeros(0, dtype=np.uint32)
        n_reg = len(self._reg_core)
        n_core = len(self._core_off) - 1
        # stable grouping permutations + spans, so names_under /
        # registered_domains_with_core are O(1) slices at lookup time
        rec_by_reg = np.argsort(rec_reg, kind="stable").astype(np.uint32)
        reg_spans = np.zeros(n_reg + 1, dtype=np.uint64)
        np.cumsum(np.bincount(rec_reg, minlength=n_reg), out=reg_spans[1:])
        reg_by_core = np.argsort(reg_core, kind="stable").astype(np.uint32)
        core_spans = np.zeros(n_core + 1, dtype=np.uint64)
        np.cumsum(np.bincount(reg_core, minlength=n_core), out=core_spans[1:])

        sections = [
            ("name_blob", np.frombuffer(self._name_blob, dtype=np.uint8)),
            ("name_off", np.frombuffer(self._name_off, dtype=np.uint64)),
            ("rec_reg", rec_reg),
            ("rec_ip", np.frombuffer(self._rec_ip, dtype=np.uint32)),
            ("rec_type", np.frombuffer(self._rec_type, dtype=np.uint16)),
            ("rec_src", np.frombuffer(self._rec_src, dtype=np.uint16)),
            ("reg_core", reg_core),
            ("reg_tld", np.frombuffer(self._reg_tld, dtype=np.uint16)),
            ("core_blob", np.frombuffer(self._core_blob, dtype=np.uint8)),
            ("core_off", np.frombuffer(self._core_off, dtype=np.uint64)),
            ("reg_by_core", reg_by_core),
            ("core_spans", core_spans),
            ("rec_by_reg", rec_by_reg),
            ("reg_spans", reg_spans),
        ]
        meta = {
            "version": VERSION,
            "records": len(self._rec_reg),
            "registered": n_reg,
            "cores": n_core,
            "tlds": self._tlds,
            "sources": self._srcs,
            "record_types": self._types,
            "extra_ips": {str(k): v for k, v in sorted(self._extra_ips.items())},
        }
        return _pack_file(meta, sections)

    def write(self, path: PathLike) -> int:
        """Serialize straight to ``path``; returns the record count."""
        data = self.to_bytes()
        with open(path, "wb") as handle:
            handle.write(data)
        return len(self)


class PackedZone:
    """An immutable, columnar DNS snapshot with ``ZoneStore``'s lookup
    protocol.

    Backed either by in-memory bytes (fresh :meth:`PackedZoneBuilder.build`)
    or by an mmap of the serialized file (:meth:`load`) — the numpy views
    are identical either way, and slicing them never copies.  Random-access
    lookups (``get``, ``names_under``, …) build small lazy python indexes
    on first use; the scan hot path touches only the packed columns.
    """

    def __init__(self, buffer, path: Optional[Path] = None,
                 mapped: Optional[mmap.mmap] = None) -> None:
        self._buf = buffer
        self._map = mapped  # kept alive for the lifetime of the views
        self.path = Path(path) if path is not None else None
        if len(buffer) < _HEADER_LEN or bytes(buffer[0:8]) != MAGIC:
            raise ValueError("not a packed zone snapshot (bad magic)")
        meta_len = int.from_bytes(bytes(buffer[8:16]), "little")
        self.content_digest: str = bytes(buffer[16:48]).hex()
        raw_meta = bytes(buffer[_HEADER_LEN:_HEADER_LEN + meta_len])
        if len(raw_meta) < meta_len:
            raise PackedZoneCorruptError(
                f"packed zone meta truncated: header declares {meta_len} "
                f"bytes, file holds {len(raw_meta)}")
        try:
            meta = json.loads(raw_meta)
        except json.JSONDecodeError as exc:
            raise PackedZoneCorruptError(
                f"packed zone meta is not valid JSON: {exc}") from exc
        if meta["version"] != VERSION:
            raise ValueError(f"unsupported packed zone version {meta['version']}")
        self.n_records: int = meta["records"]
        self.n_registered: int = meta["registered"]
        self.n_cores: int = meta["cores"]
        # snapshot generation for serving hot-reload; files that predate
        # the field (or were never published) read as generation 0
        self.generation: int = int(meta.get("generation", 0))
        self.tlds: List[str] = meta["tlds"]
        self.sources: List[str] = meta["sources"]
        self.record_types: List[str] = meta["record_types"]
        self.extra_ips: Dict[int, str] = {
            int(k): v for k, v in meta["extra_ips"].items()}
        # enrichment intern tables (present only on enriched snapshots;
        # old readers ignore the key, old files simply lack it)
        self.enrichment_meta: Optional[Dict[str, List[str]]] = \
            meta.get("enrichment")
        # delta-segment binding (seq, base digest, tombstone count) when
        # this file is an append-only delta rather than a base snapshot
        # (see repro.dns.deltazone); plain snapshots read None
        self.delta_meta: Optional[Dict[str, object]] = meta.get("delta")
        data_start = _align(_HEADER_LEN + meta_len)
        self._sections: Dict[str, np.ndarray] = {}
        for name, spec in meta["sections"].items():
            dtype = np.dtype(spec["dtype"])
            end = data_start + int(spec["offset"]) + int(spec["count"]) * dtype.itemsize
            if end > len(buffer):
                # header + meta intact but the payload is short: surface a
                # typed corruption error instead of numpy's buffer error
                raise PackedZoneCorruptError(
                    f"packed zone payload truncated: section {name!r} needs "
                    f"{end} bytes, file has {len(buffer)}")
            self._sections[name] = np.frombuffer(
                buffer, dtype=dtype, count=spec["count"],
                offset=data_start + int(spec["offset"]))
        self.name_blob = self._sections["name_blob"]
        self.name_off = self._sections["name_off"]
        self.rec_reg = self._sections["rec_reg"]
        self.rec_ip = self._sections["rec_ip"]
        self.rec_type = self._sections["rec_type"]
        self.rec_src = self._sections["rec_src"]
        self.reg_core = self._sections["reg_core"]
        self.reg_tld = self._sections["reg_tld"]
        self.core_blob = self._sections["core_blob"]
        self.core_off = self._sections["core_off"]
        self.reg_by_core = self._sections["reg_by_core"]
        self.core_spans = self._sections["core_spans"]
        self.rec_by_reg = self._sections["rec_by_reg"]
        self.reg_spans = self._sections["reg_spans"]
        # live-lookup fault hook, same contract as ZoneStore
        self.fault_injector: Optional["FaultInjector"] = None
        self._name_lookup: Optional[Dict[str, int]] = None
        self._reg_lookup: Optional[Dict[str, int]] = None
        self._core_lookup: Optional[Dict[str, int]] = None
        self._tld_lookup: Optional[Dict[str, int]] = None
        self._reg_key_cache: Optional[Tuple] = None
        self._tempfile: Optional[Path] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes) -> "PackedZone":
        return cls(data)

    @classmethod
    def load(cls, path: PathLike) -> "PackedZone":
        """mmap a serialized snapshot; pages fault in only when touched."""
        path = Path(path)
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(mapped, path=path, mapped=mapped)

    def save(self, path: PathLike) -> int:
        """Write the snapshot file; returns the record count."""
        with open(path, "wb") as handle:
            handle.write(bytes(self._buf))
        self.path = Path(path)
        return self.n_records

    def to_bytes(self) -> bytes:
        return bytes(self._buf)

    def ensure_file(self) -> Path:
        """A file holding this snapshot, for workers to mmap.

        Returns :attr:`path` when the zone was loaded from (or saved to)
        disk; otherwise spills once to a temp file that lives as long as
        this object.
        """
        if self.path is not None and self.path.exists():
            return self.path
        if self._tempfile is None:
            fd, raw = tempfile.mkstemp(prefix="packedzone-", suffix=".pzon")
            with os.fdopen(fd, "wb") as handle:
                handle.write(bytes(self._buf))
            self._tempfile = Path(raw)
            weakref.finalize(self, _unlink_quiet, raw)
        return self._tempfile

    def reopen(self) -> "PackedZone":
        """A fresh mmap of this snapshot's backing file.

        Serving workers hot-reload across generations by reopening the
        published path; the superseded mapping stays valid for any
        in-flight batch that still holds views into it, and is released
        only when the last reference drops.
        """
        return PackedZone.load(self.ensure_file())

    @property
    def nbytes(self) -> int:
        """Size of the serialized snapshot in bytes."""
        return len(self._buf)

    def verify(self) -> None:
        """Recompute the payload SHA-256 against the header digest.

        Deliberately not run on :meth:`load` — hashing the whole file
        would fault every mmap page in and defeat the lazy zero-copy
        open.  Raises :class:`PackedZoneCorruptError` on a corrupt
        snapshot.
        """
        actual = hashlib.sha256(bytes(self._buf[_HEADER_LEN:])).hexdigest()
        if actual != self.content_digest:
            raise PackedZoneCorruptError(
                "packed zone payload digest mismatch (corrupt snapshot)")

    def __reduce__(self):
        # artifact stores pickle payloads: ship the raw file bytes, which
        # are self-contained and content-addressed (fault_injector is a
        # live-run hook and deliberately not carried)
        return (PackedZone.from_bytes, (self.to_bytes(),))

    # ------------------------------------------------------------------
    # decoding helpers
    # ------------------------------------------------------------------
    def _name_at(self, rec_id: int) -> str:
        start = int(self.name_off[rec_id])
        stop = int(self.name_off[rec_id + 1])
        return self.name_blob[start:stop].tobytes().decode("utf-8")

    def core_at(self, core_id: int) -> str:
        start = int(self.core_off[core_id])
        stop = int(self.core_off[core_id + 1])
        return self.core_blob[start:stop].tobytes().decode("utf-8")

    def registered_at(self, reg_id: int) -> str:
        core = self.core_at(int(self.reg_core[reg_id]))
        tld = self.tlds[int(self.reg_tld[reg_id])]
        return f"{core}.{tld}" if tld else core

    def _ip_at(self, rec_id: int) -> str:
        extra = self.extra_ips.get(rec_id)
        if extra is not None:
            return extra
        return _u32_to_ip(int(self.rec_ip[rec_id]))

    def record_at(self, rec_id: int) -> DNSRecord:
        return DNSRecord(
            name=self._name_at(rec_id),
            ip=self._ip_at(rec_id),
            record_type=self.record_types[int(self.rec_type[rec_id])],
            source=self.sources[int(self.rec_src[rec_id])],
        )

    # ------------------------------------------------------------------
    # ZoneStore lookup protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_records

    def __iter__(self) -> Iterator[DNSRecord]:
        return (self.record_at(i) for i in range(self.n_records))

    def _names(self) -> Dict[str, int]:
        if self._name_lookup is None:
            self._name_lookup = {self._name_at(i): i
                                 for i in range(self.n_records)}
        return self._name_lookup

    def _regs(self) -> Dict[str, int]:
        if self._reg_lookup is None:
            self._reg_lookup = {self.registered_at(i): i
                                for i in range(self.n_registered)}
        return self._reg_lookup

    def _cores(self) -> Dict[str, int]:
        if self._core_lookup is None:
            self._core_lookup = {self.core_at(i): i
                                 for i in range(self.n_cores)}
        return self._core_lookup

    def __contains__(self, name: str) -> bool:
        return name.lower().rstrip(".") in self._names()

    def get(self, name: str) -> Optional[DNSRecord]:
        rec_id = self._names().get(name.lower().rstrip("."))
        return None if rec_id is None else self.record_at(rec_id)

    def get_many(self, names: Iterable[str]) -> list:
        """Bulk :meth:`get`, with :data:`~repro.dns.zone.MISS` for
        unknown names (``ZoneStore.get_many``'s contract): batched
        consumers test ``if not record`` instead of raising per name."""
        get = self._names().get
        record_at = self.record_at
        out = []
        for name in names:
            rec_id = get(name.lower().rstrip("."))
            out.append(MISS if rec_id is None else record_at(rec_id))
        return out

    def resolve(self, name: str, snapshot: int = 0,
                attempt: int = 0) -> Optional[DNSRecord]:
        """Live-query semantics, identical to ``ZoneStore.resolve``."""
        if self.fault_injector is not None:
            self.fault_injector.check_dns(name.lower().rstrip("."),
                                          snapshot, attempt)
        return self.get(name)

    def has_registered_domain(self, registered: str) -> bool:
        return registered.lower() in self._regs()

    def _tlds_lookup(self) -> Dict[str, int]:
        if self._tld_lookup is None:
            self._tld_lookup = {tld: i for i, tld in enumerate(self.tlds)}
        return self._tld_lookup

    def _reg_keys(self) -> Tuple:
        """Sorted join keys for :meth:`registered_ids`, built lazily.

        Core labels are gathered from the blob into one fixed-width
        ``S``-dtype array and argsorted; registered domains become u64
        ``core_id << 16 | tld_id`` pair keys (``reg_tld`` is u16, so the
        pack is exact) and argsorted likewise.  Both stay cached for the
        zone's lifetime — the serving membership pre-check probes them
        with two searchsorteds per batch.
        """
        if self._reg_key_cache is None:
            lens = np.diff(self.core_off.astype(np.int64))
            width = max(int(lens.max()), 1) if lens.size else 1
            cols = np.arange(width, dtype=np.int64)
            blob = self.core_blob
            if blob.size:
                idx = self.core_off[:-1].astype(np.int64)[:, None] + cols[None, :]
                np.minimum(idx, blob.size - 1, out=idx)
                padded = blob[idx]
            else:
                padded = np.zeros((self.n_cores, width), dtype=np.uint8)
            padded[cols[None, :] >= lens[:, None]] = 0
            core_keys = np.ascontiguousarray(padded).view(
                np.dtype(f"S{width}")).ravel()
            core_order = np.argsort(core_keys, kind="stable")
            pair_keys = ((self.reg_core.astype(np.uint64) << np.uint64(16))
                         | self.reg_tld.astype(np.uint64))
            pair_order = np.argsort(pair_keys, kind="stable")
            self._reg_key_cache = (width, core_keys[core_order],
                                   core_order.astype(np.int64),
                                   pair_keys[pair_order],
                                   pair_order.astype(np.int64))
        return self._reg_key_cache

    def registered_ids(self, names: Iterable[str]) -> np.ndarray:
        """Vectorized membership pre-check: registered-domain id per name.

        Each name reduces to its registrable domain (core label + TLD)
        and hash-joins against the packed columns via sorted
        searchsorted; misses come back ``-1`` — no per-name exceptions,
        no :class:`DNSRecord` materialization.  The serving hot path
        uses the ids both for the "registered" verdict bit and to gather
        enrichment columns for hits.
        """
        names = list(names)
        out = np.full(len(names), -1, dtype=np.int64)
        if not names or self.n_registered == 0:
            return out
        width, core_keys, core_order, pair_keys, pair_order = self._reg_keys()
        tld_ids = self._tlds_lookup()
        rows: List[int] = []
        encoded: List[bytes] = []
        tld_col: List[int] = []
        for i, name in enumerate(names):
            core, tld = split_domain(name.lower().rstrip("."))
            tld_id = tld_ids.get(tld)
            if tld_id is None:
                continue
            raw = core.encode("utf-8")
            if 0 < len(raw) <= width:
                rows.append(i)
                encoded.append(raw)
                tld_col.append(tld_id)
        if not rows:
            return out
        probe = np.array(encoded, dtype=core_keys.dtype)
        pos = np.searchsorted(core_keys, probe)
        np.minimum(pos, core_keys.size - 1, out=pos)
        core_hit = core_keys[pos] == probe
        pair = ((core_order[pos].astype(np.uint64) << np.uint64(16))
                | np.asarray(tld_col, dtype=np.uint64))
        rpos = np.searchsorted(pair_keys, pair)
        np.minimum(rpos, pair_keys.size - 1, out=rpos)
        hit = core_hit & (pair_keys[rpos] == pair)
        out[np.asarray(rows)] = np.where(hit, pair_order[rpos], -1)
        return out

    def names_under(self, registered: str) -> List[str]:
        reg_id = self._regs().get(registered.lower())
        if reg_id is None:
            return []
        start = int(self.reg_spans[reg_id])
        stop = int(self.reg_spans[reg_id + 1])
        return sorted(self._name_at(int(rec))
                      for rec in self.rec_by_reg[start:stop])

    def registered_domains(self) -> Iterator[str]:
        """Registered domains in first-seen order (== ZoneStore's)."""
        return (self.registered_at(i) for i in range(self.n_registered))

    def registered_domains_with_core(self, core: str) -> List[str]:
        core_id = self._cores().get(core.lower())
        if core_id is None:
            return []
        start = int(self.core_spans[core_id])
        stop = int(self.core_spans[core_id + 1])
        return sorted(self.registered_at(int(reg))
                      for reg in self.reg_by_core[start:stop])

    def core_labels(self) -> Iterator[Tuple[str, Set[str]]]:
        for core_id in range(self.n_cores):
            start = int(self.core_spans[core_id])
            stop = int(self.core_spans[core_id + 1])
            yield self.core_at(core_id), {
                self.registered_at(int(reg))
                for reg in self.reg_by_core[start:stop]
            }

    def stats(self) -> Dict[str, int]:
        return {
            "records": self.n_records,
            "registered_domains": self.n_registered,
            "core_labels": self.n_cores,
        }

    # ------------------------------------------------------------------
    # enrichment columns (present after attach_enrichment)
    # ------------------------------------------------------------------
    @property
    def has_enrichment(self) -> bool:
        return "enr_has" in self._sections

    def enrichment_column(self, name: str) -> np.ndarray:
        """One per-registered-domain enrichment column.

        Names: ``has``, ``a_ip``, ``country``, ``year``, ``registrar``,
        ``mx``, ``status_a``, ``status_mx``, ``status_whois``,
        ``status_geo``.  Index == registered-domain id; id columns decode
        through ``enrichment_meta``'s intern tables (0 == missing).
        """
        return self._sections[f"enr_{name}"]


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _unpack_meta(zone: PackedZone) -> Tuple[Dict[str, object],
                                            List[Tuple[str, np.ndarray]]]:
    """(meta sans section table, sections in physical order) of a loaded
    snapshot — the starting point for re-emitting it with edits.

    JSON round-trips dict keys alphabetically, so physical layout order
    is recovered from the recorded offsets.
    """
    meta_len = int.from_bytes(bytes(zone._buf[8:16]), "little")
    meta = json.loads(bytes(zone._buf[_HEADER_LEN:_HEADER_LEN + meta_len]))
    table = meta.pop("sections")
    sections: List[Tuple[str, np.ndarray]] = [
        (name, zone._sections[name])
        for name, _spec in sorted(table.items(),
                                  key=lambda kv: int(kv[1]["offset"]))
    ]
    return meta, sections


def stamp_generation(zone: PackedZone, generation: int) -> PackedZone:
    """Re-emit ``zone`` with ``generation`` stamped into the header meta.

    Sections carry over byte-for-byte; only the meta JSON (and therefore
    the content digest) changes, so two publishes of the same payload
    under different generations are distinct artifacts.  Generation 0 —
    what unstamped files read as — is stored implicitly, keeping
    never-published snapshots byte-identical to their builder output.
    """
    meta, sections = _unpack_meta(zone)
    if int(generation):
        meta["generation"] = int(generation)
    else:
        meta.pop("generation", None)
    return PackedZone.from_bytes(_pack_file(meta, sections))


def attach_enrichment(zone: PackedZone, table) -> PackedZone:
    """Append enrichment columns to a packed snapshot → new PackedZone.

    Existing sections are carried over byte-for-byte in their original
    physical order; ten new per-registered-domain sections (``enr_*``,
    full ``n_registered`` length, id 0 == missing) plus the intern tables
    in ``meta["enrichment"]`` are appended.  The file stays version-1 and
    loads in readers that predate enrichment — they simply ignore the
    extra sections.  Domains in ``table`` that are not registered domains
    of this zone are skipped; un-enriched registered domains have
    ``enr_has == 0``.
    """
    meta, sections = _unpack_meta(zone)
    meta.pop("enrichment", None)
    sections = [(name, arr) for name, arr in sections
                if not name.startswith("enr_")]
    n = zone.n_registered
    columns = {
        "enr_has": np.zeros(n, dtype=np.uint8),
        "enr_a_ip": np.zeros(n, dtype=np.uint32),
        "enr_country": np.zeros(n, dtype=np.uint16),
        "enr_year": np.zeros(n, dtype=np.uint16),
        "enr_registrar": np.zeros(n, dtype=np.uint16),
        "enr_mx": np.zeros(n, dtype=np.uint8),
        "enr_status_a": np.zeros(n, dtype=np.uint8),
        "enr_status_mx": np.zeros(n, dtype=np.uint8),
        "enr_status_whois": np.zeros(n, dtype=np.uint8),
        "enr_status_geo": np.zeros(n, dtype=np.uint8),
    }
    regs = zone._regs()
    rows: List[int] = []
    reg_ids: List[int] = []
    for row, domain in enumerate(table.domains):
        reg_id = regs.get(domain)
        if reg_id is not None:
            rows.append(row)
            reg_ids.append(reg_id)
    if rows:
        row_index = np.asarray(rows)
        reg_index = np.asarray(reg_ids)
        columns["enr_has"][reg_index] = 1
        columns["enr_a_ip"][reg_index] = table.a_ip[row_index]
        columns["enr_country"][reg_index] = table.country_id[row_index]
        columns["enr_year"][reg_index] = table.reg_year[row_index]
        columns["enr_registrar"][reg_index] = table.registrar_id[row_index]
        columns["enr_mx"][reg_index] = table.mx_present[row_index]
        for backend in ("a", "mx", "whois", "geo"):
            columns[f"enr_status_{backend}"][reg_index] = \
                table.status[backend][row_index]
    sections.extend(sorted(columns.items()))
    meta["enrichment"] = {
        "countries": list(table.countries),
        "registrars": list(table.registrars),
    }
    return PackedZone.from_bytes(_pack_file(meta, sections))


def pack_zone(zone: Union["ZoneStore", PackedZone]) -> PackedZone:
    """Pack a dict-backed store (idempotent on already-packed zones)."""
    if isinstance(zone, PackedZone):
        return zone
    builder = PackedZoneBuilder()
    for record in zone:
        builder.add(record)
    return builder.build()


def is_packed_file(path: PathLike) -> bool:
    """True when ``path`` starts with the packed-zone magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(8) == MAGIC
    except OSError:
        return False


def iter_names(records: Iterable[DNSRecord]) -> Iterator[Tuple[str, str, str, str]]:
    """Adapter: DNSRecord stream → builder row stream."""
    for record in records:
        yield record.name, record.ip, record.record_type, record.source
