"""Internationalized domain names: a from-scratch RFC 3492 punycode codec.

Homograph squatting (§3.1) leans on IDN homographs: a unicode domain such as
``fàcebook.com`` is registered as the A-label ``xn--fcebook-8va.com``.  The
paper's detector must translate between the two forms.  We implement the
Bootstring algorithm ourselves (encoder and decoder) rather than relying on
``str.encode("idna")`` so the substrate is self-contained; the test suite
cross-validates against the stdlib codec.
"""

from __future__ import annotations

from typing import List

# Bootstring parameters for Punycode (RFC 3492 §5).
BASE = 36
TMIN = 1
TMAX = 26
SKEW = 38
DAMP = 700
INITIAL_BIAS = 72
INITIAL_N = 128
DELIMITER = "-"

ACE_PREFIX = "xn--"


class IDNAError(ValueError):
    """Raised when a label cannot be encoded or decoded."""


def _adapt(delta: int, numpoints: int, firsttime: bool) -> int:
    """Bias adaptation function (RFC 3492 §6.1)."""
    delta = delta // DAMP if firsttime else delta // 2
    delta += delta // numpoints
    k = 0
    while delta > ((BASE - TMIN) * TMAX) // 2:
        delta //= BASE - TMIN
        k += BASE
    return k + (((BASE - TMIN + 1) * delta) // (delta + SKEW))


def _digit_to_char(digit: int) -> str:
    if 0 <= digit < 26:
        return chr(ord("a") + digit)
    if 26 <= digit < 36:
        return chr(ord("0") + digit - 26)
    raise IDNAError(f"invalid punycode digit {digit}")


def _char_to_digit(char: str) -> int:
    if "a" <= char <= "z":
        return ord(char) - ord("a")
    if "A" <= char <= "Z":
        return ord(char) - ord("A")
    if "0" <= char <= "9":
        return ord(char) - ord("0") + 26
    raise IDNAError(f"invalid punycode character {char!r}")


def punycode_encode(label: str) -> str:
    """Encode a unicode label to its punycode form (without the ACE prefix)."""
    basic: List[str] = [c for c in label if ord(c) < INITIAL_N]
    output: List[str] = list(basic)
    handled = len(basic)
    if handled:
        output.append(DELIMITER)

    n = INITIAL_N
    delta = 0
    bias = INITIAL_BIAS
    total = len(label)

    while handled < total:
        candidates = [ord(c) for c in label if ord(c) >= n]
        if not candidates:
            raise IDNAError("punycode encoding ran out of code points")
        m = min(candidates)
        delta += (m - n) * (handled + 1)
        if delta < 0:
            raise IDNAError("punycode delta overflow")
        n = m
        for char in label:
            code = ord(char)
            if code < n:
                delta += 1
                if delta == 0:
                    raise IDNAError("punycode delta overflow")
            elif code == n:
                q = delta
                k = BASE
                while True:
                    if k <= bias:
                        threshold = TMIN
                    elif k >= bias + TMAX:
                        threshold = TMAX
                    else:
                        threshold = k - bias
                    if q < threshold:
                        break
                    output.append(_digit_to_char(threshold + ((q - threshold) % (BASE - threshold))))
                    q = (q - threshold) // (BASE - threshold)
                    k += BASE
                output.append(_digit_to_char(q))
                bias = _adapt(delta, handled + 1, handled == len(basic))
                delta = 0
                handled += 1
        delta += 1
        n += 1

    return "".join(output)


def punycode_decode(encoded: str) -> str:
    """Decode a punycode label (without the ACE prefix) to unicode."""
    pos = encoded.rfind(DELIMITER)
    if pos > 0:
        output = list(encoded[:pos])
        encoded = encoded[pos + 1:]
    else:
        output = []
        if pos == 0:
            encoded = encoded[1:]
    for char in output:
        if ord(char) >= INITIAL_N:
            raise IDNAError("non-basic code point before delimiter")

    n = INITIAL_N
    i = 0
    bias = INITIAL_BIAS
    index = 0
    while index < len(encoded):
        old_i = i
        weight = 1
        k = BASE
        while True:
            if index >= len(encoded):
                raise IDNAError("truncated punycode input")
            digit = _char_to_digit(encoded[index])
            index += 1
            i += digit * weight
            if k <= bias:
                threshold = TMIN
            elif k >= bias + TMAX:
                threshold = TMAX
            else:
                threshold = k - bias
            if digit < threshold:
                break
            weight *= BASE - threshold
            k += BASE
        bias = _adapt(i - old_i, len(output) + 1, old_i == 0)
        n += i // (len(output) + 1)
        if n > 0x10FFFF:
            raise IDNAError("punycode code point out of range")
        i %= len(output) + 1
        output.insert(i, chr(n))
        i += 1

    return "".join(output)


def label_to_ascii(label: str) -> str:
    """Convert one label to its ASCII (A-label) form."""
    label = label.lower()
    if all(ord(c) < 128 for c in label):
        return label
    return ACE_PREFIX + punycode_encode(label)


def label_to_unicode(label: str) -> str:
    """Convert one label to its unicode (U-label) form."""
    label = label.lower()
    if label.startswith(ACE_PREFIX):
        return punycode_decode(label[len(ACE_PREFIX):])
    return label


def domain_to_ascii(domain: str) -> str:
    """Convert a full domain name to ASCII-compatible encoding."""
    return ".".join(label_to_ascii(label) for label in domain.split("."))


def domain_to_unicode(domain: str) -> str:
    """Convert a full domain name from ACE to its displayed unicode form."""
    return ".".join(label_to_unicode(label) for label in domain.split("."))


def is_idn(domain: str) -> bool:
    """True if any label of ``domain`` is an internationalized A-label."""
    return any(label.startswith(ACE_PREFIX) for label in domain.lower().split("."))
