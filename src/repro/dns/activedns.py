"""ActiveDNS-style snapshot serialization.

The ActiveDNS project publishes daily resolution dumps; each line carries a
queried name, the answer, and the probing seed.  We use a compact
tab-separated line format::

    <name>\t<ip>\t<type>\t<source>

so a synthetic snapshot can be written to disk once and re-loaded by every
benchmark without regenerating the world.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.dns.records import DNSRecord
from repro.dns.zone import ZoneStore
from repro.faults.errors import SnapshotCorruptError

PathLike = Union[str, Path]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_snapshot(records: Iterable[DNSRecord], path: PathLike) -> int:
    """Write records to ``path`` (gzip if it ends in .gz).  Returns count."""
    path = Path(path)
    count = 0
    with _open(path, "w") as handle:
        for record in records:
            handle.write(f"{record.name}\t{record.ip}\t{record.record_type}\t{record.source}\n")
            count += 1
    return count


def iter_snapshot(path: PathLike) -> Iterator[DNSRecord]:
    """Stream records from a snapshot file.

    Blank lines and ``#`` comments are skipped; a line with fewer than two
    tab-separated fields is a truncated/corrupt dump and raises
    :class:`SnapshotCorruptError` carrying the 1-based line number, so an
    interrupted ingest fails loudly instead of silently under-counting.
    """
    path = Path(path)
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 2:
                raise SnapshotCorruptError(
                    str(path), line_number,
                    detail=f"expected >= 2 tab-separated fields, got {len(parts)}")
            name, ip = parts[0], parts[1]
            record_type = parts[2] if len(parts) > 2 else "A"
            source = parts[3] if len(parts) > 3 else "zone"
            yield DNSRecord(name=name, ip=ip, record_type=record_type, source=source)


def load_snapshot(path: PathLike) -> ZoneStore:
    """Load a snapshot file into an indexed :class:`ZoneStore`."""
    return ZoneStore(iter_snapshot(path))
