"""DNS substrate: record model, zone store, punycode codec, snapshot format.

The paper consumes a snapshot of 224M (domain, IP) records from the ActiveDNS
project.  This package provides the equivalent machinery at configurable
scale: a record model (:mod:`repro.dns.records`), an indexed in-memory zone
store supporting the lookups the squatting detector needs
(:mod:`repro.dns.zone`), a from-scratch RFC 3492 punycode codec used for
internationalized domain names (:mod:`repro.dns.idna`), and a line-oriented
snapshot file format compatible with ActiveDNS-style dumps
(:mod:`repro.dns.activedns`).
"""

from repro.dns.activedns import load_snapshot, write_snapshot
from repro.dns.deltazone import (
    DeltaSegment,
    DeltaSegmentBuilder,
    SegmentedZone,
    compact,
    is_delta_file,
)
from repro.dns.idna import (
    IDNAError,
    domain_to_ascii,
    domain_to_unicode,
    punycode_decode,
    punycode_encode,
)
from repro.dns.records import DNSRecord, is_valid_hostname, registered_domain, split_domain
from repro.dns.zone import ZoneStore
from repro.dns.zonediff import (
    ADDED,
    CHANGED,
    REMOVED,
    RETAINED,
    DiffTable,
    apply_diff,
    diff_packed,
    diff_serial,
    diff_zones,
)

__all__ = [
    "ADDED",
    "CHANGED",
    "DNSRecord",
    "DeltaSegment",
    "DeltaSegmentBuilder",
    "DiffTable",
    "IDNAError",
    "REMOVED",
    "RETAINED",
    "SegmentedZone",
    "ZoneStore",
    "apply_diff",
    "compact",
    "diff_packed",
    "diff_serial",
    "diff_zones",
    "domain_to_ascii",
    "is_delta_file",
    "domain_to_unicode",
    "is_valid_hostname",
    "load_snapshot",
    "punycode_decode",
    "punycode_encode",
    "registered_domain",
    "split_domain",
    "write_snapshot",
]
