"""Append-only delta segments + LSM-style compaction over PZON snapshots.

A :class:`~repro.dns.packedzone.PackedZone` is immutable by design — the
content digest in its header is what the stage graph, the scan kernel,
and the serving layer all key on.  Streaming ingestion therefore never
mutates a snapshot: new registrations and removals accumulate in a
:class:`DeltaSegmentBuilder` and are sealed into small *delta segment*
files that reuse the PZON container byte-for-byte (interned name/core
blobs, offset columns, grouping indices), plus two extra sections
(``tomb_blob``/``tomb_off``) recording tombstoned names and a
``meta["delta"]`` block binding the segment to its base snapshot and
sequence number.  Old PZON readers open a delta file without knowing
what it is; the extra sections ride along like enrichment columns do.

**Tombstone semantics.**  A segment's payload is the *net* outcome of
its event span: an ordered dict of adds (a re-add of a name replaces in
place, exactly like ``ZoneStore.add``) and the set of every name that
experienced a remove inside the span — even if later re-added (the
re-add is then also in the net adds).  Replaying a segment against the
logical union is "tombstones first, then net adds in local order,
replacing in place when the name is still present and appending
otherwise".  This reproduces the final ordered-dict state of applying
the raw event sequence to a ``ZoneStore``, because removals never shift
other entries' positions and a name's final position is the insertion
time of its last continuous presence.  That equivalence is what makes
:func:`compact` byte-identical to packing the replayed union from
scratch — the Hypothesis property test in ``tests/test_deltazone.py``
hammers it with random event tapes.

**Read protocol.**  :class:`SegmentedZone` presents (base + ordered
deltas) as one logical zone with the ``ZoneStore`` lookup protocol:
iteration order is the union's insertion order, registered domains keep
union first-seen order, ``verify()`` checks every constituent file's
payload digest, and ``content_digest`` hashes the (base, delta...) chain
so the logical union is content-addressed without materializing it.

**Compaction policy.**  The streaming driver (``repro.stream``) seals a
segment every ``segment_events`` events and compacts every
``compact_every`` segments: :func:`compact` replays base + deltas into a
fresh :class:`PackedZoneBuilder`, yielding a new base snapshot whose
bytes equal a from-scratch pack of the union — so scan digests, serving
verdicts, and artifact-store keys all agree with a batch run.  See
DESIGN.md §14.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dns.packedzone import (
    PackedZone,
    PackedZoneBuilder,
    PackedZoneCorruptError,
    _pack_file,
    _unpack_meta,
)
from repro.dns.records import DNSRecord, split_domain
from repro.dns.zone import MISS

PathLike = Union[str, Path]


def _registered(name: str) -> str:
    core, tld = split_domain(name)
    return f"{core}.{tld}" if tld else core


class DeltaSegmentBuilder:
    """Accumulates one segment's worth of add/remove events.

    Local semantics mirror ``ZoneStore`` exactly: ``add_name`` on a
    present name replaces in place, ``remove_name`` drops it, and a
    later re-add appends at the end.  Every name that was removed at any
    point is tombstoned (deduped, first-removal order) so replay can
    drop the base's copy before applying the net adds.
    """

    def __init__(self) -> None:
        # name -> (ip, source, record_type); insertion-ordered net adds
        self._ops: Dict[str, Tuple[str, str, str]] = {}
        self._tombs: Dict[str, None] = {}
        self.events: int = 0

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def tombstones(self) -> List[str]:
        return list(self._tombs)

    def add_name(self, name: str, ip: str = "0.0.0.0",
                 source: str = "zone", record_type: str = "A") -> None:
        if not name:
            raise ValueError("DNS record requires a non-empty name")
        name = name.lower().rstrip(".")
        self._ops[name] = (ip, source, record_type)
        self.events += 1

    def remove_name(self, name: str) -> None:
        name = name.lower().rstrip(".")
        self._ops.pop(name, None)
        self._tombs.setdefault(name, None)
        self.events += 1

    def to_bytes(self, seq: int, base_digest: str) -> bytes:
        """Seal into a delta-segment file (a PZON file + tomb sections)."""
        builder = PackedZoneBuilder()
        for name, (ip, source, record_type) in self._ops.items():
            builder.add_name(name, ip=ip, source=source,
                             record_type=record_type)
        zone = PackedZone.from_bytes(builder.to_bytes())
        meta, sections = _unpack_meta(zone)
        tomb_blob = bytearray()
        tomb_off = [0]
        for name in self._tombs:
            tomb_blob.extend(name.encode("utf-8"))
            tomb_off.append(len(tomb_blob))
        sections.append(("tomb_blob", np.frombuffer(
            bytes(tomb_blob), dtype=np.uint8)))
        sections.append(("tomb_off", np.asarray(tomb_off, dtype=np.uint64)))
        meta["delta"] = {"seq": int(seq), "base": base_digest,
                         "tombstones": len(self._tombs)}
        return _pack_file(meta, sections)

    def build(self, seq: int, base_digest: str) -> "DeltaSegment":
        return DeltaSegment(PackedZone.from_bytes(
            self.to_bytes(seq, base_digest)))

    def write(self, path: PathLike, seq: int, base_digest: str) -> "DeltaSegment":
        data = self.to_bytes(seq, base_digest)
        with open(path, "wb") as handle:
            handle.write(data)
        return DeltaSegment(PackedZone.load(path))


class DeltaSegment:
    """One sealed delta-segment file: net adds (a PZON zone) + tombstones."""

    def __init__(self, zone: PackedZone) -> None:
        self.zone = zone
        meta = zone.delta_meta
        if meta is None:
            raise ValueError("not a delta segment (no delta meta block)")
        self.seq: int = int(meta["seq"])
        self.base_digest: str = meta["base"]
        blob = zone._sections["tomb_blob"]
        off = zone._sections["tomb_off"]
        self.tombstones: List[str] = [
            blob[int(off[i]):int(off[i + 1])].tobytes().decode("utf-8")
            for i in range(off.size - 1)
        ]

    @classmethod
    def load(cls, path: PathLike) -> "DeltaSegment":
        return cls(PackedZone.load(path))

    @classmethod
    def from_bytes(cls, data: bytes) -> "DeltaSegment":
        return cls(PackedZone.from_bytes(data))

    @property
    def content_digest(self) -> str:
        return self.zone.content_digest

    def verify(self) -> None:
        self.zone.verify()

    def save(self, path: PathLike) -> None:
        self.zone.save(path)

    def rows(self) -> Iterator[Tuple[str, str, str, str]]:
        """Net-add rows ``(name, ip, record_type, source)`` in local order."""
        zone = self.zone
        for rec_id in range(zone.n_records):
            yield (zone._name_at(rec_id), zone._ip_at(rec_id),
                   zone.record_types[int(zone.rec_type[rec_id])],
                   zone.sources[int(zone.rec_src[rec_id])])

    def __len__(self) -> int:
        return self.zone.n_records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeltaSegment(seq={self.seq}, adds={len(self)}, "
                f"tombstones={len(self.tombstones)})")


def is_delta_file(path: PathLike) -> bool:
    """True when ``path`` is a PZON file carrying a delta meta block."""
    try:
        return PackedZone.load(path).delta_meta is not None
    except (OSError, ValueError):
        return False


# ----------------------------------------------------------------------
# union replay (shared by SegmentedZone and compact)
# ----------------------------------------------------------------------

def _replay_union(base: PackedZone, deltas: Sequence[DeltaSegment],
                  ) -> Dict[str, Tuple[int, int]]:
    """The union as an ordered ``name -> (segment index, record id)`` map.

    Segment index 0 is the base; deltas follow in order.  Tombstones are
    applied before a delta's net adds; a net add of a still-present name
    replaces in place (dict assignment keeps position), otherwise it
    appends — exactly ``ZoneStore``'s ordered-dict behaviour under the
    raw event sequence.
    """
    union: Dict[str, Tuple[int, int]] = {}
    for rec_id in range(base.n_records):
        union[base._name_at(rec_id)] = (0, rec_id)
    for seg_idx, segment in enumerate(deltas, start=1):
        for name in segment.tombstones:
            union.pop(name, None)
        zone = segment.zone
        for rec_id in range(zone.n_records):
            union[zone._name_at(rec_id)] = (seg_idx, rec_id)
    return union


def compact(base: PackedZone, deltas: Sequence[DeltaSegment]) -> PackedZone:
    """Merge (base + ordered deltas) into a fresh base snapshot.

    Byte-identical to building one PZON snapshot from the replayed
    union: record order, registered-domain first-seen order, and every
    intern table match what a ``ZoneStore`` fed the same event sequence
    would pack to.
    """
    if not deltas:
        return base
    zones = [base] + [segment.zone for segment in deltas]
    builder = PackedZoneBuilder()
    for seg_idx, rec_id in _replay_union(base, deltas).values():
        zone = zones[seg_idx]
        builder.add_name(
            zone._name_at(rec_id), ip=zone._ip_at(rec_id),
            source=zone.sources[int(zone.rec_src[rec_id])],
            record_type=zone.record_types[int(zone.rec_type[rec_id])])
    return builder.build()


class SegmentedZone:
    """(base + ordered deltas) presented as one logical zone.

    Implements the ``ZoneStore`` read protocol over the logical union
    without materializing it as records: lookups resolve through a lazy
    name index into the owning segment's columns; iteration and
    ``registered_domains()`` follow union insertion / first-seen order,
    so digests over them match the compacted snapshot's.

    The scan-kernel plumbing (``n_cores``/``core_off``/``core_blob``)
    delegates to the *base* so a :class:`PackedScanContext` built over a
    segmented zone classifies arbitrary names with base-width matrices —
    the serving engine's ``classify_batch`` path is width-safe for any
    label length (overlong labels fall back to the Python classifier).
    """

    def __init__(self, base: PackedZone, deltas: Sequence[DeltaSegment],
                 strict: bool = True) -> None:
        self.base = base
        self.deltas = list(deltas)
        if strict:
            expected = base.content_digest
            for segment in self.deltas:
                if segment.base_digest != expected:
                    raise ValueError(
                        f"delta segment seq={segment.seq} was built against "
                        f"base {segment.base_digest[:12]}…, got "
                        f"{expected[:12]}…")
                # chained deltas may reference either the shared base or
                # the previous delta; we only pin the shared base here
        seqs = [segment.seq for segment in self.deltas]
        if seqs != sorted(seqs):
            raise ValueError(f"delta segments out of order: {seqs}")
        self._zones = [base] + [segment.zone for segment in self.deltas]
        self.fault_injector = None
        self._union: Optional[Dict[str, Tuple[int, int]]] = None
        self._regs: Optional[Dict[str, int]] = None
        self._overlay: Optional[Tuple[Dict[str, int], set]] = None

    # ------------------------------------------------------------------
    @classmethod
    def load_chain(cls, base_path: PathLike,
                   delta_paths: Sequence[PathLike],
                   strict: bool = True) -> "SegmentedZone":
        return cls(PackedZone.load(base_path),
                   [DeltaSegment.load(path) for path in delta_paths],
                   strict=strict)

    def paths(self) -> List[Path]:
        """Backing files (base first), spilling temp files as needed."""
        out = [self.base.ensure_file()]
        out.extend(segment.zone.ensure_file() for segment in self.deltas)
        return out

    @property
    def generation(self) -> int:
        """The newest constituent's publish generation."""
        if self.deltas:
            return self.deltas[-1].zone.generation
        return self.base.generation

    @property
    def content_digest(self) -> str:
        """Content digest of the *logical union* (chain of file digests).

        Two segmented zones with identical (base, delta...) constituents
        share a digest; the digest changes whenever any constituent
        does.  It deliberately does not equal the compacted snapshot's
        digest — this one is computable without replaying the union.
        """
        hasher = hashlib.sha256()
        hasher.update(b"segmented-zone\n")
        for zone in self._zones:
            hasher.update(zone.content_digest.encode("ascii"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def verify(self) -> None:
        """Verify every constituent file's payload digest.

        The union is a pure function of the constituent files, so
        per-file digests cover the logical union; a corrupt base or
        delta raises :class:`PackedZoneCorruptError`.
        """
        for zone in self._zones:
            zone.verify()

    @property
    def nbytes(self) -> int:
        return sum(zone.nbytes for zone in self._zones)

    # ------------------------------------------------------------------
    # lazy union indexes
    # ------------------------------------------------------------------
    def _names(self) -> Dict[str, Tuple[int, int]]:
        if self._union is None:
            self._union = _replay_union(self.base, self.deltas)
        return self._union

    def _registered_index(self) -> Dict[str, int]:
        """Registered domain -> live-name count, union first-seen order."""
        if self._regs is None:
            # derived from the final union map: tombstone bookkeeping
            # against arbitrary interleavings (a tombstone may target a
            # name the base never had, a reg may die and come back) all
            # collapses into "walk the union in order"
            regs: Dict[str, int] = {}
            for name in self._names():
                reg = _registered(name)
                if reg in regs:
                    regs[reg] += 1
                else:
                    regs[reg] = 1
            self._regs = regs
        return self._regs

    def _zone_record(self, ref: Tuple[int, int]) -> DNSRecord:
        seg_idx, rec_id = ref
        return self._zones[seg_idx].record_at(rec_id)

    # ------------------------------------------------------------------
    # ZoneStore read protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._names())

    def __iter__(self) -> Iterator[DNSRecord]:
        return (self._zone_record(ref) for ref in self._names().values())

    def __contains__(self, name: str) -> bool:
        return name.lower().rstrip(".") in self._names()

    def get(self, name: str) -> Optional[DNSRecord]:
        ref = self._names().get(name.lower().rstrip("."))
        return None if ref is None else self._zone_record(ref)

    def get_many(self, names: Iterable[str]) -> list:
        lookup = self._names().get
        out = []
        for name in names:
            ref = lookup(name.lower().rstrip("."))
            out.append(MISS if ref is None else self._zone_record(ref))
        return out

    def resolve(self, name: str, snapshot: int = 0,
                attempt: int = 0) -> Optional[DNSRecord]:
        if self.fault_injector is not None:
            self.fault_injector.check_dns(name.lower().rstrip("."),
                                          snapshot, attempt)
        return self.get(name)

    def has_registered_domain(self, registered: str) -> bool:
        return registered.lower() in self._registered_index()

    def registered_domains(self) -> Iterator[str]:
        return iter(self._registered_index())

    def names_under(self, registered: str) -> List[str]:
        registered = registered.lower()
        return sorted(name for name in self._names()
                      if _registered(name) == registered)

    def stats(self) -> Dict[str, int]:
        return {
            "records": len(self),
            "registered_domains": len(self._registered_index()),
            "core_labels": len({split_domain(reg)[0]
                                for reg in self._registered_index()}),
        }

    # ------------------------------------------------------------------
    # serving protocol (QueryEngine)
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.base.n_cores

    @property
    def core_off(self) -> np.ndarray:
        return self.base.core_off

    @property
    def core_blob(self) -> np.ndarray:
        return self.base.core_blob

    @property
    def has_enrichment(self) -> bool:
        # delta-added registrations have no enrichment rows; advertising
        # base enrichment would gather columns with out-of-range ids
        return False

    @property
    def enrichment_meta(self) -> None:
        return None

    def _overlay_ids(self) -> Tuple[Dict[str, int], set]:
        """(delta-added reg -> synthetic id, base regs dead in the union).

        Synthetic ids start at ``base.n_registered`` so they never
        collide with base ids; they are stable for a given chain (union
        first-seen order).
        """
        if self._overlay is None:
            base_regs = self.base._regs()
            added: Dict[str, int] = {}
            live = self._registered_index()
            for reg in live:
                if reg not in base_regs:
                    added[reg] = self.base.n_registered + len(added)
            dead = {reg for reg in base_regs if reg not in live}
            self._overlay = (added, dead)
        return self._overlay

    def registered_ids(self, names: Iterable[str]) -> np.ndarray:
        """Union membership ids: base fast path + per-chain overlay.

        Base members keep their base ids; registrations introduced by
        deltas get synthetic ids ``>= base.n_registered``; base
        registrations whose every name was tombstoned report ``-1``.
        """
        names = list(names)
        out = self.base.registered_ids(names)
        added, dead = self._overlay_ids()
        if not added and not dead:
            return out
        for i, name in enumerate(names):
            reg = _registered(name.lower().rstrip("."))
            overlay = added.get(reg)
            if overlay is not None:
                out[i] = overlay
            elif out[i] >= 0 and reg in dead:
                out[i] = -1
        return out

    def reopen(self) -> "SegmentedZone":
        return SegmentedZone.load_chain(
            self.base.ensure_file(),
            [segment.zone.ensure_file() for segment in self.deltas],
            strict=False)

    def compacted(self) -> PackedZone:
        """The union as one fresh base snapshot (see :func:`compact`)."""
        return compact(self.base, self.deltas)
