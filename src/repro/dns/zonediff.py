"""Vectorized PZON snapshot diffing: the longitudinal hot path.

The lifecycle analyses (squat survival, re-registration, weaponization)
consume *differences* between consecutive dated snapshots.  A dict-set
diff materializes every name of both snapshots as a Python string and
set-subtracts millions of them per pair; this module turns the diff into
a pure vectorized merge over the packed columns instead:

* record names are gathered from the interned ``name_blob`` into one
  fixed-width ``S``-dtype key column per snapshot (chunked gather, no
  per-record Python), stable-argsorted once, and hash-joined with a
  single ``searchsorted`` — names only in A are removals, names only in
  B are additions;
* records present in both snapshots compare IP / record-type / source as
  whole-column equality over the shared intern ids (rare non-canonical
  IPs — the ``extra_ips`` sidecar — fall back to a tiny Python loop over
  just the suspect rows);
* registered domains join the same way on reconstructed
  ``core.tld`` keys, and each common domain is flagged **changed** when
  any record beneath it was added, removed, or rewritten — derived with
  ``bincount`` scatters, never by walking domains.

The output is a columnar :class:`DiffTable`: one status byte per
registered domain of the union (retained / changed / added / removed) in
canonical order — A's first-seen order, then B-only domains in B's
first-seen order — plus the record-level patch ops, and a canonical
digest over the lot.  :func:`diff_serial` is the dict-set oracle: the
same table built from plain Python dicts, byte-identical digest, kept
forever as the equivalence baseline (DESIGN.md §15).

:func:`apply_diff` replays a table as a patch.  For *evolution pairs* —
B reachable from A by ZoneStore mutations that never re-add a name after
removing it (re-adds move the name to the end of the dict, which a
snapshot-level diff cannot observe) — ``apply_diff(a, diff)`` rebuilds
B's pack byte-identically.  The delta layer (DESIGN.md §14) carries
tombstone ordering for exactly the cases a snapshot diff cannot.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dns.packedzone import PackedZone, PackedZoneBuilder, pack_zone
from repro.dns.records import split_domain

# Domain statuses, in digest-canonical order.
RETAINED = 0
CHANGED = 1
ADDED = 2
REMOVED = 3

STATUS_NAMES = ("retained", "changed", "added", "removed")

# Rows per gather chunk: bounds the int64 index matrix to a few tens of
# MB at any realistic name width while keeping the Python loop at
# ~16 iterations per million records.
_GATHER_CHUNK = 65_536

RecordOp = Tuple[str, str, str, str]        # name, ip, record_type, source


class DiffTable:
    """Columnar two-snapshot diff: one status byte per union domain.

    ``reg_keys`` holds every registered domain of the union as
    NUL-padded fixed-width bytes (A's first-seen order, then B-only
    domains in B's first-seen order); ``status`` is the parallel
    status column.  Record-level patch ops ride along as small Python
    lists — they scale with churn, not snapshot size.
    """

    def __init__(self, reg_keys: np.ndarray, status: np.ndarray,
                 removed_names: List[str],
                 changed_records: List[RecordOp],
                 added_records: List[RecordOp]) -> None:
        if reg_keys.shape != status.shape:
            raise ValueError("reg_keys and status must be parallel columns")
        self.reg_keys = reg_keys
        self.status = status
        self.removed_names = removed_names
        self.changed_records = changed_records
        self.added_records = added_records
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[str, int]],
                  removed_names: List[str],
                  changed_records: List[RecordOp],
                  added_records: List[RecordOp]) -> "DiffTable":
        """Build from decoded ``(domain, status)`` rows (the oracle path).

        The key width is the maximum encoded domain length over the
        table — a pure function of the content, so the vectorized kernel
        lands on the same width and the same bytes.
        """
        encoded = [domain.encode("utf-8") for domain, _ in rows]
        width = max((len(raw) for raw in encoded), default=1) or 1
        reg_keys = np.array(encoded, dtype=np.dtype(f"S{width}")) \
            if encoded else np.zeros(0, dtype=np.dtype(f"S{width}"))
        status = np.fromiter((status for _, status in rows),
                             dtype=np.uint8, count=len(rows))
        return cls(reg_keys, status, removed_names,
                   changed_records, added_records)

    # ------------------------------------------------------------------
    @property
    def n_domains(self) -> int:
        return int(self.status.size)

    @property
    def width(self) -> int:
        return self.reg_keys.dtype.itemsize

    def counts(self) -> Dict[str, int]:
        """Domain tally per status (plus the record-op tallies)."""
        tally = np.bincount(self.status, minlength=4)
        out = {name: int(tally[code])
               for code, name in enumerate(STATUS_NAMES)}
        out["records_removed"] = len(self.removed_names)
        out["records_changed"] = len(self.changed_records)
        out["records_added"] = len(self.added_records)
        return out

    def domain_at(self, i: int) -> str:
        return bytes(self.reg_keys[i]).decode("utf-8")

    def domains(self) -> Iterator[Tuple[str, int]]:
        """Decoded ``(domain, status)`` rows in canonical order."""
        for i in range(self.n_domains):
            yield self.domain_at(i), int(self.status[i])

    def domains_with_status(self, status: int) -> List[str]:
        """Decoded domains carrying ``status`` — churn-sized for
        everything but RETAINED."""
        rows = np.nonzero(self.status == status)[0]
        return [self.domain_at(int(i)) for i in rows]

    # ------------------------------------------------------------------
    @property
    def digest(self) -> str:
        """Canonical content digest over the status column and patch ops.

        Hashes the raw key/status bytes (width is content-determined,
        see :meth:`from_rows`), so the kernel never decodes a retained
        domain just to digest it.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            hasher.update(b"zone-diff\n")
            hasher.update(
                f"domains:{self.n_domains}|width:{self.width}\n".encode())
            hasher.update(self.reg_keys.tobytes())
            hasher.update(self.status.tobytes())
            for name in self.removed_names:
                hasher.update(f"-|{name}\n".encode("utf-8"))
            for op in self.changed_records:
                hasher.update(f"~|{'|'.join(op)}\n".encode("utf-8"))
            for op in self.added_records:
                hasher.update(f"+|{'|'.join(op)}\n".encode("utf-8"))
            self._digest = hasher.hexdigest()
        return self._digest


# ----------------------------------------------------------------------
# fixed-width key columns (shared by both join levels)
# ----------------------------------------------------------------------

def _record_key_width(zone: PackedZone) -> int:
    """Longest record-name byte length (the join key width)."""
    if zone.n_records == 0:
        return 1
    lens = np.diff(zone.name_off.astype(np.int64))
    return max(int(lens.max()), 1)


def _record_name_keys(zone: PackedZone, width: int) -> np.ndarray:
    """Every record name as one NUL-padded ``S{width}`` key, record order.

    Chunked blob gather: the index matrix is rebuilt per chunk so its
    footprint stays bounded while the fill itself is whole-column numpy.
    """
    n = zone.n_records
    keys = np.zeros(n, dtype=np.dtype(f"S{width}"))
    if n == 0:
        return keys
    out = keys.view(np.uint8).reshape(n, width)
    off = zone.name_off.astype(np.int64)
    lens = np.diff(off)
    blob = zone.name_blob
    cols = np.arange(width, dtype=np.int64)
    for start in range(0, n, _GATHER_CHUNK):
        stop = min(start + _GATHER_CHUNK, n)
        idx = off[start:stop, None] + cols[None, :]
        np.minimum(idx, blob.size - 1, out=idx)
        gathered = blob[idx]
        mask = cols[None, :] < lens[start:stop, None]
        out[start:stop][mask] = gathered[mask]
    return keys


def _reg_key_width(zone: PackedZone) -> int:
    """Longest registered-domain ("core.tld") byte length."""
    if zone.n_registered == 0:
        return 1
    core_lens = np.diff(zone.core_off.astype(np.int64))
    tld_lens = np.array(
        [len(tld.encode("utf-8")) + 1 if tld else 0 for tld in zone.tlds],
        dtype=np.int64)
    total = core_lens[zone.reg_core.astype(np.int64)]
    if tld_lens.size:
        total = total + tld_lens[zone.reg_tld.astype(np.int64)]
    return max(int(total.max()), 1)


def _reg_name_keys(zone: PackedZone, width: int) -> np.ndarray:
    """Every registered domain as one ``S{width}`` key, first-seen order.

    The core label gathers from ``core_blob`` exactly like the record
    keys; the (few, interned) TLDs scatter in behind a ``"."`` from a
    small padded matrix.
    """
    n = zone.n_registered
    keys = np.zeros(n, dtype=np.dtype(f"S{width}"))
    if n == 0:
        return keys
    out = keys.view(np.uint8).reshape(n, width)
    core = zone.reg_core.astype(np.int64)
    core_off = zone.core_off.astype(np.int64)
    core_lens = np.diff(core_off)[core]
    blob = zone.core_blob
    cols = np.arange(width, dtype=np.int64)
    for start in range(0, n, _GATHER_CHUNK):
        stop = min(start + _GATHER_CHUNK, n)
        idx = core_off[core[start:stop], None] + cols[None, :]
        np.minimum(idx, max(blob.size - 1, 0), out=idx)
        gathered = blob[idx] if blob.size else np.zeros(
            (stop - start, width), dtype=np.uint8)
        mask = cols[None, :] < core_lens[start:stop, None]
        out[start:stop][mask] = gathered[mask]

    tld_bytes = [b"." + tld.encode("utf-8") if tld else b""
                 for tld in zone.tlds]
    max_tld = max((len(raw) for raw in tld_bytes), default=0)
    if max_tld:
        tld_matrix = np.zeros((len(tld_bytes), max_tld), dtype=np.uint8)
        for i, raw in enumerate(tld_bytes):
            tld_matrix[i, :len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        tld_lens = np.array([len(raw) for raw in tld_bytes], dtype=np.int64)
        tcols = np.arange(max_tld, dtype=np.int64)
        tld_ids = zone.reg_tld.astype(np.int64)
        for start in range(0, n, _GATHER_CHUNK):
            stop = min(start + _GATHER_CHUNK, n)
            ids = tld_ids[start:stop]
            dest = core_lens[start:stop, None] + tcols[None, :]
            valid = tcols[None, :] < tld_lens[ids, None]
            rows = np.broadcast_to(
                np.arange(start, stop, dtype=np.int64)[:, None], dest.shape)
            out[rows[valid], dest[valid]] = tld_matrix[ids][valid]
    return keys


def _join(a_keys: np.ndarray, b_keys: np.ndarray):
    """Sorted hash-join of two unique-key columns.

    Returns ``(common_a, common_b, only_a, only_b)`` — id arrays into
    the respective columns; the common pairs come back in B order, the
    "only" arrays in their own column's order.
    """
    if a_keys.size == 0:
        nothing = np.zeros(0, dtype=np.int64)
        return (nothing, nothing, nothing,
                np.arange(b_keys.size, dtype=np.int64))
    order = np.argsort(a_keys, kind="stable").astype(np.int64)
    a_sorted = a_keys[order]
    pos = np.searchsorted(a_sorted, b_keys)
    np.minimum(pos, a_sorted.size - 1, out=pos)
    hit = a_sorted[pos] == b_keys if b_keys.size else \
        np.zeros(0, dtype=bool)
    common_b = np.nonzero(hit)[0].astype(np.int64)
    common_a = order[pos[common_b]]
    matched = np.zeros(a_keys.size, dtype=bool)
    matched[common_a] = True
    only_a = np.nonzero(~matched)[0].astype(np.int64)
    only_b = np.nonzero(~hit)[0].astype(np.int64)
    return common_a, common_b, only_a, only_b


def _shared_ids(a_table: Sequence[str], b_table: Sequence[str]):
    """Remap two small intern tables onto one shared id space."""
    shared: Dict[str, int] = {}
    for value in a_table:
        shared.setdefault(value, len(shared))
    for value in b_table:
        shared.setdefault(value, len(shared))
    a_map = np.array([shared[v] for v in a_table] or [0], dtype=np.int64)
    b_map = np.array([shared[v] for v in b_table] or [0], dtype=np.int64)
    return a_map, b_map


def _extra_mask(zone: PackedZone) -> Optional[np.ndarray]:
    if not zone.extra_ips:
        return None
    mask = np.zeros(zone.n_records, dtype=bool)
    mask[np.fromiter(zone.extra_ips.keys(), dtype=np.int64,
                     count=len(zone.extra_ips))] = True
    return mask


def _record_tuple(zone: PackedZone, rec_id: int) -> RecordOp:
    return (zone._name_at(rec_id), zone._ip_at(rec_id),
            zone.record_types[int(zone.rec_type[rec_id])],
            zone.sources[int(zone.rec_src[rec_id])])


# ----------------------------------------------------------------------
# the vectorized kernel
# ----------------------------------------------------------------------

def diff_packed(a: PackedZone, b: PackedZone) -> DiffTable:
    """Diff two packed snapshots with searchsorted hash-joins.

    Byte-identical (``DiffTable.digest`` equality) to
    :func:`diff_serial` on every input — the bench asserts it at every
    leg, the CI smoke job on every series pair.
    """
    # -- record level: names only in A / only in B / in both ----------
    rec_width = max(_record_key_width(a), _record_key_width(b))
    a_keys = _record_name_keys(a, rec_width)
    b_keys = _record_name_keys(b, rec_width)
    common_a, common_b, only_a, only_b = _join(a_keys, b_keys)

    # -- common records: whole-column equality over shared ids --------
    type_a, type_b = _shared_ids(a.record_types, b.record_types)
    src_a, src_b = _shared_ids(a.sources, b.sources)
    if common_a.size:
        equal = (a.rec_ip[common_a] == b.rec_ip[common_b]) \
            & (type_a[a.rec_type[common_a].astype(np.int64)]
               == type_b[b.rec_type[common_b].astype(np.int64)]) \
            & (src_a[a.rec_src[common_a].astype(np.int64)]
               == src_b[b.rec_src[common_b].astype(np.int64)])
        # non-canonical IPs collapse to rec_ip == 0; recheck just those
        a_extra, b_extra = _extra_mask(a), _extra_mask(b)
        if a_extra is not None or b_extra is not None:
            either = np.zeros(common_a.size, dtype=bool)
            if a_extra is not None:
                either |= a_extra[common_a]
            if b_extra is not None:
                either |= b_extra[common_b]
            for row in np.nonzero(equal & either)[0]:
                if a._ip_at(int(common_a[row])) != b._ip_at(int(common_b[row])):
                    equal[row] = False
        changed_rows = np.nonzero(~equal)[0]
        # patch ops carry A record order; the join returned B order
        changed_rows = changed_rows[
            np.argsort(common_a[changed_rows], kind="stable")]
        changed_a = common_a[changed_rows]
        changed_b = common_b[changed_rows]
    else:
        changed_a = changed_b = np.zeros(0, dtype=np.int64)

    removed_names = [a._name_at(int(i)) for i in only_a]
    changed_records = [_record_tuple(b, int(i)) for i in changed_b]
    added_records = [_record_tuple(b, int(i)) for i in only_b]

    # -- registered-domain level --------------------------------------
    reg_width = max(_reg_key_width(a), _reg_key_width(b))
    a_regs = _reg_name_keys(a, reg_width)
    b_regs = _reg_name_keys(b, reg_width)
    reg_common_a, reg_common_b, reg_only_a, reg_only_b = _join(a_regs, b_regs)

    # a common domain is "changed" iff any record beneath it moved:
    # scatter the record-op rows onto per-domain flags with bincount
    touched_a = np.zeros(a.n_registered, dtype=bool)
    if only_a.size:
        touched_a |= np.bincount(a.rec_reg[only_a].astype(np.int64),
                                 minlength=a.n_registered) > 0
    if changed_a.size:
        touched_a |= np.bincount(a.rec_reg[changed_a].astype(np.int64),
                                 minlength=a.n_registered) > 0
    touched_b = np.zeros(b.n_registered, dtype=bool)
    if only_b.size:
        touched_b |= np.bincount(b.rec_reg[only_b].astype(np.int64),
                                 minlength=b.n_registered) > 0

    status_a = np.full(a.n_registered, RETAINED, dtype=np.uint8)
    status_a[reg_only_a] = REMOVED
    if reg_common_a.size:
        pair_changed = touched_a[reg_common_a] | touched_b[reg_common_b]
        status_a[reg_common_a[pair_changed]] = CHANGED

    # canonical table order: A first-seen, then B-only in B first-seen.
    # reg_width is the exact union-wide maximum (a common domain's
    # length counts on both sides), so this is already from_rows' width.
    reg_keys = np.concatenate([a_regs, b_regs[reg_only_b]])
    status = np.concatenate([
        status_a,
        np.full(reg_only_b.size, ADDED, dtype=np.uint8),
    ])
    return DiffTable(reg_keys, status, removed_names,
                     changed_records, added_records)


# ----------------------------------------------------------------------
# the dict-set oracle
# ----------------------------------------------------------------------

def _zone_rows(zone) -> Dict[str, Tuple[str, str, str]]:
    """``name -> (ip, record_type, source)`` in record order.

    Accepts anything iterable of :class:`DNSRecord` — ``ZoneStore``,
    ``PackedZone``, ``SegmentedZone`` — so the oracle stays format-blind.
    """
    rows: Dict[str, Tuple[str, str, str]] = {}
    for record in zone:
        rows[record.name] = (record.ip, record.record_type, record.source)
    return rows


def _registered_of(name: str) -> str:
    core, tld = split_domain(name)
    return f"{core}.{tld}" if tld else core


def diff_serial(a, b) -> DiffTable:
    """The dict-set baseline: plain Python dicts and set membership.

    Kept as the forever-oracle for :func:`diff_packed` — identical
    :class:`DiffTable` content and digest, at dict speed.
    """
    a_rows = _zone_rows(a)
    b_rows = _zone_rows(b)

    removed_names = [name for name in a_rows if name not in b_rows]
    changed_records = [(name, *b_rows[name]) for name in a_rows
                       if name in b_rows and a_rows[name] != b_rows[name]]
    added_records = [(name, *b_rows[name]) for name in b_rows
                     if name not in a_rows]

    a_regs: Dict[str, None] = {}
    for name in a_rows:
        a_regs.setdefault(_registered_of(name), None)
    b_regs: Dict[str, None] = {}
    for name in b_rows:
        b_regs.setdefault(_registered_of(name), None)

    touched = {_registered_of(name) for name in removed_names}
    touched.update(_registered_of(op[0]) for op in changed_records)
    touched.update(_registered_of(op[0]) for op in added_records)

    rows: List[Tuple[str, int]] = []
    for reg in a_regs:
        if reg not in b_regs:
            rows.append((reg, REMOVED))
        elif reg in touched:
            rows.append((reg, CHANGED))
        else:
            rows.append((reg, RETAINED))
    for reg in b_regs:
        if reg not in a_regs:
            rows.append((reg, ADDED))
    return DiffTable.from_rows(rows, removed_names,
                               changed_records, added_records)


# ----------------------------------------------------------------------
# patching
# ----------------------------------------------------------------------

def apply_diff(a: PackedZone, diff: DiffTable) -> PackedZone:
    """Replay a diff as a patch: survivors in place, additions appended.

    Reconstructs B byte-identically (``pack`` digest equality) whenever
    B is an evolution of A that never re-adds a removed name — the
    ordered-dict position of such a re-add is information a
    snapshot-level diff does not carry (the delta layer's tombstones
    do; see DESIGN.md §14 vs §15).
    """
    removed = set(diff.removed_names)
    changed: Dict[str, Tuple[str, str, str]] = {
        name: (ip, rtype, source)
        for name, ip, rtype, source in diff.changed_records}
    builder = PackedZoneBuilder()
    for rec_id in range(a.n_records):
        name = a._name_at(rec_id)
        if name in removed:
            continue
        rewrite = changed.get(name)
        if rewrite is not None:
            ip, rtype, source = rewrite
        else:
            ip = a._ip_at(rec_id)
            rtype = a.record_types[int(a.rec_type[rec_id])]
            source = a.sources[int(a.rec_src[rec_id])]
        builder.add_name(name, ip=ip, record_type=rtype, source=source)
    for name, ip, rtype, source in diff.added_records:
        builder.add_name(name, ip=ip, record_type=rtype, source=source)
    return builder.build()


def diff_zones(a, b) -> DiffTable:
    """Dispatch: packed kernel when both sides are packed, else oracle."""
    if isinstance(a, PackedZone) and isinstance(b, PackedZone):
        return diff_packed(a, b)
    return diff_serial(a, b)
