"""Indexed in-memory DNS zone store.

The squatting detector needs three kinds of lookup over the snapshot:

* exact name membership (for enumerable squat candidates: typo, bits,
  homograph),
* lookup of all names sharing a *core label* regardless of TLD (wrongTLD),
* a scan interface over (core label, tld) pairs (combo squatting cannot be
  enumerated, so the detector scans the zone once and pattern-matches).

``ZoneStore`` maintains those indices incrementally and is the only DNS data
structure the rest of the system touches.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dns.records import DNSRecord, split_domain

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector


class ZoneMiss:
    """Typed miss marker for bulk lookups (:data:`MISS` is the singleton).

    ``get_many`` callers iterate thousands-deep result lists where most
    entries are hits; a typed falsy marker lets them write ``if not
    record`` without conflating a miss with a legitimately-falsy value,
    and keeps batched server lookups of never-registered names on the
    vectorized path instead of raising per name.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "MISS"


MISS = ZoneMiss()


class ZoneStore:
    """A snapshot of DNS records with the indices squat detection needs."""

    def __init__(self, records: Optional[Iterable[DNSRecord]] = None) -> None:
        self._records: Dict[str, DNSRecord] = {}
        # registered domain -> set of full names under it
        self._by_registered: Dict[str, Set[str]] = defaultdict(set)
        # core label -> set of registered domains with that label
        self._by_core: Dict[str, Set[str]] = defaultdict(set)
        # when set, live lookups via resolve() can fail like a resolver does
        self.fault_injector: Optional["FaultInjector"] = None
        if records is not None:
            for record in records:
                self.add(record)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, record: DNSRecord) -> None:
        """Insert a record, replacing any prior record for the same name."""
        self._records[record.name] = record
        registered = record.registered_domain
        self._by_registered[registered].add(record.name)
        core, _tld = split_domain(registered)
        self._by_core[core].add(registered)

    def add_name(self, name: str, ip: str = "0.0.0.0", source: str = "zone") -> DNSRecord:
        """Convenience: build and insert a record for ``name``."""
        record = DNSRecord(name=name, ip=ip, source=source)
        self.add(record)
        return record

    def remove(self, name: str) -> bool:
        """Remove a record by name.  Returns True if it was present."""
        name = name.lower().rstrip(".")
        record = self._records.pop(name, None)
        if record is None:
            return False
        registered = record.registered_domain
        names = self._by_registered.get(registered)
        if names is not None:
            names.discard(name)
            if not names:
                del self._by_registered[registered]
                core, _tld = split_domain(registered)
                cores = self._by_core.get(core)
                if cores is not None:
                    cores.discard(registered)
                    if not cores:
                        del self._by_core[core]
        return True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name.lower().rstrip(".") in self._records

    def __iter__(self) -> Iterator[DNSRecord]:
        return iter(self._records.values())

    def get(self, name: str) -> Optional[DNSRecord]:
        """Return the record for ``name`` or None."""
        return self._records.get(name.lower().rstrip("."))

    def get_many(self, names: Iterable[str]) -> list:
        """Bulk :meth:`get` — one list pass, no per-call dispatch.

        Unknown names yield the typed (falsy) :data:`MISS` marker rather
        than None, so bulk consumers can tell "never registered" apart
        from any future nullable record field with an identity check.
        Feeds the enrichment resolver's fast path, where three of the
        four backends probe zone membership for thousands of names.
        """
        get = self._records.get
        return [get(name.lower().rstrip("."), MISS) for name in names]

    def resolve(self, name: str, snapshot: int = 0,
                attempt: int = 0) -> Optional[DNSRecord]:
        """Look up ``name`` as a *live* DNS query.

        Unlike :meth:`get` (an index read over the snapshot), resolve
        models asking a resolver on the network: when a fault injector is
        installed, the query may raise
        :class:`~repro.faults.errors.DNSFault` (SERVFAIL or timeout)
        instead of answering.  Used by resilience-aware callers (monitor,
        pipeline); detector scans keep using the indices directly.
        """
        if self.fault_injector is not None:
            self.fault_injector.check_dns(name.lower().rstrip("."),
                                          snapshot, attempt)
        return self.get(name)

    def has_registered_domain(self, registered: str) -> bool:
        """True if any record lives under the registrable domain."""
        return registered.lower() in self._by_registered

    def names_under(self, registered: str) -> List[str]:
        """All full names recorded under a registrable domain."""
        return sorted(self._by_registered.get(registered.lower(), ()))

    def registered_domains(self) -> Iterator[str]:
        """Iterate over distinct registrable domains in the snapshot."""
        return iter(self._by_registered.keys())

    def registered_domains_with_core(self, core: str) -> List[str]:
        """All registrable domains whose core label equals ``core``."""
        return sorted(self._by_core.get(core.lower(), ()))

    def core_labels(self) -> Iterator[Tuple[str, Set[str]]]:
        """Iterate (core label, registered domains) pairs for scanning."""
        return iter(self._by_core.items())

    def stats(self) -> Dict[str, int]:
        """Summary counts used by reporting code."""
        return {
            "records": len(self._records),
            "registered_domains": len(self._by_registered),
            "core_labels": len(self._by_core),
        }
