"""DNS record model and domain-name helpers.

A record in the ActiveDNS-style snapshot is essentially a ``(domain, ip)``
pair plus a little metadata.  The squatting detector (§3.1 of the paper)
matches against the *registered domain* — the label directly under the public
suffix — and "ignores sub-domains", so the helpers here implement that split.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Tuple

# Top-level domains known to the synthetic world.  This doubles as the public
# suffix list for :func:`split_domain`.  Multi-label suffixes cover the
# country-code second-level registrations the paper's examples use
# (e.g. ``goofle.com.ua``, ``gooogle.com.uy``).
KNOWN_TLDS: Tuple[str, ...] = (
    # multi-label suffixes must come first so the longest suffix wins
    "com.ua", "com.uy", "com.br", "com.au", "co.uk", "co.jp", "com.cn",
    "gov.uk", "ac.uk", "org.uk", "us.army.mil", "army.mil",
    "com", "net", "org", "info", "biz", "io", "co", "us", "uk", "de", "fr",
    "gov", "edu", "mil",
    "nl", "ru", "jp", "cn", "in", "it", "es", "pl", "br", "au", "ca", "ch",
    "se", "no", "eu", "ie", "at", "be", "dk", "fi", "gr", "pt", "cz", "ro",
    "hu", "ua", "tr", "mx", "ar", "cl", "pe", "za", "kr", "tw", "hk", "sg",
    "my", "th", "vn", "id", "ph", "nz", "il", "ae", "sa",
    # new gTLDs and squat-friendly TLDs from the paper's examples
    "pw", "tk", "ml", "ga", "cf", "gq", "top", "xyz", "online", "site",
    "club", "shop", "store", "tech", "space", "website", "live", "life",
    "world", "today", "link", "click", "bid", "win", "download", "stream",
    "loan", "men", "date", "racing", "party", "review", "trade", "webcam",
    "audi", "mobi", "app", "dev", "page", "cloud", "email", "center",
    "support", "services", "solutions", "systems", "network", "digital",
    "agency", "expert", "guru", "money", "cash", "finance", "bank", "pro",
)

_LDH_LABEL_RE = re.compile(r"^(?!-)[a-z0-9-]{1,63}(?<!-)$")


@dataclass(frozen=True)
class DNSRecord:
    """One resolution record from a DNS snapshot.

    Attributes:
        name: fully-qualified domain name, lowercase ASCII (A-labels for IDNs).
        ip: IPv4 address string the name resolved to.
        record_type: DNS record type; the snapshot holds ``A`` records.
        source: which probing seed produced the record (e.g. ``com-zone``,
            ``alexa-1m``, ``blacklist``), mirroring ActiveDNS's seed lists.
    """

    name: str
    ip: str
    record_type: str = "A"
    source: str = "zone"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("DNS record requires a non-empty name")
        object.__setattr__(self, "name", self.name.lower().rstrip("."))

    @property
    def registered_domain(self) -> str:
        """The registrable part of :attr:`name` (label + public suffix)."""
        return registered_domain(self.name)

    @property
    def core_label(self) -> str:
        """The label directly under the public suffix (squat-matching unit)."""
        core, _tld = split_domain(self.name)
        return core

    @property
    def tld(self) -> str:
        """The public suffix of :attr:`name`."""
        _core, tld = split_domain(self.name)
        return tld


def split_domain(name: str) -> Tuple[str, str]:
    """Split ``name`` into (core label, public suffix), ignoring subdomains.

    ``mail.google-app.de`` → ``("google-app", "de")``.  Unknown suffixes fall
    back to the last label, so the function is total.
    """
    return _split_normalized(name.lower().rstrip("."))


@lru_cache(maxsize=1 << 17)
def _split_normalized(name: str) -> Tuple[str, str]:
    # memoized: zone indexing and the squat scan both split every
    # registered domain they see, usually the same small working set;
    # the suffix loop is pure so caching cannot change results
    labels = name.split(".")
    if len(labels) == 1:
        return name, ""
    for suffix in KNOWN_TLDS:
        suffix_labels = suffix.split(".")
        if len(labels) > len(suffix_labels) and labels[-len(suffix_labels):] == suffix_labels:
            return labels[-len(suffix_labels) - 1], suffix
    return labels[-2], labels[-1]


def registered_domain(name: str) -> str:
    """Return the registrable domain of ``name`` (core label + suffix)."""
    core, tld = split_domain(name)
    if not tld:
        return core
    return f"{core}.{tld}"


def is_valid_hostname(name: str) -> bool:
    """Check LDH (letter-digit-hyphen) validity of an ASCII hostname."""
    name = name.lower().rstrip(".")
    if not name or len(name) > 253:
        return False
    return all(_LDH_LABEL_RE.match(label) for label in name.split("."))


@dataclass
class WhoisRecord:
    """Registration metadata for a domain, as returned by a whois lookup."""

    domain: str
    registration_year: int
    registrar: Optional[str] = None
    extra: dict = field(default_factory=dict)
