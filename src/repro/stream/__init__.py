"""Always-on streaming ingestion: event tape → delta segments → scan."""

from repro.stream.driver import (  # noqa: F401
    StreamOutcome,
    StreamStats,
    StreamingDriver,
)
