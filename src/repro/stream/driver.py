"""The streaming driver: ingest → delta-scan → (conditional compact).

This is the refactor's top layer — the loop that turns the one-shot
batch pipeline into an always-on incremental feed while keeping every
byte of the batch run's output contract:

* an :class:`~repro.phishworld.events.EventTapeConfig` yields a
  deterministic tape; a prefix builds the initial base snapshot and the
  rest streams through in fixed-size event windows;
* each window seals into a delta segment
  (:class:`~repro.dns.deltazone.DeltaSegmentBuilder`) and is scanned
  *alone* — scan work per flush is proportional to the delta, not the
  base — with the cached :class:`DetectorMatrices` reused across
  segments by forcing the base snapshot's label width;
* every ``compact_every`` segments the deltas fold into a new base
  (:func:`~repro.dns.deltazone.compact`) and the driver asserts the
  streaming match state is byte-identical to a from-scratch batch scan
  of the compacted union — the determinism contract, checked live at
  every compaction boundary;
* each segment runs through the content-addressed stage graph
  (``ingest`` → ``delta_scan``) under its own per-segment run id, so a
  killed driver resumes by loading cached per-segment artifacts from the
  :class:`~repro.stages.store.ArtifactStore` instead of re-scanning;
* when a :class:`~repro.serve.publisher.SnapshotPublisher` is attached,
  the base publishes first (so sealed deltas bind to the *stamped* base
  digest) and every segment publishes as a chain generation — the
  serving layer picks up new registrations between compactions via its
  existing hot-reload poll.

Latency accounting is sim-clock only: an ``add`` event's detection
latency is (segment flush time − event time), where the flush advances
the shared :class:`~repro.faults.clock.SimClock` to the window's last
event.  Events/sec is host wall clock.  Both are throughput metadata —
neither feeds a digest.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.dns.deltazone import (
    DeltaSegment,
    DeltaSegmentBuilder,
    SegmentedZone,
    _registered,
    compact,
)
from repro.dns.packedzone import PackedZone, pack_zone
from repro.faults.clock import SimClock
from repro.phishworld.events import (
    EventTapeConfig,
    ZoneEvent,
    apply_event,
    build_tape,
    digest_tape,
    replay_into_store,
)
from repro.serve.loadgen import percentile
from repro.squatting import packedscan
from repro.squatting.packedscan import PackedScanContext, packed_scan
from repro.stages.artifacts import digest_packed_zone, digest_squat_matches
from repro.stages.graph import Stage, StageGraph
from repro.stages.runner import StageRunner
from repro.stages.store import ArtifactStore

PathLike = Union[str, Path]


@dataclass
class StreamStats:
    """One streaming run's accounting (throughput metadata only)."""

    events: int = 0                 # streamed events (excludes base build)
    base_events: int = 0
    adds: int = 0
    removals: int = 0
    segments: int = 0
    cached_segments: int = 0        # segments loaded from the artifact store
    compactions: int = 0
    digest_checks: int = 0          # streaming-vs-batch equality assertions
    detections: int = 0             # newly matched registrations
    live_records: int = 0
    live_matches: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)  # sim seconds
    kernel_rows: int = 0            # rows seen by the packed-scan kernel
    fallbacks: Dict[str, int] = field(default_factory=dict)

    def merge_kernel(self, kernel) -> None:
        """Fold one packed scan's :class:`KernelStats` in (None = cached
        segment or dict-backed scan: contributes nothing)."""
        if kernel is None:
            return
        self.kernel_rows += kernel.rows
        for reason, count in kernel.fallbacks.items():
            if count:
                self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count

    @property
    def events_per_sec(self) -> float:
        return self.events / max(self.wall_seconds, 1e-9)

    @property
    def latency_p50(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def latency_p95(self) -> float:
        return percentile(self.latencies, 95)

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events, "base_events": self.base_events,
            "adds": self.adds, "removals": self.removals,
            "segments": self.segments,
            "cached_segments": self.cached_segments,
            "compactions": self.compactions,
            "digest_checks": self.digest_checks,
            "detections": self.detections,
            "live_records": self.live_records,
            "live_matches": self.live_matches,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "latency_p50_s": round(self.latency_p50, 4),
            "latency_p95_s": round(self.latency_p95, 4),
            "kernel_rows": self.kernel_rows,
            "fallbacks": dict(sorted(self.fallbacks.items())),
        }


@dataclass
class StreamOutcome:
    """What one driver run produced."""

    base: PackedZone                # newest base snapshot
    pending: List[DeltaSegment]     # deltas not yet folded into the base
    matches: List                   # live matches, union first-seen order
    match_digest: str
    tape_digest: str
    stats: StreamStats
    interrupted: bool = False


class StreamingDriver:
    """Drives one event tape through ingest → delta-scan → compact.

    The driver is restartable at segment granularity: give it a
    persistent :class:`ArtifactStore` and a killed run's completed
    segments replay from cache (``stats.cached_segments`` counts them),
    landing on the same bytes a never-killed run produces.
    """

    def __init__(self, detector, tape_config: Optional[EventTapeConfig] = None,
                 *, base_events: int = 400, segment_events: int = 120,
                 compact_every: int = 4, workers: int = 1,
                 delta_dir: Optional[PathLike] = None,
                 store: Optional[ArtifactStore] = None,
                 publisher=None, perf=None,
                 clock: Optional[SimClock] = None,
                 stream_id: str = "stream",
                 verify: bool = False) -> None:
        if segment_events <= 0:
            raise ValueError("segment_events must be positive")
        if compact_every <= 0:
            raise ValueError("compact_every must be positive")
        self.detector = detector
        self.tape_config = tape_config or EventTapeConfig()
        self.base_events = int(base_events)
        self.segment_events = int(segment_events)
        self.compact_every = int(compact_every)
        self.workers = int(workers)
        self.delta_dir = Path(delta_dir) if delta_dir is not None else None
        self.store = store if store is not None else ArtifactStore()
        self.publisher = publisher
        self.perf = perf
        self.clock = clock if clock is not None else SimClock()
        self.stream_id = stream_id
        self.verify = bool(verify)

        # streaming state (rebuilt by run())
        self._base: Optional[PackedZone] = None
        self._segments: List[DeltaSegment] = []
        self._union: Dict[str, None] = {}       # live names, ZoneStore order
        self._reg_count: Dict[str, int] = {}    # registered -> live names
        self._match_index: Dict[str, object] = {}   # registered -> SquatMatch
        self._width: Optional[int] = None

    # ------------------------------------------------------------------
    # union bookkeeping (ordered-dict semantics == ZoneStore)
    # ------------------------------------------------------------------
    def _ingest_event(self, event: ZoneEvent, stats: StreamStats) -> None:
        name = event.name.lower().rstrip(".")
        reg = _registered(name)
        if event.kind == "add":
            if name not in self._union:
                self._union[name] = None
                self._reg_count[reg] = self._reg_count.get(reg, 0) + 1
            stats.adds += 1
            return
        if name in self._union:
            del self._union[name]
            left = self._reg_count[reg] - 1
            if left:
                self._reg_count[reg] = left
            else:
                del self._reg_count[reg]
                # the registration is gone from the union: its verdict
                # must not survive into the next boundary digest
                self._match_index.pop(reg, None)
        stats.removals += 1

    def current_matches(self) -> List:
        """Live matches in the union's registered first-seen order.

        This is the order a batch scan over the compacted union emits,
        so ``digest_squat_matches`` over it is directly comparable."""
        seen: Set[str] = set()
        ordered: List = []
        for name in self._union:
            reg = _registered(name)
            if reg in seen:
                continue
            seen.add(reg)
            match = self._match_index.get(reg)
            if match is not None:
                ordered.append(match)
        return ordered

    # ------------------------------------------------------------------
    # per-segment stage graph
    # ------------------------------------------------------------------
    def _run_segment(self, seq: int, events: Sequence[ZoneEvent],
                     stats: StreamStats) -> bytes:
        base_digest = self._base.content_digest
        detector, workers, width = self.detector, self.workers, self._width

        def ingest(_inputs, _ctx):
            builder = DeltaSegmentBuilder()
            for event in events:
                apply_event(builder, event)
            return {"segment_bytes": builder.to_bytes(seq, base_digest)}

        def delta_scan(inputs, _ctx):
            segment = DeltaSegment.from_bytes(inputs["segment_bytes"])
            if segment.zone.n_records == 0:
                return {"segment_matches": []}
            matches = packed_scan(
                detector, segment.zone, workers=workers, width=width)
            # cached segments never reach here, so kernel accounting only
            # charges scans that actually ran
            stats.merge_kernel(packedscan.take_last_scan_stats())
            return {"segment_matches": matches}

        graph = StageGraph([
            Stage(name="ingest", compute=ingest,
                  outputs=("segment_bytes",),
                  digesters={"segment_bytes": lambda data: digest_packed_zone(
                      PackedZone.from_bytes(data))}),
            Stage(name="delta_scan", compute=delta_scan,
                  inputs=("segment_bytes",),
                  outputs=("segment_matches",),
                  digesters={"segment_matches": digest_squat_matches}),
        ])
        run_id = f"{self.stream_id}-seg-{seq:05d}"
        context = hashlib.sha256(
            f"{base_digest}\n{self._tape_digest}\n{seq}".encode()).hexdigest()
        previous = None
        try:
            candidate = self.store.load_manifest(run_id)
            if candidate.context_digest == context:
                previous = candidate
        except KeyError:
            pass
        runner = StageRunner(graph, store=self.store, run_id=run_id,
                             previous=previous, perf=self.perf,
                             clock=self.clock, context_digest=context)
        outcome = runner.run()
        if all(record.cached for record in outcome.manifest.records.values()):
            stats.cached_segments += 1
        seg_bytes = outcome.artifacts["segment_bytes"].payload
        seg_matches = outcome.artifacts["segment_matches"].payload
        self._absorb_matches(seg_matches, events, stats)
        return seg_bytes

    def _absorb_matches(self, seg_matches, events: Sequence[ZoneEvent],
                        stats: StreamStats) -> None:
        """Fold a segment's scan results into the live match index and
        charge sim-clock detection latency for newly matched regs."""
        flush_at = self.clock.now()
        newly: Set[str] = set()
        for match in seg_matches:
            reg = match.domain
            if reg not in self._reg_count:
                continue        # tombstoned inside the same window
            if reg not in self._match_index:
                newly.add(reg)
            self._match_index[reg] = match
        counted: Set[str] = set()
        for event in events:
            if event.kind != "add":
                continue
            reg = _registered(event.name.lower().rstrip("."))
            if reg in newly and reg not in counted:
                counted.add(reg)
                stats.latencies.append(flush_at - event.at)
        stats.detections += len(newly)

    # ------------------------------------------------------------------
    # compaction boundary
    # ------------------------------------------------------------------
    def _compact(self, stats: StreamStats) -> None:
        if self.verify:
            # re-check payload digests + chain binding (ascending seqs,
            # every segment sealed against this base) before folding
            SegmentedZone(self._base, self._segments).verify()
        compacted = compact(self._base, self._segments)
        batch = packed_scan(self.detector, compacted, workers=self.workers)
        stats.merge_kernel(packedscan.take_last_scan_stats())
        streaming = self.current_matches()
        stream_digest = digest_squat_matches(streaming)
        batch_digest = digest_squat_matches(batch)
        stats.digest_checks += 1
        if stream_digest != batch_digest:
            raise RuntimeError(
                f"determinism contract broken at compaction boundary: "
                f"streaming match digest {stream_digest[:12]}… != batch "
                f"{batch_digest[:12]}… ({len(streaming)} vs {len(batch)} "
                f"matches)")
        stats.compactions += 1
        self._segments = []
        self._install_base(compacted)

    def _install_base(self, zone: PackedZone) -> None:
        if self.publisher is not None:
            # publish first, reopen from the published file: sealed
            # deltas must bind to the digest readers actually see
            _generation, path = self.publisher.publish(zone)
            zone = PackedZone.load(path)
        if self.verify:
            zone.verify()
        self._base = zone
        width = PackedScanContext(self.detector, zone).width
        self._width = width if self._width is None else max(self._width, width)

    # ------------------------------------------------------------------
    def run(self, limit_segments: Optional[int] = None) -> StreamOutcome:
        """Stream the whole tape; returns the final state and accounting.

        ``limit_segments`` stops after that many segments without the
        final compaction — the kill/resume harness's mid-stream crash.
        """
        stats = StreamStats()
        tape = build_tape(self.tape_config)
        self._tape_digest = digest_tape(tape)
        base_tape = tape[:self.base_events]
        stream_tape = tape[self.base_events:]
        stats.base_events = len(base_tape)

        # base snapshot: a plain batch build over the tape prefix
        self._union.clear()
        self._reg_count.clear()
        self._match_index.clear()
        self._segments = []
        self._width = None
        for event in base_tape:
            self._ingest_event(event, stats)
        stats.adds = stats.removals = 0     # base build is not streaming
        self._install_base(pack_zone(replay_into_store(base_tape)))
        if base_tape:
            self.clock.advance_to(base_tape[-1].at)
        for match in packed_scan(self.detector, self._base,
                                 workers=self.workers, width=self._width):
            self._match_index[match.domain] = match
        stats.merge_kernel(packedscan.take_last_scan_stats())

        interrupted = False
        started = time.perf_counter()
        seq = 0
        for start in range(0, len(stream_tape), self.segment_events):
            if limit_segments is not None and seq >= limit_segments:
                interrupted = True
                break
            seq += 1
            window = stream_tape[start:start + self.segment_events]
            for event in window:
                self._ingest_event(event, stats)
            self.clock.advance_to(window[-1].at)
            seg_bytes = self._run_segment(seq, window, stats)
            segment = DeltaSegment.from_bytes(seg_bytes)
            if self.verify:
                segment.verify()
            self._segments.append(segment)
            stats.events += len(window)
            stats.segments += 1
            if self.delta_dir is not None:
                self.delta_dir.mkdir(parents=True, exist_ok=True)
                (self.delta_dir / f"seg-{seq:05d}.pzon").write_bytes(seg_bytes)
            if self.publisher is not None:
                self.publisher.publish_delta(seg_bytes)
            if seq % self.compact_every == 0:
                self._compact(stats)
        if self._segments and not interrupted:
            self._compact(stats)
        stats.wall_seconds = time.perf_counter() - started

        matches = self.current_matches()
        stats.live_records = len(self._union)
        stats.live_matches = len(matches)
        if self.perf is not None and hasattr(self.perf, "record_streaming"):
            self.perf.record_streaming(stats)
        return StreamOutcome(
            base=self._base, pending=list(self._segments),
            matches=matches, match_digest=digest_squat_matches(matches),
            tape_digest=self._tape_digest, stats=stats,
            interrupted=interrupted)
