"""OCR substrate: bitmap font, template-matching engine, spell checker.

Stands in for Tesseract in the paper's pipeline (§5.1): the classifier's key
features come from text recovered *from the page screenshot*, which survives
HTML-level obfuscation.  The engine does real recognition work — segmenting
the raster into glyph cells and matching each against the font's templates —
with a configurable confusion/noise model so downstream spell-correction
(§5.2, "passwod" → "password") has something to do.
"""

from repro.ocr.font import FONT, GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap, render_text
from repro.ocr.engine import OCREngine, OCRResult
from repro.ocr.spellcheck import SpellChecker, damerau_levenshtein

__all__ = [
    "FONT",
    "GLYPH_HEIGHT",
    "GLYPH_WIDTH",
    "OCREngine",
    "OCRResult",
    "SpellChecker",
    "damerau_levenshtein",
    "glyph_bitmap",
    "render_text",
]
