"""A 5×7 bitmap font shared by the renderer and the OCR engine.

Each glyph is a 7-row × 5-column binary matrix, given here as row strings
("#" = ink).  The renderer stamps these into page rasters; the OCR engine
uses the same set as matching templates (with noise between them, so
recognition is non-trivial but honest).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

GLYPH_WIDTH = 5
GLYPH_HEIGHT = 7
GLYPH_SPACING = 1  # blank columns between glyphs

_GLYPH_ROWS: Dict[str, tuple] = {
    "a": ("     ", "     ", " ### ", "    #", " ####", "#   #", " ####"),
    "b": ("#    ", "#    ", "#### ", "#   #", "#   #", "#   #", "#### "),
    "c": ("     ", "     ", " ####", "#    ", "#    ", "#    ", " ####"),
    "d": ("    #", "    #", " ####", "#   #", "#   #", "#   #", " ####"),
    "e": ("     ", "     ", " ### ", "#   #", "#####", "#    ", " ### "),
    "f": ("  ## ", " #   ", "#### ", " #   ", " #   ", " #   ", " #   "),
    "g": ("     ", " ####", "#   #", "#   #", " ####", "    #", " ### "),
    "h": ("#    ", "#    ", "#### ", "#   #", "#   #", "#   #", "#   #"),
    "i": ("  #  ", "     ", " ##  ", "  #  ", "  #  ", "  #  ", " ### "),
    "j": ("   # ", "     ", "  ## ", "   # ", "   # ", "#  # ", " ##  "),
    "k": ("#    ", "#    ", "#  # ", "# #  ", "##   ", "# #  ", "#  # "),
    "l": (" ##  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    "m": ("     ", "     ", "## # ", "# # #", "# # #", "# # #", "# # #"),
    "n": ("     ", "     ", "#### ", "#   #", "#   #", "#   #", "#   #"),
    "o": ("     ", "     ", " ### ", "#   #", "#   #", "#   #", " ### "),
    "p": ("     ", "     ", "#### ", "#   #", "#### ", "#    ", "#    "),
    "q": ("     ", "     ", " ####", "#   #", " ####", "    #", "    #"),
    "r": ("     ", "     ", "# ## ", "##   ", "#    ", "#    ", "#    "),
    "s": ("     ", "     ", " ####", "#    ", " ### ", "    #", "#### "),
    "t": (" #   ", " #   ", "#### ", " #   ", " #   ", " #   ", "  ## "),
    "u": ("     ", "     ", "#   #", "#   #", "#   #", "#   #", " ####"),
    "v": ("     ", "     ", "#   #", "#   #", "#   #", " # # ", "  #  "),
    "w": ("     ", "     ", "#   #", "#   #", "# # #", "# # #", " # # "),
    "x": ("     ", "     ", "#   #", " # # ", "  #  ", " # # ", "#   #"),
    "y": ("     ", "     ", "#   #", "#   #", " ####", "    #", " ### "),
    "z": ("     ", "     ", "#####", "   # ", "  #  ", " #   ", "#####"),
    "0": (" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "),
    "1": ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    "2": (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    "3": (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    "4": ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    "5": ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    "6": ("  ## ", " #   ", "#    ", "#### ", "#   #", "#   #", " ### "),
    "7": ("#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "),
    "8": (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    "9": (" ### ", "#   #", "#   #", " ####", "    #", "   # ", " ##  "),
    "-": ("     ", "     ", "     ", " ### ", "     ", "     ", "     "),
    "_": ("     ", "     ", "     ", "     ", "     ", "     ", "#####"),
    ".": ("     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "),
    ",": ("     ", "     ", "     ", "     ", " ##  ", " ##  ", "#    "),
    ":": ("     ", " ##  ", " ##  ", "     ", " ##  ", " ##  ", "     "),
    "!": ("  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "),
    "?": (" ### ", "#   #", "    #", "   # ", "  #  ", "     ", "  #  "),
    "@": (" ### ", "#   #", "# ###", "# # #", "# ###", "#    ", " ### "),
    "$": ("  #  ", " ####", "# #  ", " ### ", "  # #", "#### ", "  #  "),
    "/": ("    #", "    #", "   # ", "  #  ", " #   ", "#    ", "#    "),
    "'": ("  #  ", "  #  ", "     ", "     ", "     ", "     ", "     "),
    "(": ("   # ", "  #  ", " #   ", " #   ", " #   ", "  #  ", "   # "),
    ")": (" #   ", "  #  ", "   # ", "   # ", "   # ", "  #  ", " #   "),
    "&": (" ##  ", "#  # ", "#  # ", " ##  ", "# # #", "#  # ", " ## #"),
    "+": ("     ", "  #  ", "  #  ", "#####", "  #  ", "  #  ", "     "),
    "=": ("     ", "     ", "#####", "     ", "#####", "     ", "     "),
    "*": ("     ", "# # #", " ### ", "#####", " ### ", "# # #", "     "),
    "%": ("##  #", "##  #", "   # ", "  #  ", " #   ", "#  ##", "#  ##"),
    " ": ("     ", "     ", "     ", "     ", "     ", "     ", "     "),
}

FONT: Dict[str, "np.ndarray"] = {
    char: np.array([[1 if cell == "#" else 0 for cell in row] for row in rows], dtype=np.uint8)
    for char, rows in _GLYPH_ROWS.items()
}

SUPPORTED_CHARS = frozenset(FONT)


def glyph_bitmap(char: str) -> Optional["np.ndarray"]:
    """Glyph matrix for a character (case-folded); None if unsupported."""
    return FONT.get(char.lower())


def normalize_for_font(text: str) -> str:
    """Map text onto the font's repertoire.

    Accented characters render as their base letters (a synthetic-renderer
    approximation: at 5×7 the diacritic is sub-pixel); anything else
    unsupported becomes a space.
    """
    import unicodedata

    out = []
    for char in text.lower():
        if char in SUPPORTED_CHARS:
            out.append(char)
            continue
        decomposed = unicodedata.normalize("NFKD", char)
        base = next((c for c in decomposed if c in SUPPORTED_CHARS), None)
        out.append(base if base is not None else " ")
    return "".join(out)


def render_text(text: str) -> "np.ndarray":
    """Render a single text line to a GLYPH_HEIGHT-tall binary strip."""
    text = normalize_for_font(text)
    if not text:
        return np.zeros((GLYPH_HEIGHT, 0), dtype=np.uint8)
    columns = len(text) * (GLYPH_WIDTH + GLYPH_SPACING) - GLYPH_SPACING
    strip = np.zeros((GLYPH_HEIGHT, columns), dtype=np.uint8)
    x = 0
    for char in text:
        strip[:, x:x + GLYPH_WIDTH] = FONT[char]
        x += GLYPH_WIDTH + GLYPH_SPACING
    return strip
