"""Damerau-Levenshtein spell checker for OCR output repair (§5.2).

Tesseract-style errors ("passwod", "passw0rd") are corrected against a
dictionary of the keywords the classifier cares about: form vocabulary,
brand names, and frequent ground-truth phishing terms.  Correction is
conservative — a word is only rewritten when a dictionary entry lies within
a small edit distance and the word itself is out-of-dictionary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# Core lexicon: form/credential vocabulary that the paper's features key on.
DEFAULT_LEXICON: Tuple[str, ...] = (
    "account", "address", "alert", "bank", "billing", "card", "cash",
    "confirm", "continue", "credit", "customer", "debit", "email",
    "enter", "forgot", "free", "help", "home", "login", "logon", "member",
    "mobile", "money", "name", "number", "online", "page", "password",
    "pay", "payment", "phone", "pin", "please", "prize", "register",
    "reset", "secure", "security", "sign", "signin", "submit", "support",
    "transfer", "update", "username", "verify", "wallet", "welcome",
    "winner", "your",
)


def damerau_levenshtein(a: str, b: str, cap: Optional[int] = None) -> int:
    """Edit distance with transpositions (optimal string alignment).

    ``cap`` allows early exit: once every entry of a row exceeds the cap the
    function returns ``cap + 1``.
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if cap is not None and abs(la - lb) > cap:
        return cap + 1
    previous2: List[int] = []
    previous = list(range(lb + 1))
    for i in range(1, la + 1):
        current = [i] + [0] * lb
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if (
                i > 1 and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                current[j] = min(current[j], previous2[j - 2] + 1)
        if cap is not None and min(current) > cap:
            return cap + 1
        previous2, previous = previous, current
    return previous[lb]


class SpellChecker:
    """Dictionary-based corrector with length-bucketed candidate lookup.

    Correction is a pure function of (word, dictionary), so an optional
    word-level memo (:meth:`enable_memo`) caches corrections without
    changing output; OCR noise recycles the same garbled forms across
    pages, making the memo the single biggest win of the capture cache.
    The memo is cleared whenever the dictionary grows.
    """

    def __init__(
        self,
        lexicon: Iterable[str] = DEFAULT_LEXICON,
        max_distance: int = 1,
        min_word_length: int = 4,
        legacy: bool = False,
    ) -> None:
        """``legacy=True`` searches by scanning every length-adjacent
        bucket (the reference path); the default uses a single-deletion
        index, which returns the identical correction — see
        :meth:`_search_indexed`."""
        self.max_distance = max_distance
        self.min_word_length = min_word_length
        self.legacy = legacy
        self._words: Set[str] = set()
        self._by_length: Dict[int, List[str]] = defaultdict(list)
        # deletion-form -> [(length, rank, word)]: every word is filed
        # under itself and each of its single-character deletions
        self._deletions: Dict[str, List[Tuple[int, int, str]]] = defaultdict(list)
        self._memo: Optional[Dict[str, str]] = None
        self._stats = None
        for word in lexicon:
            self.add_word(word)

    def enable_memo(self, stats=None) -> None:
        """Memoize per-word corrections, counting into ``stats`` if given.

        ``stats`` is a :class:`~repro.perf.report.CacheStats`; only its
        ``spell_hits``/``spell_misses`` counters are touched.
        """
        if self._memo is None:
            self._memo = {}
        self._stats = stats

    def add_word(self, word: str) -> None:
        word = word.lower()
        if word and word not in self._words:
            self._words.add(word)
            bucket = self._by_length[len(word)]
            entry = (len(word), len(bucket), word)
            bucket.append(word)
            for form in self._deletion_forms(word):
                self._deletions[form].append(entry)
            if self._memo:
                # dictionary changed: memoized corrections may be stale
                self._memo.clear()

    @staticmethod
    def _deletion_forms(word: str) -> Set[str]:
        return {word} | {word[:i] + word[i + 1:] for i in range(len(word))}

    def add_words(self, words: Iterable[str]) -> None:
        for word in words:
            self.add_word(word)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._words

    def correct_word(self, word: str) -> str:
        """Return the corrected word, or the word unchanged."""
        lowered = word.lower()
        if lowered in self._words or len(lowered) < self.min_word_length:
            return lowered
        if self._memo is not None:
            cached = self._memo.get(lowered)
            if cached is not None:
                if self._stats is not None:
                    self._stats.spell_hits += 1
                return cached
            if self._stats is not None:
                self._stats.spell_misses += 1
        corrected = self._search(lowered)
        if self._memo is not None:
            self._memo[lowered] = corrected
        return corrected

    def _search(self, lowered: str) -> str:
        if not self.legacy and self.max_distance == 1:
            return self._search_indexed(lowered)
        return self._search_reference(lowered)

    def _search_indexed(self, lowered: str) -> str:
        """Deletion-index search, byte-identical to the reference scan.

        Every optimal-string-alignment edit at distance 1 (deletion,
        insertion, substitution, transposition) leaves the query and the
        dictionary word sharing a member of ``{word} ∪ single-deletions``,
        so the index lookup yields a superset of the true matches.
        Candidates are replayed in the reference scan's order — length
        ascending, then bucket insertion order — and the first one whose
        verified distance is 1 wins, exactly as the bucket scan's
        early return picks it.
        """
        candidates: Set[Tuple[int, int, str]] = set()
        for form in self._deletion_forms(lowered):
            candidates.update(self._deletions.get(form, ()))
        for _, _, candidate in sorted(candidates):
            if damerau_levenshtein(lowered, candidate, cap=1) == 1:
                return candidate
        return lowered

    def _search_reference(self, lowered: str) -> str:
        """Reference length-bucket scan (the pre-index hot path)."""
        best: Optional[str] = None
        best_distance = self.max_distance + 1
        for length in range(len(lowered) - self.max_distance,
                            len(lowered) + self.max_distance + 1):
            for candidate in self._by_length.get(length, ()):
                distance = damerau_levenshtein(lowered, candidate, cap=self.max_distance)
                if distance < best_distance:
                    best_distance = distance
                    best = candidate
                    if distance == 1:
                        # distance 0 is impossible here (not in dictionary)
                        return best
        return best if best is not None else lowered

    def correct_text(self, text: str) -> str:
        """Correct each whitespace-separated token of ``text``."""
        return " ".join(self.correct_word(token) for token in text.split())
