"""Template-matching OCR engine over bitmap-font rasters.

The engine plays Tesseract's role in §5.1.  It performs genuine recognition
work in three stages, mirroring a classical OCR pipeline:

1. **line segmentation** — find horizontal ink bands;
2. **cell segmentation** — split each band into glyph-pitch cells, detecting
   word gaps from blank columns;
3. **template matching** — score each cell against every font glyph
   (normalized pixel agreement) and emit the best match.

A configurable noise model perturbs a small fraction of glyph cells before
matching, reproducing Tesseract's ~3% character error rate and its
characteristic confusions ("password" → "passwod"), which the spell-check
stage (§5.2) then repairs.  Noise is deterministic per raster content.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ocr.font import FONT, GLYPH_HEIGHT, GLYPH_SPACING, GLYPH_WIDTH

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector

_CELL_PITCH = GLYPH_WIDTH + GLYPH_SPACING

# Pairs that the noise model may swap (classic OCR confusions).
CONFUSION_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("o", "0"), ("l", "1"), ("i", "l"), ("s", "5"), ("e", "c"),
    ("n", "m"), ("u", "v"), ("r", "n"), ("b", "h"), ("g", "q"),
)
_CONFUSION_MAP: Dict[str, str] = {}
for _a, _b in CONFUSION_PAIRS:
    _CONFUSION_MAP.setdefault(_a, _b)
    _CONFUSION_MAP.setdefault(_b, _a)


def _runs_at_least(ink: "np.ndarray", length: int, axis: int) -> "np.ndarray":
    """Mask of pixels lying on a straight ink run of >= ``length`` cells.

    Morphological opening with a 1-D structuring element.  Two cumulative
    sums replace the ``2 × length`` rolled-copy reductions the reference
    opening used: a trailing window is fully inked iff its count equals
    ``length`` (erosion), and a pixel survives dilation iff any eroded
    seed lies in its forward window.  The rolled version's wrap-around
    never contributed — the wrapped erosion rows are zeroed and wrapped
    dilation windows only ever reach those zeroed rows — so the masks
    are identical.
    """
    if ink.shape[axis] < length:
        return np.zeros_like(ink)
    flat = np.moveaxis(ink, axis, 0)
    n = flat.shape[0]
    counts = np.cumsum(flat != 0, axis=0, dtype=np.int32)
    window = counts[length - 1:].copy()
    window[1:] -= counts[:n - length]
    eroded = np.zeros(flat.shape, dtype=ink.dtype)
    eroded[length - 1:] = window == length
    seeds = np.cumsum(eroded[::-1], axis=0, dtype=np.int32)[::-1]
    ahead = np.zeros(flat.shape, dtype=np.int32)
    ahead[:n - length] = seeds[length:]
    return np.moveaxis((seeds - ahead > 0).astype(ink.dtype), 0, axis)


def _runs_at_least_reference(ink: "np.ndarray", length: int,
                             axis: int) -> "np.ndarray":
    """Reference rolled-copy opening (the pre-cumsum hot path)."""
    if ink.shape[axis] < length:
        return np.zeros_like(ink)
    windows = [np.roll(ink, shift, axis=axis) for shift in range(length)]
    eroded = np.minimum.reduce(windows)
    # zero out the wrap-around region introduced by roll
    if axis == 0:
        eroded[:length - 1, :] = 0
    else:
        eroded[:, :length - 1] = 0
    dilations = [np.roll(eroded, -shift, axis=axis) for shift in range(length)]
    return np.maximum.reduce(dilations)


def remove_form_lines(ink: "np.ndarray", legacy: bool = False) -> "np.ndarray":
    """Strip form-field borders and rules before recognition.

    Classical OCR preprocessing: glyphs in the 5×7 font never produce a
    horizontal run longer than ``GLYPH_WIDTH`` or a vertical run longer than
    ``GLYPH_HEIGHT``, so longer straight runs are box borders / separators
    and are erased.  ``legacy`` selects the reference rolled-copy opening;
    the cleaned raster is identical either way.
    """
    if legacy:
        horizontal = _runs_at_least_reference(ink, GLYPH_WIDTH + 2, axis=1)
        vertical = _runs_at_least_reference(ink, GLYPH_HEIGHT + 2, axis=0)
        cleaned = ink.copy()
        cleaned[(horizontal | vertical) > 0] = 0
        return cleaned
    # runs live entirely inside the ink bounding box, so scanning only
    # that window (most rasters are largely margin) changes nothing
    rows = np.flatnonzero(ink.any(axis=1))
    cleaned = ink.copy()
    if len(rows) == 0:
        return cleaned
    cols = np.flatnonzero(ink.any(axis=0))
    window = ink[rows[0]:rows[-1] + 1, cols[0]:cols[-1] + 1]
    horizontal = _runs_at_least(window, GLYPH_WIDTH + 2, axis=1)
    vertical = _runs_at_least(window, GLYPH_HEIGHT + 2, axis=0)
    cleaned[rows[0]:rows[-1] + 1, cols[0]:cols[-1] + 1][
        (horizontal | vertical) > 0] = 0
    return cleaned


@dataclass
class OCRResult:
    """Recognized text plus diagnostics."""

    text: str
    lines: List[str] = field(default_factory=list)
    mean_confidence: float = 1.0
    cells_scanned: int = 0

    def words(self) -> List[str]:
        return [w for w in self.text.split() if w]


class OCREngine:
    """Recognize text from a (H, W) uint8 grayscale raster."""

    #: noise multiplier applied to rasters the fault injector garbles —
    #: models Tesseract melting down on a page (bad DPI, font fallback)
    GARBLE_NOISE_SCALE = 12.0

    def __init__(self, error_rate: float = 0.03, drop_rate: float = 0.002,
                 fault_injector: Optional["FaultInjector"] = None,
                 legacy: bool = False) -> None:
        """
        Args:
            error_rate: probability a recognized character is replaced by a
                confusion-pair partner (Tesseract-like ~3%).
            drop_rate: probability a character is dropped entirely.
            fault_injector: optional deterministic fault source; rasters it
                selects are recognized with heavily amplified noise.
            legacy: decode bands cell by cell (the reference hot path)
                instead of the batched whole-band template match.  Output
                is byte-identical either way.
        """
        self.error_rate = error_rate
        self.drop_rate = drop_rate
        self.fault_injector = fault_injector
        self.legacy = legacy
        chars = [char for char in FONT if char != " "]
        self._template_chars = chars
        # (T, H*W) stacked template matrix for vectorized matching
        self._template_matrix = np.stack(
            [FONT[char].astype(np.int16).ravel() for char in chars]
        )
        # for the batched decode: templates and ink cells are 0/1, so
        # |cell - template| sums to cell·1 + template·1 - 2·(cell @ template)
        # — one small matmul instead of a (cells × T × H*W) broadcast
        self._template_float = self._template_matrix.astype(np.float64)
        self._template_mass = self._template_float.sum(axis=1)

    # ------------------------------------------------------------------
    def recognize(self, pixels: "np.ndarray") -> OCRResult:
        """Run the full segmentation + matching pipeline."""
        ink = (pixels < 128).astype(np.int16)
        ink = remove_form_lines(ink, legacy=self.legacy)
        lines: List[str] = []
        confidences: List[float] = []
        cells = 0
        digest = hashlib.sha256(pixels.tobytes()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        noise_scale = 1.0
        if self.fault_injector is not None and self.fault_injector.check_ocr(digest.hex()):
            noise_scale = self.GARBLE_NOISE_SCALE
        for top, bottom in self._segment_lines(ink):
            band = ink[top:bottom, :]
            text, band_conf, band_cells = self._recognize_band(band, rng, noise_scale)
            cells += band_cells
            if text.strip():
                lines.append(text.strip())
                confidences.extend(band_conf)
        text = "\n".join(lines)
        mean_conf = float(np.mean(confidences)) if confidences else 0.0
        return OCRResult(text=text, lines=lines, mean_confidence=mean_conf, cells_scanned=cells)

    # ------------------------------------------------------------------
    # segmentation
    # ------------------------------------------------------------------
    @staticmethod
    def _segment_lines(ink: "np.ndarray") -> List[Tuple[int, int]]:
        """Find maximal horizontal bands containing ink."""
        row_ink = ink.sum(axis=1)
        bands: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for y, amount in enumerate(row_ink):
            if amount > 0 and start is None:
                start = y
            elif amount == 0 and start is not None:
                bands.append((start, y))
                start = None
        if start is not None:
            bands.append((start, len(row_ink)))
        # merge bands separated by a single blank row (glyph descenders)
        merged: List[Tuple[int, int]] = []
        for band in bands:
            if merged and band[0] - merged[-1][1] <= 1:
                merged[-1] = (merged[-1][0], band[1])
            else:
                merged.append(band)
        return [b for b in merged if b[1] - b[0] >= 3]

    def _recognize_band(
        self, band: "np.ndarray", rng: "np.random.Generator",
        noise_scale: float = 1.0,
    ) -> Tuple[str, List[float], int]:
        """Recognize one text band cell by cell."""
        height, width = band.shape
        if height < GLYPH_HEIGHT:
            padded = np.zeros((GLYPH_HEIGHT, width), dtype=np.int16)
            padded[:height, :] = band
            band = padded
        elif height > GLYPH_HEIGHT:
            # boxed inputs include border rows; take the densest window
            best_offset = 0
            best_mass = -1
            for offset in range(height - GLYPH_HEIGHT + 1):
                mass = int(band[offset:offset + GLYPH_HEIGHT, :].sum())
                if mass > best_mass:
                    best_mass = mass
                    best_offset = offset
            band = band[best_offset:best_offset + GLYPH_HEIGHT, :]

        col_ink = band.sum(axis=0)
        nonzero = np.nonzero(col_ink)[0]
        if len(nonzero) == 0:
            return "", [], 0
        first = int(nonzero[0])
        # glyphs may start with blank columns ('l', 'i'), so the true cell
        # grid can begin up to 2 columns left of the first ink; decode at
        # each plausible alignment and keep the most confident reading
        best: Tuple[str, List[float], int] = ("", [], 0)
        best_conf = -1.0
        for start in range(max(0, first - 2), first + 1):
            decoded = self._decode_at(band, start, rng, noise_scale)
            conf = float(np.mean(decoded[1])) if decoded[1] else 0.0
            if conf > best_conf:
                best_conf = conf
                best = decoded
        return best

    def _decode_at(
        self, band: "np.ndarray", start: int, rng: "np.random.Generator",
        noise_scale: float = 1.0,
    ) -> Tuple[str, List[float], int]:
        """Decode a band assuming the glyph grid begins at column ``start``.

        The batched path gathers every glyph cell of the band at once and
        scores the whole block against the template matrix in one broadcast,
        then replays the blank-run / noise bookkeeping sequentially.  The
        replay consumes exactly one ``rng.random()`` draw per non-blank cell
        in cell order — the same stream the per-cell reference walk draws —
        so the decoded text is byte-identical.
        """
        if self.legacy:
            return self._decode_at_reference(band, start, rng, noise_scale)
        xs = np.arange(start, band.shape[1] - GLYPH_WIDTH + 1, _CELL_PITCH)
        if len(xs) == 0:
            return "", [], 0
        # (H, k, W) gather -> (k, H*W) rows, matching cell.ravel() order
        block = band[:, xs[:, None] + np.arange(GLYPH_WIDTH)[None, :]]
        flat = block.transpose(1, 0, 2).reshape(len(xs), -1)
        mass = flat.sum(axis=1)
        blank = mass == 0
        total = flat.shape[1]
        chars: List[str] = []
        scores: List[int] = []
        rolls: List[float] = []
        n_active = int(len(blank) - blank.sum())
        if n_active:
            active = flat[~blank].astype(np.float64)
            # exact |cell - template| disagreement via the binary identity
            # (all counts are small integers, exact in float64)
            disagreement = (mass[~blank][:, None] + self._template_mass[None, :]
                            - 2.0 * (active @ self._template_float.T))
            matches = disagreement.argmin(axis=1)              # first min
            chars = [self._template_chars[i] for i in matches.tolist()]
            scores = disagreement[np.arange(len(matches)), matches].tolist()
            rolls = rng.random(len(matches)).tolist()
        drop_rate = min(0.2, self.drop_rate * noise_scale)
        error_rate = min(0.6, self.error_rate * noise_scale)
        out: List[str] = []
        confidences: List[float] = []
        blank_run = 0
        j = 0
        for is_blank in blank.tolist():
            if is_blank:
                blank_run += 1
                # a run of 2+ blank cells is a word gap
                if blank_run == 1 and out and out[-1] != " ":
                    out.append(" ")
                continue
            blank_run = 0
            char = chars[j]
            roll = rolls[j]
            if roll < drop_rate:
                j += 1
                continue
            if roll < drop_rate + error_rate:
                char = _CONFUSION_MAP.get(char, char)
            out.append(char)
            confidences.append(float(total - scores[j]) / total)
            j += 1
        return "".join(out), confidences, n_active

    def _decode_at_reference(
        self, band: "np.ndarray", start: int, rng: "np.random.Generator",
        noise_scale: float = 1.0,
    ) -> Tuple[str, List[float], int]:
        """Reference cell-by-cell decode (the pre-vectorization hot path)."""
        out: List[str] = []
        confidences: List[float] = []
        cells = 0
        x = start
        blank_run = 0
        while x + GLYPH_WIDTH <= band.shape[1]:
            cell = band[:, x:x + GLYPH_WIDTH]
            if cell.sum() == 0:
                blank_run += 1
                x += _CELL_PITCH
                # a run of 2+ blank cells is a word gap
                if blank_run == 1 and out and out[-1] != " ":
                    out.append(" ")
                continue
            blank_run = 0
            char, confidence = self._match_cell(cell)
            cells += 1
            char = self._apply_noise(char, rng, noise_scale)
            if char:
                out.append(char)
                confidences.append(confidence)
            x += _CELL_PITCH
        text = "".join(out)
        return text, confidences, cells

    def _match_cell(self, cell: "np.ndarray") -> Tuple[str, float]:
        """Score a glyph cell against all templates; return best match."""
        total = cell.size
        disagreement = np.abs(self._template_matrix - cell.ravel()).sum(axis=1)
        index = int(disagreement.argmin())
        score = float(total - disagreement[index]) / total
        return self._template_chars[index], score

    def _apply_noise(self, char: str, rng: "np.random.Generator",
                     noise_scale: float = 1.0) -> str:
        if char == " ":
            return char
        drop_rate = min(0.2, self.drop_rate * noise_scale)
        error_rate = min(0.6, self.error_rate * noise_scale)
        roll = rng.random()
        if roll < drop_rate:
            return ""
        if roll < drop_rate + error_rate:
            return _CONFUSION_MAP.get(char, char)
        return char

    @staticmethod
    def _rng_for(pixels: "np.ndarray") -> "np.random.Generator":
        """Deterministic noise stream derived from raster content."""
        digest = hashlib.sha256(pixels.tobytes()).digest()
        seed = int.from_bytes(digest[:8], "big")
        return np.random.default_rng(seed)
