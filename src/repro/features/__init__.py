"""Feature pipeline: the paper's three feature families and the embedding.

§5.1 extracts (1) OCR keywords from the page screenshot, (2) lexical
keywords from h/p/a/title HTML tags, (3) form-attribute keywords plus the
form count, all deliberately brand-agnostic.  §5.2 tokenizes, stopwords,
spell-corrects and embeds keyword frequencies into a sparse vector
(987-dimensional in the paper).
"""

from repro.features.extraction import FeatureExtractor, PageFeatures
from repro.features.embedding import EmbeddingConfig, FeatureEmbedder

__all__ = [
    "EmbeddingConfig",
    "FeatureEmbedder",
    "FeatureExtractor",
    "PageFeatures",
]
