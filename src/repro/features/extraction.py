"""Raw feature extraction from one captured page (§5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenizer import tokenize
from repro.ocr.engine import OCREngine
from repro.ocr.spellcheck import SpellChecker
from repro.web.html import (
    Element,
    form_attributes,
    forms,
    lexical_texts,
    parse_html,
    scripts,
)
from repro.web.javascript import ObfuscationIndicators, analyze_scripts


@dataclass
class PageFeatures:
    """The three §5.1 feature families for one page."""

    ocr_tokens: List[str] = field(default_factory=list)
    lexical_tokens: List[str] = field(default_factory=list)
    form_tokens: List[str] = field(default_factory=list)
    form_count: int = 0
    password_input_count: int = 0
    script_count: int = 0
    js_indicators: Optional[ObfuscationIndicators] = None

    def all_tokens(self) -> List[str]:
        return self.ocr_tokens + self.lexical_tokens + self.form_tokens

    def copy(self) -> "PageFeatures":
        """Independent copy of the mutable token lists.

        ``js_indicators`` is shared — it is immutable once analyzed.
        Cache hits return copies so callers can't mutate the cached entry.
        """
        return PageFeatures(
            ocr_tokens=list(self.ocr_tokens),
            lexical_tokens=list(self.lexical_tokens),
            form_tokens=list(self.form_tokens),
            form_count=self.form_count,
            password_input_count=self.password_input_count,
            script_count=self.script_count,
            js_indicators=self.js_indicators,
        )


class FeatureExtractor:
    """HTML + screenshot → :class:`PageFeatures`.

    OCR output goes through tokenization, stopword removal, and spell
    correction (§5.2); HTML-side texts skip correction since they carry no
    recognition noise.
    """

    def __init__(
        self,
        ocr_engine: Optional[OCREngine] = None,
        spell_checker: Optional[SpellChecker] = None,
        use_ocr: bool = True,
        use_spellcheck: bool = True,
        extra_lexicon: Optional[list] = None,
        cache=None,
        legacy: bool = False,
    ) -> None:
        """
        Args:
            extra_lexicon: additional correction targets, typically the
                brand names of the catalog (§5.2 corrects OCR output against
                brand and form vocabulary).
            cache: optional :class:`~repro.perf.cache.CaptureCache`;
                memoizes whole extractions by page-content digest and
                enables the spell checker's word memo.
            legacy: build any defaulted OCR engine / spell checker on their
                reference (pre-vectorization) search paths; outputs are
                byte-identical either way.
        """
        self.ocr = ocr_engine or OCREngine(legacy=legacy)
        self.spell = spell_checker or SpellChecker(legacy=legacy)
        if extra_lexicon:
            self.spell.add_words(extra_lexicon)
        self.use_ocr = use_ocr
        self.use_spellcheck = use_spellcheck
        self.cache = cache
        if cache is not None and cache.enabled:
            # word-level correction is pure, so memoizing it cannot change
            # output; gated on the cache flag so --no-capture-cache runs
            # measure the uncached baseline
            self.spell.enable_memo(cache.stats)

    def extract(self, html: str, screenshot_pixels=None) -> PageFeatures:
        """Extract features from page markup and (optionally) its raster."""
        if self.cache is not None:
            key = self.cache.feature_key(
                html, screenshot_pixels if self.use_ocr else None,
                (self.use_ocr, self.use_spellcheck))
            cached = self.cache.lookup_features(key)
            if cached is not None:
                return cached.copy()
            features = self._extract(html, screenshot_pixels)
            self.cache.store_features(key, features.copy())
            return features
        return self._extract(html, screenshot_pixels)

    def _extract(self, html: str, screenshot_pixels=None) -> PageFeatures:
        tree = parse_html(html)
        features = PageFeatures()

        # OCR family
        if self.use_ocr and screenshot_pixels is not None:
            recognized = self.ocr.recognize(screenshot_pixels).text
            if self.use_spellcheck:
                recognized = self.spell.correct_text(recognized.replace("\n", " "))
            features.ocr_tokens = remove_stopwords(tokenize(recognized))

        # lexical family (h/p/a/title tags)
        texts = lexical_texts(tree)
        lexical_blob = " ".join(" ".join(values) for values in texts.values())
        features.lexical_tokens = remove_stopwords(tokenize(lexical_blob))

        # form family
        features.form_tokens = remove_stopwords(tokenize(" ".join(form_attributes(tree))))
        page_forms = forms(tree)
        features.form_count = len(page_forms)
        features.password_input_count = sum(
            1
            for form in page_forms
            for node in form.iter()
            if node.tag == "input" and node.get("type") == "password"
        )

        # script indicators (used by the evasion analysis, not the embedding)
        script_bodies = scripts(tree)
        features.script_count = len(script_bodies)
        features.js_indicators = analyze_scripts(script_bodies)
        return features

    def extract_capture(self, capture) -> PageFeatures:
        """Extract from a :class:`~repro.web.browser.PageCapture`."""
        pixels = capture.screenshot.pixels if capture.screenshot is not None else None
        return self.extract(capture.html, pixels)
