"""Keyword-frequency embedding (§5.2).

The vocabulary seeds from all brand names, then grows with the most frequent
keywords of the ground-truth corpus; each page becomes a sparse vector of
per-channel keyword frequencies plus a few numeric features.  Channels can
be toggled for the feature-family ablation (the paper's central claim is
that the OCR channel survives obfuscation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.extraction import PageFeatures
from repro.nlp.vocab import Vocabulary


@dataclass
class EmbeddingConfig:
    """Which feature families enter the vector, and vocabulary sizing."""

    use_ocr: bool = True
    use_lexical: bool = True
    use_forms: bool = True
    use_numeric: bool = True
    # keywords learned from the ground-truth corpus, on top of the brand-name
    # seeds (paper: 987 dimensions ≈ 766 brand names + ~220 corpus keywords)
    extra_keywords: int = 285
    min_keyword_count: int = 3


class FeatureEmbedder:
    """Fit a vocabulary on training pages, then vectorize any page."""

    NUMERIC_FEATURES = ("form_count", "password_input_count", "script_count")

    def __init__(
        self,
        brand_names: Sequence[str],
        config: Optional[EmbeddingConfig] = None,
        legacy: bool = False,
    ) -> None:
        self.config = config or EmbeddingConfig()
        self.vocabulary = Vocabulary()
        for name in brand_names:
            self.vocabulary.add(name)
        self.legacy = legacy
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, pages: Sequence[PageFeatures]) -> "FeatureEmbedder":
        """Grow the vocabulary with frequent ground-truth keywords."""
        token_lists = [page.all_tokens() for page in pages]
        self.vocabulary.fit_frequent(
            token_lists,
            max_words=len(self.vocabulary) + self.config.extra_keywords,
            min_count=self.config.min_keyword_count,
        )
        self._fitted = True
        return self

    def feature_names(self) -> List[str]:
        """Channel-prefixed name of every vector position.

        ``ocr:password``, ``lexical:paypal``, ``form:username``,
        ``numeric:form_count`` — used to interpret classifier feature
        importances.
        """
        names: List[str] = []
        words = self.vocabulary.words()
        for enabled, channel in ((self.config.use_ocr, "ocr"),
                                 (self.config.use_lexical, "lexical"),
                                 (self.config.use_forms, "form")):
            if enabled:
                names.extend(f"{channel}:{word}" for word in words)
        if self.config.use_numeric:
            names.extend(f"numeric:{name}" for name in self.NUMERIC_FEATURES)
        return names

    @property
    def dimension(self) -> int:
        """Length of the emitted vectors."""
        channels = sum(
            1 for enabled in (self.config.use_ocr, self.config.use_lexical,
                              self.config.use_forms) if enabled
        )
        numeric = len(self.NUMERIC_FEATURES) if self.config.use_numeric else 0
        return channels * len(self.vocabulary) + numeric

    # ------------------------------------------------------------------
    def transform_one(self, page: PageFeatures) -> "np.ndarray":
        """Vectorize one page."""
        if self.legacy:
            return self._transform_one_reference(page)
        return self.transform([page])[0]

    def _transform_one_reference(self, page: PageFeatures) -> "np.ndarray":
        """Reference per-page build (the pre-batching hot path)."""
        if not self._fitted:
            raise RuntimeError("embedder must be fitted before transform")
        vocab_size = len(self.vocabulary)
        blocks: List[np.ndarray] = []
        channel_tokens = (
            (self.config.use_ocr, page.ocr_tokens),
            (self.config.use_lexical, page.lexical_tokens),
            (self.config.use_forms, page.form_tokens),
        )
        for enabled, tokens in channel_tokens:
            if not enabled:
                continue
            block = np.zeros(vocab_size)
            for token in tokens:
                index = self.vocabulary.index(token)
                if index is not None:
                    block[index] += 1.0
            blocks.append(block)
        if self.config.use_numeric:
            blocks.append(np.array([
                float(getattr(page, name)) for name in self.NUMERIC_FEATURES
            ]))
        return np.concatenate(blocks) if blocks else np.zeros(0)

    def transform(self, pages: Sequence[PageFeatures]) -> "np.ndarray":
        """Vectorize a batch of pages into an (n, d) matrix.

        The whole batch is built as one allocation per channel: tokens from
        every page resolve to (row, column) pairs and a single scatter-add
        fills the channel block.  Counts are whole floats, so accumulation
        order can't change a byte versus the old per-page build.
        """
        if not self._fitted:
            raise RuntimeError("embedder must be fitted before transform")
        if self.legacy:
            if not pages:
                return np.zeros((0, self.dimension))
            return np.stack([self._transform_one_reference(p) for p in pages])
        if not pages:
            return np.zeros((0, self.dimension))
        n = len(pages)
        vocab_size = len(self.vocabulary)
        blocks: List[np.ndarray] = []
        channel_tokens = (
            (self.config.use_ocr, "ocr_tokens"),
            (self.config.use_lexical, "lexical_tokens"),
            (self.config.use_forms, "form_tokens"),
        )
        for enabled, attr in channel_tokens:
            if not enabled:
                continue
            rows: List[int] = []
            cols: List[int] = []
            for row, page in enumerate(pages):
                for token in getattr(page, attr):
                    index = self.vocabulary.index(token)
                    if index is not None:
                        rows.append(row)
                        cols.append(index)
            block = np.zeros((n, vocab_size))
            if rows:
                np.add.at(block, (np.array(rows), np.array(cols)), 1.0)
            blocks.append(block)
        if self.config.use_numeric:
            blocks.append(np.array([
                [float(getattr(page, name)) for name in self.NUMERIC_FEATURES]
                for page in pages
            ]))
        if not blocks:
            return np.zeros((n, 0))
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, pages: Sequence[PageFeatures]) -> "np.ndarray":
        self.fit(pages)
        return self.transform(pages)
