"""Experiment registry: one record per paper exhibit.

The registry is the machine-readable version of DESIGN.md §3: every table
and figure of the paper's evaluation, the headline numbers the paper
reports, which modules implement the pieces, and which bench regenerates
it.  EXPERIMENTS.md is rendered from here so the docs can never drift from
the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Experiment:
    """One exhibit of the paper's evaluation."""

    exhibit: str                      # e.g. "Table 8" / "Fig 12"
    title: str
    paper_result: str                 # the headline numbers/shape as printed
    shape_criteria: str               # what our reproduction must preserve
    modules: Tuple[str, ...]
    bench: str

    @property
    def key(self) -> str:
        return self.exhibit.lower().replace(" ", "")


REGISTRY: Tuple[Experiment, ...] = (
    Experiment(
        "Table 1", "Example squatting domains per type (facebook)",
        "faceb00k.pw homograph; xn--fcebook-8va.com IDN; facebnok.tk bits; "
        "facebo0ok.com/fcaebook.org typo; facebook-story.de combo; "
        "facebook.audi wrongTLD",
        "each example classified with the same brand and type",
        ("repro.squatting",), "benchmarks/bench_table01_squat_examples.py",
    ),
    Experiment(
        "Fig 2", "Squatting domains by type",
        "combo 371,354 (56%); typo 166,152 (25%); bits 48,097; "
        "wrongTLD 39,414; homograph 32,646 — total 657,663",
        "combo majority (40-70%), typo second, all five present",
        ("repro.squatting.detector", "repro.phishworld.world"),
        "benchmarks/bench_fig02_squat_type_distribution.py",
    ),
    Experiment(
        "Fig 3", "Accumulated % of squatting domains vs brand rank",
        "top 20 brands cover >30% of all squatting domains",
        "top-20 coverage >30%, curve monotone to 100%",
        ("repro.analysis.figures",), "benchmarks/bench_fig03_brand_skew.py",
    ),
    Experiment(
        "Fig 4", "Top-5 brands by squatting count",
        "vice 5.98%, porn 2.76%, bt 2.46%, apple 2.05%, ford 1.85%",
        "vice leads at 3-10%; ≥3 of the paper's five in the head",
        ("repro.analysis.figures",), "benchmarks/bench_fig04_top_brands.py",
    ),
    Experiment(
        "Table 2", "Crawl statistics: liveness + redirect split",
        "web: 362,545 live (55%); 87.3% no redirect, 1.7% original, "
        "3.0% market, 8.0% other; mobile nearly identical",
        "live 45-68%; no-redirect >78%; original 0.5-6%; market 1-8%; "
        "web≈mobile",
        ("repro.web.crawler", "repro.analysis.tables"),
        "benchmarks/bench_table02_crawl_stats.py",
    ),
    Experiment(
        "Table 3", "Brands redirecting squats to the original site",
        "Shutterfly 68%, Alliancebank 62%, Rabobank 61%, Priceline 53%, "
        "Carfax 45% of their redirections go to the original",
        "paper's defensive brands in the head; top share >50%",
        ("repro.analysis.tables",),
        "benchmarks/bench_table03_defensive_redirects.py",
    ),
    Experiment(
        "Table 4", "Brands redirecting squats to marketplaces",
        "Zocdoc 78%, Comerica 57%, Verizon 49%, Amazon 42% (2,168 domains), "
        "Paypal 38%",
        "paper's market brands in the head; top share >40%",
        ("repro.analysis.tables",),
        "benchmarks/bench_table04_marketplace_redirects.py",
    ),
    Experiment(
        "Fig 5", "Accumulated % of PhishTank URLs vs brand",
        "top 8 of 138 brands cover 59.1% of 6,755 reported URLs",
        "top-8 coverage 45-72%; paypal then facebook lead",
        ("repro.phishworld.phishtank",),
        "benchmarks/bench_fig05_phishtank_skew.py",
    ),
    Experiment(
        "Fig 6", "Alexa rank of PhishTank URL domains",
        "4,749 of 6,755 (70%) beyond the top 1M; (1k-10k] is the largest "
        "ranked bucket",
        "beyond-1M share 60-80%; (1k-10k] largest ranked bucket",
        ("repro.brands.alexa",), "benchmarks/bench_fig06_phishtank_alexa.py",
    ),
    Experiment(
        "Fig 7", "Squatting types among PhishTank URLs",
        "6,156 (91%) non-squatting; 592 combo; 3-4 typo; 1 homograph; "
        "0 bits/wrongTLD",
        "non-squatting 85-96%; combo >85% of the squatting remainder; "
        "zero bits/wrongTLD",
        ("repro.phishworld.phishtank", "repro.squatting.detector"),
        "benchmarks/bench_fig07_phishtank_squatting.py",
    ),
    Experiment(
        "Table 5", "Top-8 PhishTank brands and label decay",
        "4,004 URLs (59.1%); only 1,731 (43.2%) still phishing when "
        "crawled; facebook survives at 69%, paypal at 27%",
        "paypal leads; aggregate survival 30-55%; facebook > paypal survival",
        ("repro.phishworld.phishtank",),
        "benchmarks/bench_table05_groundtruth_decay.py",
    ),
    Experiment(
        "Fig 8", "Layout-obfuscation hash-distance examples",
        "paypal phishing at distances 7 / 24 / 38 from the original; "
        "distance 7 still visually similar, 24+ obfuscated",
        "obfuscated variants reach the 20-50 band; faithful clone <20",
        ("repro.vision.imagehash", "repro.phishworld.attacker"),
        "benchmarks/bench_fig08_layout_example.py",
    ),
    Experiment(
        "Fig 9", "Mean image-hash distance per brand",
        "most brands average ≈20+ with large variance; no universal "
        "similarity threshold works",
        ">70% of well-sampled brands average ≥15; spread >3 across brands",
        ("repro.analysis.evasion",),
        "benchmarks/bench_fig09_layout_obfuscation.py",
    ),
    Experiment(
        "Table 6", "String/code obfuscation rates per brand",
        "string: santander 100% … ebay 8.9%; code: facebook 46.6% … "
        "dropbox 1.5%",
        "aggregate string 20-55%, code 20-55%; strong brand variation",
        ("repro.analysis.evasion", "repro.web.javascript"),
        "benchmarks/bench_table06_obfuscation_rates.py",
    ),
    Experiment(
        "Table 7", "Classifier performance (10-fold CV)",
        "NB .50/.05/.64/.44; KNN .04/.10/.92/.86; RF .03/.06/.97/.90 "
        "(FP/FN/AUC/ACC)",
        "RF (near-)best with AUC>0.93, FP<0.08, FN<0.12, ACC>0.88; "
        "NB worst FP",
        ("repro.ml", "repro.features"),
        "benchmarks/bench_table07_classifier_performance.py",
    ),
    Experiment(
        "Fig 10", "ROC curves of the three models",
        "RF hugs the top-left; KNN close; NB clearly worse",
        "RF dominates NB at FPR 0.05/0.10; RF TPR@0.05 > 0.85",
        ("repro.ml.metrics",), "benchmarks/bench_fig10_roc_curves.py",
    ),
    Experiment(
        "Table 8", "Wild detection: flagged vs confirmed",
        "1,224 web / 1,269 mobile / 1,741 union flagged; 857 (70.0%) / "
        "908 (72.0%) / 1,175 (67.4%) confirmed; 247/255/281 brands; "
        "0.2% of squats",
        "confirm rate 45-100%; union ≥ each side; phish fraction <12%; "
        "mobile ≥ web",
        ("repro.core.pipeline",), "benchmarks/bench_table08_wild_detection.py",
    ),
    Experiment(
        "Table 9", "Per-brand predicted vs verified",
        "google 112/105 (94%) web; facebook 21/18; apple 20/8; "
        "bitcoin 19/16; uber 16/11 ...",
        "google most-verified; verified ≤ predicted per profile",
        ("repro.core.pipeline", "repro.analysis.tables"),
        "benchmarks/bench_table09_brand_verification.py",
    ),
    Experiment(
        "Fig 11", "CDF of verified phishing per brand",
        "the vast majority of brands have <10 squatting phishing pages",
        ">80% of brands below 10 pages; CDF reaches 100%",
        ("repro.analysis.figures",), "benchmarks/bench_fig11_verified_cdf.py",
    ),
    Experiment(
        "Fig 12", "Verified phishing by squat type",
        "pages under every method; combo largest; 200+ in homograph/bits/"
        "typo collectively; wrongTLD smallest",
        "all five types present; combo max; wrongTLD min",
        ("repro.analysis.figures",),
        "benchmarks/bench_fig12_phish_squat_types.py",
    ),
    Experiment(
        "Fig 13", "Top-70 targeted brands",
        "google 194 pages, ~5x the runner-up; ford/facebook/bitcoin/amazon "
        "head the rest",
        "google #1 at ≥2x runner-up; ≥15 targeted brands",
        ("repro.analysis.figures",),
        "benchmarks/bench_fig13_top_targeted_brands.py",
    ),
    Experiment(
        "Table 10", "Example phishing domains per brand/type",
        "goog1e.nl, goofle.com.ua, facebook-c.com, face-book.online, "
        "go-uberfreight.com, mobile-adp.com, ...",
        "≥70% of the seeded case studies verified with matching brand+type",
        ("repro.core.pipeline", "repro.phishworld.world"),
        "benchmarks/bench_table10_phish_examples.py",
    ),
    Experiment(
        "Fig 14", "Screenshot case studies",
        "fake Google search (goofle.com.ua), Uber Freight scam, Microsoft "
        "tech-support scam, ADP payroll scam with JS-injected form, "
        "Citizens bank credential theft",
        "each case live, rendered, and its scam signature OCR-readable",
        ("repro.web.screenshot", "repro.ocr"),
        "benchmarks/bench_fig14_case_studies.py",
    ),
    Experiment(
        "Fig 15", "Hosting countries of phishing sites",
        "1,021 IPs in 53 countries; US 494, DE 106, GB 77, FR 44, IE 39 ...",
        "US #1 at ≥2x DE; ≥8 countries",
        ("repro.phishworld.geoip",), "benchmarks/bench_fig15_geolocation.py",
    ),
    Experiment(
        "Fig 16", "Registration years of phishing domains",
        "mass within the recent 4 years (2015-2018); registrar data for "
        "~63% (738); GoDaddy leads with 157",
        "recent-4-years >70%; GoDaddy in top-2; coverage 40-85%",
        ("repro.phishworld.whois",),
        "benchmarks/bench_fig16_registration_time.py",
    ),
    Experiment(
        "Fig 17", "Live phishing per weekly snapshot",
        "~80% of pages still alive after at least a month",
        "week-3 liveness ≥65% of week-0, both profiles",
        ("repro.web.crawler", "repro.analysis.figures"),
        "benchmarks/bench_fig17_longevity.py",
    ),
    Experiment(
        "Table 11", "Evasion: squatting vs non-squatting",
        "layout 28.4±11.8 vs 21.0±12.3; string 68.1% vs 35.9%; code 34.0% "
        "vs 37.5%",
        "squat string-rate 55-80% and ≥15pts above non-squat (25-48%); "
        "layout means ≥15 and squat ≥ non-squat - 2; code rates within 20pts",
        ("repro.analysis.evasion",),
        "benchmarks/bench_table11_evasion_comparison.py",
    ),
    Experiment(
        "Table 12", "Blacklist coverage after one month",
        "PhishTank 0 (0.0%); VirusTotal 100 (8.5%); eCrimeX 2 (0.2%); "
        "1,075 (91.5%) undetected",
        "undetected >80%; PhishTank <5%; eCrimeX <8%; VT <25% and ≥ PT",
        ("repro.phishworld.blacklists",),
        "benchmarks/bench_table12_blacklist_evasion.py",
    ),
    Experiment(
        "Table 13", "Per-domain liveness over the four crawls",
        "4 facebook domains live all month; faceboolk.ml down after week 2; "
        "tacebook.ga benign in week 3, phishing again in week 4",
        "same per-domain liveness pattern for the seeded domains",
        ("repro.analysis.tables", "repro.phishworld.world"),
        "benchmarks/bench_table13_liveness_matrix.py",
    ),
)


def get(exhibit: str) -> Optional[Experiment]:
    """Look up an experiment by exhibit name (case/space insensitive)."""
    key = exhibit.lower().replace(" ", "")
    for experiment in REGISTRY:
        if experiment.key == key:
            return experiment
    return None


def render_index() -> str:
    """Markdown index of all experiments (the EXPERIMENTS.md core)."""
    lines = [
        "| Exhibit | What the paper reports | Reproduction criteria | Bench |",
        "|---|---|---|---|",
    ]
    for e in REGISTRY:
        lines.append(
            f"| **{e.exhibit}** — {e.title} | {e.paper_result} "
            f"| {e.shape_criteria} | `{e.bench.split('/')[-1]}` |"
        )
    return "\n".join(lines)
