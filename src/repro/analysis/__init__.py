"""Measurement analyses: evasion, longevity, and exhibit data producers.

* :mod:`repro.analysis.evasion` — the §4.2 / §6.3 evasion measurements
  (layout image-hash distances, string obfuscation test, code obfuscation
  indicators);
* :mod:`repro.analysis.figures` — data series behind every figure;
* :mod:`repro.analysis.tables` — row producers behind every table, with
  ASCII rendering helpers used by the benches and examples;
* :mod:`repro.analysis.lifecycle` — longitudinal lifecycle analytics
  over a dated snapshot series (survival, re-registration, blacklist
  lag), built on the vectorized snapshot-diff kernel.
"""

from repro.analysis.evasion import (
    EvasionMeasurement,
    layout_distance,
    measure_evasion,
    string_obfuscated,
)
from repro.analysis.lifecycle import (
    FamilyLifecycle,
    LifecycleReport,
    diff_chain_digest,
    diff_series,
    diff_series_serial,
    lifecycle_report,
)

__all__ = [
    "EvasionMeasurement",
    "FamilyLifecycle",
    "LifecycleReport",
    "diff_chain_digest",
    "diff_series",
    "diff_series_serial",
    "layout_distance",
    "lifecycle_report",
    "measure_evasion",
    "string_obfuscated",
]
