"""Measurement analyses: evasion, longevity, and exhibit data producers.

* :mod:`repro.analysis.evasion` — the §4.2 / §6.3 evasion measurements
  (layout image-hash distances, string obfuscation test, code obfuscation
  indicators);
* :mod:`repro.analysis.figures` — data series behind every figure;
* :mod:`repro.analysis.tables` — row producers behind every table, with
  ASCII rendering helpers used by the benches and examples.
"""

from repro.analysis.evasion import (
    EvasionMeasurement,
    layout_distance,
    measure_evasion,
    string_obfuscated,
)

__all__ = [
    "EvasionMeasurement",
    "layout_distance",
    "measure_evasion",
    "string_obfuscated",
]
