"""Phishing-page lifetime analysis (§6.3's longevity measurement).

Fig 17 counts live pages per weekly snapshot; this module formalizes the
underlying survival analysis so the longevity claim ("~80% alive after a
month", vs compromised-server phishing blacklisted in <10 days [33]) can be
computed, compared, and tested:

* per-domain lifetimes from crawl snapshots (with right-censoring — a page
  alive at the last snapshot has lifetime "at least N weeks");
* a product-limit (Kaplan-Meier-style) survival curve over censored data;
* summary statistics the discussion cites (survival at day 30, median
  lifetime when observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DomainLifetime:
    """Observed lifetime of one phishing domain, in snapshots.

    ``lifetime`` counts snapshots the page was observed live before its
    first disappearance; ``censored`` is True when the page was still live
    at the last snapshot (true lifetime unknown, at least ``lifetime``).
    """

    domain: str
    lifetime: int
    censored: bool


def observe_lifetimes(
    snapshots,
    domains: Sequence[str],
    profile: str = "web",
    fallback_profile: str = "mobile",
) -> List[DomainLifetime]:
    """Derive per-domain lifetimes from a crawl-snapshot series.

    A domain's life ends at its first dead snapshot (takedowns that resurrect
    later — Table 13's tacebook.ga — count their first life only, matching
    how the paper reads Fig 17).
    """
    out: List[DomainLifetime] = []
    total = len(snapshots)
    for domain in domains:
        lifetime = 0
        died = False
        for snapshot in snapshots:
            result = snapshot.get(domain, profile)
            if result is None or not result.live:
                result = snapshot.get(domain, fallback_profile)
            if result is not None and result.live:
                lifetime += 1
            else:
                died = True
                break
        out.append(DomainLifetime(
            domain=domain,
            lifetime=lifetime,
            censored=not died and lifetime == total,
        ))
    return out


def survival_curve(
    lifetimes: Sequence[DomainLifetime],
) -> List[Tuple[int, float]]:
    """Product-limit survival estimate over (possibly censored) lifetimes.

    Returns (snapshot t, S(t)) points: the probability a page survives
    *beyond* t snapshots.  Censored observations leave the risk set without
    registering a death, exactly as in the Kaplan-Meier estimator.
    """
    if not lifetimes:
        return []
    max_t = max(item.lifetime for item in lifetimes)
    survival = 1.0
    curve: List[Tuple[int, float]] = [(0, 1.0)]
    for t in range(1, max_t + 1):
        at_risk = sum(1 for item in lifetimes if item.lifetime >= t)
        deaths = sum(
            1 for item in lifetimes
            if item.lifetime == t and not item.censored
        )
        if at_risk > 0:
            survival *= 1.0 - deaths / at_risk
        curve.append((t, survival))
    return curve


def survival_at(lifetimes: Sequence[DomainLifetime], t: int) -> float:
    """S(t): probability of surviving beyond ``t`` snapshots."""
    curve = survival_curve(lifetimes)
    value = 1.0
    for point_t, point_s in curve:
        if point_t <= t:
            value = point_s
    return value


def median_lifetime(lifetimes: Sequence[DomainLifetime]) -> Optional[int]:
    """Smallest t with S(t) <= 0.5, or None if the curve never crosses
    (more than half the population outlives the observation window)."""
    for t, s in survival_curve(lifetimes):
        if t > 0 and s <= 0.5:
            return t
    return None


@dataclass
class LongevityComparison:
    """The §6.3 contrast: squatting phish vs ordinary phishing takedown."""

    squatting_survival_30d: float
    ordinary_takedown_days: float = 10.0   # [33]: <10 days when blacklisted

    @property
    def is_consistent_with_paper(self) -> bool:
        """Paper: ~80-90% of squatting phish outlive a month while ordinary
        phishing dies within ~10 days."""
        return self.squatting_survival_30d > 0.5


def summarize_longevity(
    snapshots,
    domains: Sequence[str],
) -> Dict[str, object]:
    """One-call summary used by reports and benches."""
    lifetimes = observe_lifetimes(snapshots, domains)
    full_window = len(snapshots)
    survivors = sum(1 for item in lifetimes if item.censored)
    return {
        "domains": len(lifetimes),
        "alive_full_window": survivors,
        "survival_curve": survival_curve(lifetimes),
        "survival_end": survival_at(lifetimes, full_window),
        "median_lifetime": median_lifetime(lifetimes),
    }
