"""Evasion measurement (§4.2, §6.3).

Three tests per phishing page, each against a specific detection family:

* **layout obfuscation** — perceptual-hash hamming distance between the
  phishing screenshot and the impersonated brand's original page screenshot
  (Fig 8/9; distances ≳20 defeat visual-similarity detectors);
* **string obfuscation** — the target brand name does not appear in the
  page's HTML-extractable text (Table 6; defeats keyword matching);
* **code obfuscation** — strong JavaScript obfuscation indicators present
  (Table 6; FrameHanger-style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.vision.imagehash import hamming_distance, phash
from repro.web.html import parse_html, scripts, text_content
from repro.web.javascript import analyze_scripts


@dataclass
class EvasionMeasurement:
    """Per-page evasion verdicts."""

    domain: str
    brand: str
    layout_distance: Optional[int] = None
    string_obfuscated: bool = False
    code_obfuscated: bool = False


def layout_distance(phish_pixels, original_pixels) -> int:
    """Image-hash distance between a phishing page and the brand original."""
    return hamming_distance(phash(phish_pixels), phash(original_pixels))


def string_obfuscated(html: str, brand_name: str) -> bool:
    """True when the brand string is absent from the page's HTML text.

    Mirrors the paper's test: extract all texts from the HTML source and
    look for the brand name (case-folded).  Text drawn inside images or
    homoglyph-perturbed strings both fail the lookup.
    """
    text = text_content(parse_html(html)).lower()
    return brand_name.lower() not in text


def code_obfuscated(html: str) -> bool:
    """True when the page's scripts carry strong obfuscation indicators."""
    return analyze_scripts(scripts(parse_html(html))).is_obfuscated


def measure_page(
    domain: str,
    brand_name: str,
    html: str,
    phish_pixels=None,
    original_pixels=None,
) -> EvasionMeasurement:
    """Run all three evasion tests on one page."""
    distance = None
    if phish_pixels is not None and original_pixels is not None:
        distance = layout_distance(phish_pixels, original_pixels)
    return EvasionMeasurement(
        domain=domain,
        brand=brand_name,
        layout_distance=distance,
        string_obfuscated=string_obfuscated(html, brand_name),
        code_obfuscated=code_obfuscated(html),
    )


@dataclass
class EvasionSummary:
    """Aggregate row of Table 11."""

    population: str
    count: int
    layout_mean: float
    layout_std: float
    string_rate: float
    code_rate: float


def measure_evasion(
    measurements: Sequence[EvasionMeasurement],
    population: str = "",
) -> EvasionSummary:
    """Summarize a set of per-page measurements (one Table 11 row)."""
    distances = [m.layout_distance for m in measurements if m.layout_distance is not None]
    count = len(measurements)
    return EvasionSummary(
        population=population,
        count=count,
        layout_mean=float(np.mean(distances)) if distances else 0.0,
        layout_std=float(np.std(distances)) if distances else 0.0,
        string_rate=(sum(1 for m in measurements if m.string_obfuscated) / count) if count else 0.0,
        code_rate=(sum(1 for m in measurements if m.code_obfuscated) / count) if count else 0.0,
    )


def per_brand_layout_distances(
    measurements: Sequence[EvasionMeasurement],
) -> Dict[str, Tuple[float, float, int]]:
    """Brand → (mean, std, n) layout distance (the Fig 9 series)."""
    grouped: Dict[str, List[int]] = {}
    for m in measurements:
        if m.layout_distance is not None:
            grouped.setdefault(m.brand, []).append(m.layout_distance)
    return {
        brand: (float(np.mean(values)), float(np.std(values)), len(values))
        for brand, values in sorted(grouped.items())
    }


def per_brand_obfuscation_rates(
    measurements: Sequence[EvasionMeasurement],
) -> Dict[str, Tuple[float, float, int]]:
    """Brand → (string rate, code rate, n) (the Table 6 rows)."""
    grouped: Dict[str, List[EvasionMeasurement]] = {}
    for m in measurements:
        grouped.setdefault(m.brand, []).append(m)
    out: Dict[str, Tuple[float, float, int]] = {}
    for brand, items in grouped.items():
        n = len(items)
        out[brand] = (
            sum(1 for m in items if m.string_obfuscated) / n,
            sum(1 for m in items if m.code_obfuscated) / n,
            n,
        )
    return dict(sorted(out.items(), key=lambda kv: -kv[1][0]))
