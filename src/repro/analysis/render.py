"""ASCII renderers for exhibit data (used by benches and examples)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(
    data: Dict[str, float],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.0f}",
) -> str:
    """Horizontal ASCII bar chart."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not data:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(k)) for k in data)
    maximum = max(data.values()) or 1.0
    for key, value in data.items():
        bar = "#" * max(0, int(round(width * value / maximum)))
        lines.append(f"{str(key):<{label_width}}  {bar} {value_format.format(value)}")
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(f"{cell:<{w}}" for cell, w in zip(row, widths)))
    return "\n".join(lines)


def curve(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    sample_at: Sequence[int] = (1, 5, 10, 20, 50, 100),
) -> str:
    """Render an accumulation curve as sampled checkpoints."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for k in sample_at:
        if 1 <= k <= len(points):
            x, y = points[k - 1] if isinstance(points[0], tuple) else (k, points[k - 1])
            lines.append(f"  top {k:>4}: {y:6.1f}%")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a ratio as a percent string."""
    return f"{100.0 * value:.1f}%"
