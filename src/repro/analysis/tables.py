"""Row producers behind every table in the paper's evaluation."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.phishworld.marketplace import classify_redirect
from repro.squatting.types import SquatMatch, SquatType


# ----------------------------------------------------------------------
# Table 2-4: crawl statistics and redirect destinations
# ----------------------------------------------------------------------

@dataclass
class CrawlStatsRow:
    """One Table 2 row (per device profile)."""

    profile: str
    live_domains: int
    no_redirect: int
    redirect_original: int
    redirect_market: int
    redirect_other: int

    @property
    def redirecting(self) -> int:
        return self.redirect_original + self.redirect_market + self.redirect_other


def crawl_stats(
    snapshot,
    squat_matches: Sequence[SquatMatch],
    catalog,
) -> List[CrawlStatsRow]:
    """Table 2: liveness and redirect-destination split per profile."""
    brand_domain = {b.name: b.domain for b in catalog}
    match_of = {m.domain: m for m in squat_matches}
    rows: List[CrawlStatsRow] = []
    for profile in ("web", "mobile"):
        live = 0
        buckets = {"none": 0, "original": 0, "market": 0, "other": 0}
        for (domain, prof), result in snapshot.results.items():
            if prof != profile or not result.live:
                continue
            match = match_of.get(domain)
            if match is None:
                continue
            live += 1
            if not result.redirected:
                buckets["none"] += 1
                continue
            final = result.final_domain or ""
            bucket = classify_redirect(final, brand_domain.get(match.brand, ""))
            buckets[bucket] += 1
        rows.append(CrawlStatsRow(
            profile=profile,
            live_domains=live,
            no_redirect=buckets["none"],
            redirect_original=buckets["original"],
            redirect_market=buckets["market"],
            redirect_other=buckets["other"],
        ))
    return rows


@dataclass
class BrandRedirectRow:
    """One Table 3/4 row: a brand's redirect-destination profile."""

    brand: str
    redirecting: int
    redirect_share: float        # of the brand's live squat domains
    original: int
    market: int
    other: int


def brand_redirect_rows(
    snapshot,
    squat_matches: Sequence[SquatMatch],
    catalog,
    destination: str,
    top_n: int = 5,
    min_live: int = 5,
    min_redirecting: int = 3,
) -> List[BrandRedirectRow]:
    """Table 3 (destination="original") / Table 4 (destination="market").

    Brands ranked by the share of their redirecting squat domains landing on
    the given destination.  ``min_redirecting`` keeps one-off redirect
    flukes (1/1 = 100%) out of the head, matching the paper's tables which
    only show brands with meaningful redirect volume.
    """
    brand_domain = {b.name: b.domain for b in catalog}
    match_of = {m.domain: m for m in squat_matches}
    per_brand: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"live": 0, "original": 0, "market": 0, "other": 0}
    )
    for (domain, prof), result in snapshot.results.items():
        if prof != "web" or not result.live:
            continue
        match = match_of.get(domain)
        if match is None:
            continue
        stats = per_brand[match.brand]
        stats["live"] += 1
        if result.redirected:
            final = result.final_domain or ""
            bucket = classify_redirect(final, brand_domain.get(match.brand, ""))
            stats[bucket] += 1
    rows: List[BrandRedirectRow] = []
    for brand, stats in per_brand.items():
        if stats["live"] < min_live:
            continue
        redirecting = stats["original"] + stats["market"] + stats["other"]
        if redirecting < min_redirecting:
            continue
        rows.append(BrandRedirectRow(
            brand=brand,
            redirecting=redirecting,
            redirect_share=redirecting / stats["live"],
            original=stats["original"],
            market=stats["market"],
            other=stats["other"],
        ))
    key = {"original": lambda r: r.original / r.redirecting,
           "market": lambda r: r.market / r.redirecting}[destination]
    rows.sort(key=lambda r: (-key(r), -r.redirecting))
    return rows[:top_n]


# ----------------------------------------------------------------------
# Table 5: ground-truth decay per top brand
# ----------------------------------------------------------------------

@dataclass
class GroundTruthDecayRow:
    brand: str
    reported_urls: int
    percent_of_feed: float
    valid_phishing: int


def ground_truth_decay(feed, top_n: int = 8) -> List[GroundTruthDecayRow]:
    """Table 5: top PhishTank brands and how many URLs stayed phishing."""
    reports = feed.generate()
    total = len(reports)
    per_brand: Dict[str, List] = defaultdict(list)
    for report in reports:
        per_brand[report.brand].append(report)
    rows: List[GroundTruthDecayRow] = []
    for brand, items in sorted(per_brand.items(), key=lambda kv: -len(kv[1]))[:top_n]:
        rows.append(GroundTruthDecayRow(
            brand=brand,
            reported_urls=len(items),
            percent_of_feed=100.0 * len(items) / total,
            valid_phishing=sum(1 for r in items if r.still_phishing),
        ))
    return rows


# ----------------------------------------------------------------------
# Table 8/9: wild-detection results
# ----------------------------------------------------------------------

@dataclass
class WildDetectionRow:
    """One Table 8 row."""

    population: str
    squatting_domains: int
    classified_phishing: int
    confirmed: int
    related_brands: int

    @property
    def confirm_rate(self) -> float:
        return self.confirmed / self.classified_phishing if self.classified_phishing else 0.0


def wild_detection_rows(result, total_squat_domains: int) -> List[WildDetectionRow]:
    """Table 8: flagged vs manually confirmed, web / mobile / union."""
    rows: List[WildDetectionRow] = []
    for population in ("web", "mobile", "union"):
        if population == "union":
            flagged_domains = {f.domain for f in result.flagged}
            confirmed = result.verified
        else:
            flagged_domains = {f.domain for f in result.flagged if f.profile == population}
            confirmed = [v for v in result.verified if population in v.profiles]
        rows.append(WildDetectionRow(
            population=population,
            squatting_domains=total_squat_domains,
            classified_phishing=len(flagged_domains),
            confirmed=len(confirmed),
            related_brands=len({v.brand for v in confirmed}),
        ))
    return rows


@dataclass
class BrandVerificationRow:
    """One Table 9 row."""

    brand: str
    squat_domains: int
    predicted_web: int
    predicted_mobile: int
    verified_web: int
    verified_mobile: int


def brand_verification_rows(
    result,
    squat_matches: Sequence[SquatMatch],
    brands: Optional[Sequence[str]] = None,
    top_n: int = 15,
) -> List[BrandVerificationRow]:
    """Table 9: per-brand predicted vs verified counts."""
    squat_counts = Counter(m.brand for m in squat_matches)
    predicted_web = Counter(f.brand for f in result.flagged if f.profile == "web")
    predicted_mobile = Counter(f.brand for f in result.flagged if f.profile == "mobile")
    verified_web = Counter(v.brand for v in result.verified if "web" in v.profiles)
    verified_mobile = Counter(v.brand for v in result.verified if "mobile" in v.profiles)
    if brands is None:
        totals = Counter(v.brand for v in result.verified)
        brands = [brand for brand, _ in totals.most_common(top_n)]
    rows: List[BrandVerificationRow] = []
    for brand in brands:
        rows.append(BrandVerificationRow(
            brand=brand,
            squat_domains=squat_counts.get(brand, 0),
            predicted_web=predicted_web.get(brand, 0),
            predicted_mobile=predicted_mobile.get(brand, 0),
            verified_web=verified_web.get(brand, 0),
            verified_mobile=verified_mobile.get(brand, 0),
        ))
    return rows


# ----------------------------------------------------------------------
# Table 10: example phishing domains per brand/type
# ----------------------------------------------------------------------

def example_phish_domains(
    verified,
    per_brand: int = 3,
    brands: Optional[Sequence[str]] = None,
) -> List[Tuple[str, str, str]]:
    """Table 10: (brand, domain, squat type) examples."""
    grouped: Dict[str, List] = defaultdict(list)
    for v in verified:
        grouped[v.brand].append(v)
    if brands is None:
        brands = sorted(grouped, key=lambda b: -len(grouped[b]))
    rows: List[Tuple[str, str, str]] = []
    for brand in brands:
        for v in grouped.get(brand, [])[:per_brand]:
            rows.append((brand, v.domain, v.squat_type.value))
    return rows


# ----------------------------------------------------------------------
# Table 12: blacklist coverage
# ----------------------------------------------------------------------

@dataclass
class BlacklistCoverageRow:
    service: str
    detected: int
    total: int

    @property
    def rate(self) -> float:
        return self.detected / self.total if self.total else 0.0


def blacklist_coverage(ecosystem, domains: Sequence[str], on_day: int = 30) -> List[BlacklistCoverageRow]:
    """Table 12: how many verified phishing domains each service lists."""
    results = ecosystem.check_all(domains, on_day=on_day)
    total = len(results)
    return [
        BlacklistCoverageRow("PhishTank", sum(1 for r in results if r.phishtank), total),
        BlacklistCoverageRow("VirusTotal", sum(1 for r in results if r.virustotal), total),
        BlacklistCoverageRow("eCrimeX", sum(1 for r in results if r.ecrimex), total),
        BlacklistCoverageRow("Not Detected", sum(1 for r in results if not r.detected), total),
    ]


# ----------------------------------------------------------------------
# Table 13: per-domain liveness matrix
# ----------------------------------------------------------------------

def liveness_matrix(
    snapshots,
    domains: Sequence[str],
    profile: str = "web",
    fallback_profile: str = "mobile",
) -> List[Tuple[str, List[str]]]:
    """Table 13: 'Live' / '-' per snapshot for selected domains."""
    rows: List[Tuple[str, List[str]]] = []
    for domain in domains:
        cells: List[str] = []
        for snapshot in snapshots:
            result = snapshot.get(domain, profile)
            if result is None or not result.live:
                result = snapshot.get(domain, fallback_profile)
            cells.append("Live" if result is not None and result.live else "-")
        rows.append((domain, cells))
    return rows
