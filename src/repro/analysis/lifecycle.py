"""Lifecycle analytics over a dated snapshot series.

The longitudinal measurements the static paper cannot make — how long a
squat domain survives, how often a taken-down name is drop-caught, how
far blacklists lag behind registration — all fall out of the *diffs*
between consecutive dated snapshots:

* the consecutive-pair diffs fan out over the ``repro.perf`` process
  pool (each worker mmaps the two packed files and runs the vectorized
  :func:`~repro.dns.zonediff.diff_packed` kernel); results come back in
  pair order, so the diff digest chain is identical at any worker count;
* each domain's spells (birth snapshot → death snapshot, possibly
  several after re-registration) are replayed from the status columns;
  spell lengths feed the Kaplan–Meier estimator already used by the
  Fig 16 longevity analysis (:mod:`repro.analysis.lifetime`), per squat
  family (``detector.classify_domain``, memoized per distinct domain);
* re-registration rate per family = domains re-added after a takedown /
  domains ever taken down; weaponizations are record rewrites whose new
  IP lands in the simulated ``192.0.2.0/24`` phishing block;
* blacklist-coverage lag replays each squat birth (in birth order, so
  the draw sequence is deterministic) through a seeded
  :class:`~repro.phishworld.blacklists.Blacklist` coverage model and
  reports listings within the observation window and the mean listing
  delay — the Table 12 evasion story, now with a time axis.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.lifetime import (
    DomainLifetime,
    median_lifetime,
    survival_curve,
)
from repro.dns.packedzone import PackedZone
from repro.dns.records import split_domain
from repro.dns.zonediff import (
    ADDED,
    CHANGED,
    REMOVED,
    DiffTable,
    diff_packed,
    diff_serial,
)
from repro.perf.engine import process_map
from repro.phishworld.blacklists import Blacklist
from repro.phishworld.events import is_weaponized_ip

ORGANIC = "organic"                 # family label for non-squat domains


# ----------------------------------------------------------------------
# parallel pair diffing
# ----------------------------------------------------------------------

def _diff_pair(paths: Tuple[str, str]) -> DiffTable:
    """Worker body: mmap both packs, run the vectorized kernel."""
    older, newer = paths
    return diff_packed(PackedZone.load(older), PackedZone.load(newer))


def _series_zones(series) -> List[PackedZone]:
    zones = [getattr(snap, "zone", snap) for snap in series]
    if len(zones) < 2:
        raise ValueError("diffing a series needs at least two snapshots")
    return zones


def diff_series(series, workers: int = 1, perf=None) -> List[DiffTable]:
    """Consecutive-pair diffs of a dated series, in pair order.

    Workers receive only file paths (``PackedZone.ensure_file``) and
    mmap their own views; ``process_map`` returns results in shard
    order, so the digest chain is worker-count invariant.
    """
    zones = _series_zones(series)
    paths = [str(zone.ensure_file()) for zone in zones]
    pairs = list(zip(paths, paths[1:]))
    started = time.perf_counter()
    diffs = process_map(_diff_pair, pairs, workers)
    if perf is not None and hasattr(perf, "record_lifecycle"):
        perf.record_lifecycle(len(pairs), time.perf_counter() - started)
    return diffs


def diff_series_serial(series) -> List[DiffTable]:
    """The dict-set baseline over the same pairs (equivalence oracle)."""
    zones = _series_zones(series)
    return [diff_serial(older, newer)
            for older, newer in zip(zones, zones[1:])]


def diff_chain_digest(diffs: Sequence[DiffTable]) -> str:
    """One digest over the per-pair diff digests, in pair order."""
    hasher = hashlib.sha256()
    hasher.update(b"diff-chain\n")
    for diff in diffs:
        hasher.update(f"{diff.digest}\n".encode())
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# per-family lifecycle accounting
# ----------------------------------------------------------------------

@dataclass
class FamilyLifecycle:
    """One squat family's longitudinal summary."""

    family: str
    born: int = 0                   # domains ever observed alive
    takedowns: int = 0              # death events (spell ends)
    reregistered: int = 0           # domains revived after a takedown
    weaponized: int = 0             # domains that flipped into 192.0.2/24
    lifetimes: List[DomainLifetime] = field(default_factory=list)
    blacklisted: int = 0            # listed within the observation window
    blacklist_lag_days: Optional[float] = None   # mean listing delay

    @property
    def rereg_rate(self) -> float:
        """Revived domains / domains ever taken down."""
        ever_down = len({l.domain for l in self.lifetimes
                         if not l.censored})
        return self.reregistered / ever_down if ever_down else 0.0

    @property
    def blacklist_coverage(self) -> float:
        return self.blacklisted / self.born if self.born else 0.0

    def survival(self) -> List[Tuple[int, float]]:
        """Kaplan–Meier curve over spell lengths (in snapshots)."""
        return survival_curve(self.lifetimes)

    def median_lifetime_snapshots(self) -> Optional[int]:
        return median_lifetime(self.lifetimes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "born": self.born,
            "takedowns": self.takedowns,
            "reregistered": self.reregistered,
            "rereg_rate": round(self.rereg_rate, 4),
            "weaponized": self.weaponized,
            "median_lifetime_snapshots": self.median_lifetime_snapshots(),
            "blacklist_coverage": round(self.blacklist_coverage, 4),
            "blacklist_lag_days": (None if self.blacklist_lag_days is None
                                   else round(self.blacklist_lag_days, 2)),
        }


@dataclass
class LifecycleReport:
    """The full longitudinal readout for one series."""

    snapshots: int
    cadence_days: int
    diff_digests: List[str]
    chain_digest: str
    pair_counts: List[Dict[str, int]]
    families: Dict[str, FamilyLifecycle]

    def as_dict(self) -> Dict[str, object]:
        return {
            "snapshots": self.snapshots,
            "cadence_days": self.cadence_days,
            "pairs": len(self.diff_digests),
            "chain_digest": self.chain_digest,
            "diff_digests": list(self.diff_digests),
            "pair_counts": list(self.pair_counts),
            "families": {name: fam.as_dict()
                         for name, fam in sorted(self.families.items())},
        }


def _registered_of(name: str) -> str:
    core, tld = split_domain(name)
    return f"{core}.{tld}" if tld else core


class _FamilyIndex:
    """Memoized ``detector.classify_domain`` → family label."""

    def __init__(self, detector) -> None:
        self._detector = detector
        self._cache: Dict[str, str] = {}

    def family_of(self, domain: str) -> str:
        label = self._cache.get(domain)
        if label is None:
            match = None
            if self._detector is not None:
                match = self._detector.classify_domain(domain)
            label = match.squat_type.value if match is not None else ORGANIC
            self._cache[domain] = label
        return label


def lifecycle_report(series, diffs: Optional[Sequence[DiffTable]] = None,
                     detector=None, workers: int = 1,
                     blacklist_seed: int = 1803,
                     blacklist_squat_coverage: float = 0.35,
                     blacklist_delay_days: float = 10.0,
                     perf=None) -> LifecycleReport:
    """Replay the diff chain into per-family lifecycle accounting.

    Deterministic in (series, detector, blacklist knobs): the diff
    chain is worker-count invariant and the blacklist model draws in
    domain birth order.
    """
    if diffs is None:
        diffs = diff_series(series, workers=workers, perf=perf)
    snapshots = list(series)
    cadence = getattr(getattr(series, "config", None), "cadence_days", 1)

    families = _FamilyIndex(detector)
    # domain -> birth snapshot of the current spell (None while dead)
    alive_since: Dict[str, int] = {}
    ever_alive: Dict[str, None] = {}        # birth order preserved
    birth_index: Dict[str, int] = {}        # first birth per domain
    ever_down: Dict[str, None] = {}
    rereg_domains: Dict[str, None] = {}
    weaponized_domains: Dict[str, None] = {}
    spells: List[Tuple[str, int, bool]] = []    # domain, length, censored
    takedowns_per_family: Dict[str, int] = {}

    first = snapshots[0].zone if hasattr(snapshots[0], "zone") \
        else snapshots[0]
    for reg_id in range(first.n_registered):
        domain = first.registered_at(reg_id)
        alive_since[domain] = 0
        ever_alive.setdefault(domain, None)
        birth_index.setdefault(domain, 0)

    for k, diff in enumerate(diffs):
        at = k + 1          # diff k lands on snapshot k+1
        for domain in diff.domains_with_status(REMOVED):
            born = alive_since.pop(domain, None)
            if born is None:
                continue
            spells.append((domain, at - born, False))
            ever_down.setdefault(domain, None)
            family = families.family_of(domain)
            takedowns_per_family[family] = \
                takedowns_per_family.get(family, 0) + 1
        for domain in diff.domains_with_status(ADDED):
            if domain in ever_down:
                rereg_domains.setdefault(domain, None)
            alive_since.setdefault(domain, at)
            ever_alive.setdefault(domain, None)
            birth_index.setdefault(domain, at)
        for _status, ops in ((CHANGED, diff.changed_records),
                             (ADDED, diff.added_records)):
            for name, ip, _rtype, _source in ops:
                if is_weaponized_ip(ip):
                    weaponized_domains.setdefault(
                        _registered_of(name), None)

    horizon = len(snapshots) - 1
    for domain, born in alive_since.items():
        spells.append((domain, max(horizon - born, 0), True))

    # ------------------------------------------------------------------
    out: Dict[str, FamilyLifecycle] = {}

    def family_bucket(label: str) -> FamilyLifecycle:
        bucket = out.get(label)
        if bucket is None:
            bucket = out[label] = FamilyLifecycle(family=label)
        return bucket

    for domain in ever_alive:
        family_bucket(families.family_of(domain)).born += 1
    for domain, length, censored in spells:
        family_bucket(families.family_of(domain)).lifetimes.append(
            DomainLifetime(domain=domain, lifetime=length,
                           censored=censored))
    for family, count in takedowns_per_family.items():
        family_bucket(family).takedowns = count
    for domain in rereg_domains:
        family_bucket(families.family_of(domain)).reregistered += 1
    for domain in weaponized_domains:
        family_bucket(families.family_of(domain)).weaponized += 1

    # blacklist-coverage lag: replay squat births through the seeded
    # coverage model in birth order (deterministic draw sequence)
    rng = np.random.default_rng(blacklist_seed)
    blacklist = Blacklist("sim-aggregate", rng,
                          squatting_coverage=blacklist_squat_coverage,
                          ordinary_coverage=0.9,
                          mean_listing_delay_days=blacklist_delay_days)
    lags: Dict[str, List[int]] = {}
    window_days = max(horizon, 1) * cadence
    for domain in ever_alive:
        family = families.family_of(domain)
        if family == ORGANIC:
            continue
        entry = blacklist.ingest(domain, is_squatting=True)
        if entry is not None and entry.listed_day <= window_days:
            bucket = family_bucket(family)
            bucket.blacklisted += 1
            lags.setdefault(family, []).append(entry.listed_day)
    for family, delays in lags.items():
        out[family].blacklist_lag_days = float(np.mean(delays))

    pair_counts = [diff.counts() for diff in diffs]
    return LifecycleReport(
        snapshots=len(snapshots), cadence_days=cadence,
        diff_digests=[diff.digest for diff in diffs],
        chain_digest=diff_chain_digest(diffs),
        pair_counts=pair_counts, families=out)
