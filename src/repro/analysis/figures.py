"""Data series behind every figure in the paper's evaluation.

Each function returns plain data (lists/dicts) that a bench renders; the
ASCII renderers live in :mod:`repro.analysis.render`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.squatting.types import SQUAT_TYPE_ORDER, SquatMatch, SquatType


def squat_type_histogram(matches: Sequence[SquatMatch]) -> Dict[str, int]:
    """Fig 2: number of squatting domains per squatting type."""
    counts = Counter(m.squat_type for m in matches)
    return {t.value: counts.get(t, 0) for t in SQUAT_TYPE_ORDER}


def brand_accumulation_curve(matches: Sequence[SquatMatch]) -> List[float]:
    """Fig 3 / Fig 5: accumulated % of domains covered by top-k brands.

    Brands are sorted by their domain counts, descending; entry k-1 is the
    percentage covered by the top k brands.
    """
    counts = Counter(m.brand for m in matches)
    total = sum(counts.values())
    if total == 0:
        return []
    accumulated = 0
    curve: List[float] = []
    for _, count in counts.most_common():
        accumulated += count
        curve.append(100.0 * accumulated / total)
    return curve


def top_brands_by_count(
    matches: Sequence[SquatMatch], n: int = 5
) -> List[Tuple[str, int, float]]:
    """Fig 4: (brand, count, percent) for the brands with most squats."""
    counts = Counter(m.brand for m in matches)
    total = sum(counts.values())
    return [
        (brand, count, 100.0 * count / total)
        for brand, count in counts.most_common(n)
    ]


def alexa_rank_histogram(alexa, domains: Sequence[str]) -> Dict[str, int]:
    """Fig 6: Alexa rank buckets of phishing URLs' domains."""
    return alexa.histogram(domains)


def phishtank_squatting_histogram(reports) -> Dict[str, int]:
    """Fig 7: squatting types among PhishTank-reported URLs."""
    order = [t.value for t in SQUAT_TYPE_ORDER] + ["No"]
    counts: Dict[str, int] = {key: 0 for key in order}
    for report in reports:
        key = report.squat_type if report.squat_type is not None else "No"
        if key not in counts:
            counts[key] = 0
        counts[key] += 1
    return counts


def verified_phish_cdf(
    verified, profile: Optional[str] = None
) -> List[Tuple[int, float]]:
    """Fig 11: CDF of verified phishing domains per brand.

    Returns (domains-per-brand x, % of brands with ≤ x) points.
    """
    filtered = [
        v for v in verified
        if profile is None or profile in v.profiles
    ]
    counts = Counter(v.brand for v in filtered)
    if not counts:
        return []
    values = sorted(counts.values())
    n = len(values)
    points: List[Tuple[int, float]] = []
    for i, value in enumerate(values, start=1):
        points.append((value, 100.0 * i / n))
    return points


def phish_squat_type_histogram(verified, profile: Optional[str] = None) -> Dict[str, int]:
    """Fig 12: verified squatting phishing domains per squat type."""
    counts: Dict[str, int] = {t.value: 0 for t in SQUAT_TYPE_ORDER}
    for v in verified:
        if profile is not None and profile not in v.profiles:
            continue
        counts[v.squat_type.value] += 1
    return counts


def top_targeted_brands(verified, n: int = 70) -> List[Tuple[str, int, int]]:
    """Fig 13: brands by verified phishing page count (web, mobile)."""
    web = Counter(v.brand for v in verified if "web" in v.profiles)
    mobile = Counter(v.brand for v in verified if "mobile" in v.profiles)
    totals = Counter(v.brand for v in verified)
    out: List[Tuple[str, int, int]] = []
    for brand, _ in totals.most_common(n):
        out.append((brand, web.get(brand, 0), mobile.get(brand, 0)))
    return out


def liveness_series(
    snapshots, domains: Sequence[str]
) -> Dict[str, List[int]]:
    """Fig 17: live phishing pages per snapshot, split by profile."""
    series: Dict[str, List[int]] = {"web": [], "mobile": []}
    for snapshot in snapshots:
        for profile in ("web", "mobile"):
            live = sum(
                1 for domain in domains
                if (result := snapshot.get(domain, profile)) is not None
                and result.live and not result.redirected
            )
            series[profile].append(live)
    return series


def registration_year_histogram(whois, domains: Sequence[str]) -> Dict[int, int]:
    """Fig 16: registration years of phishing domains."""
    return whois.year_histogram(domains)


def geolocation_histogram(geoip, ips: Sequence[str]) -> Dict[str, int]:
    """Fig 15: hosting countries of phishing sites."""
    return geoip.histogram(ips)


# ----------------------------------------------------------------------
# enrichment-table variants: the same Fig 15/16 series computed from the
# bulk resolver's columnar table with one np.bincount over intern-id
# columns — no per-domain registry walk.  Value-identical to the registry
# functions above over the same domain selection.
# ----------------------------------------------------------------------

def _table_rows(table, domains: Optional[Sequence[str]]) -> np.ndarray:
    if domains is None:
        return np.arange(len(table.domains))
    return np.array([table.row_of(d) for d in domains], dtype=np.int64)


def geolocation_histogram_from_table(
        table, domains: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Fig 15 from enrichment columns (geo misses count as ``"??"``)."""
    rows = _table_rows(table, domains)
    ok = table.status["geo"][rows] == 0
    ids = np.bincount(table.country_id[rows][ok].astype(np.int64),
                      minlength=len(table.countries))
    counts = {table.countries[i]: int(n)
              for i, n in enumerate(ids) if i and n}
    missing = int(np.count_nonzero(~ok))
    if missing:
        counts["??"] = counts.get("??", 0) + missing
    return dict(sorted(counts.items(), key=lambda kv: -kv[1]))


def registration_year_histogram_from_table(
        table, domains: Optional[Sequence[str]] = None) -> Dict[int, int]:
    """Fig 16 from enrichment columns (WHOIS misses are skipped)."""
    rows = _table_rows(table, domains)
    ok = table.status["whois"][rows] == 0
    years = table.reg_year[rows][ok].astype(np.int64)
    if not len(years):
        return {}
    low = int(years.min())
    hist = np.bincount(years - low)
    return {low + i: int(n) for i, n in enumerate(hist) if n}


def registrar_histogram_from_table(
        table, domains: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Registrar counts from enrichment columns (misses are skipped)."""
    rows = _table_rows(table, domains)
    ok = table.status["whois"][rows] == 0
    ids = np.bincount(table.registrar_id[rows][ok].astype(np.int64),
                      minlength=len(table.registrars))
    return dict(sorted(
        ((table.registrars[i], int(n)) for i, n in enumerate(ids) if i and n),
        key=lambda kv: -kv[1]))
