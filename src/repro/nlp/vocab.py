"""Keyword vocabulary for the feature embedding (§5.2).

The paper's feature vector covers "keywords that frequently appear in the
ground-truth phishing pages as well as the keywords related to all the 766
brand names", giving a 987-dimensional sparse vector.  :class:`Vocabulary`
reproduces that construction: seed it with brand names, then fit the most
frequent ground-truth keywords on top.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Vocabulary:
    """An ordered keyword → index map."""

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        """Add a word (idempotent); returns its index."""
        word = word.lower()
        if word not in self._index:
            self._index[word] = len(self._index)
        return self._index[word]

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._index

    def index(self, word: str) -> Optional[int]:
        """Index of a word, or None if out of vocabulary."""
        return self._index.get(word.lower())

    def words(self) -> List[str]:
        """Words in index order."""
        return sorted(self._index, key=self._index.__getitem__)

    def fit_frequent(
        self,
        token_lists: Sequence[Sequence[str]],
        max_words: int,
        min_count: int = 2,
    ) -> int:
        """Add the most frequent tokens across documents.

        Args:
            token_lists: one token list per training document.
            max_words: stop once the vocabulary reaches this size.
            min_count: ignore tokens rarer than this across the corpus.

        Returns:
            Number of words added.
        """
        counter: Counter = Counter()
        for tokens in token_lists:
            counter.update(tokens)
        added = 0
        for word, count in counter.most_common():
            if len(self._index) >= max_words:
                break
            if count < min_count:
                break
            if word not in self._index:
                self.add(word)
                added += 1
        return added
