"""Word tokenization for page text."""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List

# Words are runs of letters/digits; domain-ish tokens keep inner hyphens so
# "go-uberfreight" survives as one token alongside its parts.
_WORD_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")


def tokenize(text: str, min_length: int = 2) -> List[str]:
    """Lowercase word tokens of ``text``.

    Hyphenated compounds are emitted both whole and as their parts, which
    lets brand keywords inside combo strings surface as features.
    """
    text = text.lower()
    tokens: List[str] = []
    for match in _WORD_RE.finditer(text):
        token = match.group(0)
        if len(token) >= min_length:
            tokens.append(token)
        if "-" in token:
            for part in token.split("-"):
                if len(part) >= min_length:
                    tokens.append(part)
    return tokens


def word_frequencies(tokens: Iterable[str]) -> Dict[str, int]:
    """Token → count map."""
    return dict(Counter(tokens))
