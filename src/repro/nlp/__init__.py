"""NLP substrate: tokenization, stopwords, vocabulary building.

Stands in for the paper's use of NLTK in §5.2: raw feature text is
tokenized, stopworded, spell-corrected (see :mod:`repro.ocr.spellcheck`) and
mapped onto a keyword vocabulary for the frequency embedding.
"""

from repro.nlp.stopwords import STOPWORDS, remove_stopwords
from repro.nlp.tokenizer import tokenize, word_frequencies
from repro.nlp.vocab import Vocabulary

__all__ = [
    "STOPWORDS",
    "Vocabulary",
    "remove_stopwords",
    "tokenize",
    "word_frequencies",
]
