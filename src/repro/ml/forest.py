"""Random Forest: bagged CART trees with per-split feature subsampling.

The paper's deployed model (Table 7: AUC 0.97).  Probability output is the
mean of member-tree leaf probabilities, which gives the smooth scores the
ROC analysis (Fig 10) needs.

Each tree's randomness comes from ``np.random.default_rng([seed, index])``
— a per-tree stream derived only from the forest seed and the tree's
position, never from how many trees were fitted before it.  That makes
tree fits order-independent, so ``fit(workers=N)`` can fan trees out over
a process pool and merge them back in index order with predictions that
byte-match the serial build.  ``workers`` is a pure throughput knob.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, check_xy
from repro.ml.tree import DecisionTree
from repro.perf.engine import process_map, shard

# Training matrix shipped once per worker via the pool initializer instead
# of once per task; workers look the forest parameters up here.
_FIT_CONTEXT: dict = {}


def _fit_init(forest: "RandomForest", x: "np.ndarray", y: "np.ndarray") -> None:
    _FIT_CONTEXT["forest"] = forest
    _FIT_CONTEXT["x"] = x
    _FIT_CONTEXT["y"] = y


def _fit_tree_chunk(indices: List[int]) -> List[DecisionTree]:
    forest = _FIT_CONTEXT["forest"]
    x = _FIT_CONTEXT["x"]
    y = _FIT_CONTEXT["y"]
    return [forest._fit_one_tree(index, x, y) for index in indices]


class RandomForest(Classifier):
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_trees: int = 40,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: int = 7,
        legacy: bool = False,
    ) -> None:
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.legacy = legacy
        self._trees: Optional[List[DecisionTree]] = None

    def _features_per_split(self, total: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(total)))
        if self.max_features == "log2":
            return max(1, int(math.log2(total)))
        if self.max_features is None:
            return None
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def _fit_one_tree(self, index: int, x: "np.ndarray", y: "np.ndarray") -> DecisionTree:
        """Fit tree ``index`` from its own seed stream (order-independent)."""
        tree_rng = np.random.default_rng([self.seed, index])
        n = x.shape[0]
        sample = tree_rng.integers(0, n, size=n)
        tree = DecisionTree(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._features_per_split(x.shape[1]),
            rng=tree_rng,
            legacy=self.legacy,
        )
        if self.legacy:
            return tree.fit(x[sample], y[sample])
        # hand the bootstrap to the indexed build as row indices — same
        # fitted tree, no full-width (n × features) copy per tree
        return tree.fit(x, y, sample=sample)

    def fit(self, x, y, workers: int = 1) -> "RandomForest":
        x, y = check_xy(x, y)
        if len(y) == 0:
            raise ValueError("empty training set")
        indices = list(range(self.n_trees))
        if workers <= 1:
            self._trees = [self._fit_one_tree(i, x, y) for i in indices]
            return self
        chunk = max(1, math.ceil(self.n_trees / (workers * 4)))
        chunks = process_map(
            _fit_tree_chunk,
            shard(indices, chunk),
            workers=workers,
            initializer=_fit_init,
            initargs=(self, x, y),
        )
        # merge in index order: chunk results come back in submission order
        self._trees = [tree for part in chunks for tree in part]
        return self

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_trees")
        x, _ = check_xy(x)
        votes = np.zeros(x.shape[0])
        for tree in self._trees:
            votes += tree.predict_proba(x)
        return votes / len(self._trees)

    @property
    def feature_importances(self) -> "np.ndarray":
        """Mean impurity-decrease importance across member trees."""
        self._require_fitted("_trees")
        stacked = np.stack([tree.feature_importances for tree in self._trees])
        mean = stacked.mean(axis=0)
        total = mean.sum()
        return mean / total if total else mean

    def top_features(self, names: Optional[List[str]] = None, n: int = 10):
        """(name-or-index, importance) pairs, most important first."""
        importances = self.feature_importances
        order = np.argsort(-importances)[:n]
        out = []
        for index in order:
            label = names[index] if names is not None else int(index)
            out.append((label, float(importances[index])))
        return out
