"""Random Forest: bagged CART trees with per-split feature subsampling.

The paper's deployed model (Table 7: AUC 0.97).  Probability output is the
mean of member-tree leaf probabilities, which gives the smooth scores the
ROC analysis (Fig 10) needs.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, check_xy
from repro.ml.tree import DecisionTree


class RandomForest(Classifier):
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_trees: int = 40,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: int = 7,
    ) -> None:
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: Optional[List[DecisionTree]] = None

    def _features_per_split(self, total: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(total)))
        if self.max_features == "log2":
            return max(1, int(math.log2(total)))
        if self.max_features is None:
            return None
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, x, y) -> "RandomForest":
        x, y = check_xy(x, y)
        if len(y) == 0:
            raise ValueError("empty training set")
        rng = np.random.default_rng(self.seed)
        per_split = self._features_per_split(x.shape[1])
        self._trees = []
        n = x.shape[0]
        for _ in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=per_split,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(x[sample], y[sample])
            self._trees.append(tree)
        return self

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_trees")
        x, _ = check_xy(x)
        votes = np.zeros(x.shape[0])
        for tree in self._trees:
            votes += tree.predict_proba(x)
        return votes / len(self._trees)

    @property
    def feature_importances(self) -> "np.ndarray":
        """Mean impurity-decrease importance across member trees."""
        self._require_fitted("_trees")
        stacked = np.stack([tree.feature_importances for tree in self._trees])
        mean = stacked.mean(axis=0)
        total = mean.sum()
        return mean / total if total else mean

    def top_features(self, names: Optional[List[str]] = None, n: int = 10):
        """(name-or-index, importance) pairs, most important first."""
        importances = self.feature_importances
        order = np.argsort(-importances)[:n]
        out = []
        for index in order:
            label = names[index] if names is not None else int(index)
            out.append((label, float(importances[index])))
        return out
