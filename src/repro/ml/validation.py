"""Stratified k-fold cross-validation (Table 7 uses 10-fold).

Folds are independent given the split assignment, so ``cross_validate``
can fan them out over a process pool.  Every fold's out-of-fold scores are
written back into one pooled array indexed by the fold's test indices —
positions never overlap, so the merged array is byte-identical no matter
how many workers ran or in what order folds finished.  ``workers`` is a
pure throughput knob.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from repro.ml.base import Classifier
from repro.ml.metrics import ClassificationReport, classification_report
from repro.perf.engine import process_map

# (make_model, x, y) shipped once per worker via the pool initializer.
_CV_CONTEXT: dict = {}


def _cv_init(make_model, x: "np.ndarray", y: "np.ndarray") -> None:
    _CV_CONTEXT["make_model"] = make_model
    _CV_CONTEXT["x"] = x
    _CV_CONTEXT["y"] = y


def _cv_fold(split: Tuple["np.ndarray", "np.ndarray"]):
    train_idx, test_idx = split
    x = _CV_CONTEXT["x"]
    y = _CV_CONTEXT["y"]
    model = _CV_CONTEXT["make_model"]()
    model.fit(x[train_idx], y[train_idx])
    return test_idx, model.predict_proba(x[test_idx])


def stratified_kfold(
    y, k: int = 10, seed: int = 13
) -> Iterator[Tuple["np.ndarray", "np.ndarray"]]:
    """Yield (train_idx, test_idx) pairs with per-class balance."""
    y = np.asarray(y).astype(int)
    if k < 2:
        raise ValueError("k must be >= 2")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(len(y), dtype=int)
    for cls in np.unique(y):
        members = np.nonzero(y == cls)[0]
        members = members[rng.permutation(len(members))]
        for i, index in enumerate(members):
            fold_of[index] = i % k
    for fold in range(k):
        test_mask = fold_of == fold
        yield np.nonzero(~test_mask)[0], np.nonzero(test_mask)[0]


def cross_validate(
    make_model: Callable[[], Classifier],
    x,
    y,
    k: int = 10,
    seed: int = 13,
    threshold: float = 0.5,
    workers: int = 1,
) -> ClassificationReport:
    """k-fold CV; metrics are computed over the pooled out-of-fold scores.

    Pooling (rather than averaging per-fold metrics) matches how a single
    Table 7 row summarizes one model.  With ``workers > 1`` the folds fit
    concurrently; ``make_model`` must then be picklable (a module-level
    function or callable object, not a lambda).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y).astype(int)
    scores = np.empty(len(y), dtype=np.float64)
    splits = list(stratified_kfold(y, k=k, seed=seed))
    if workers <= 1:
        for train_idx, test_idx in splits:
            model = make_model()
            model.fit(x[train_idx], y[train_idx])
            scores[test_idx] = model.predict_proba(x[test_idx])
    else:
        results = process_map(
            _cv_fold,
            splits,
            workers=workers,
            initializer=_cv_init,
            initargs=(make_model, x, y),
        )
        for test_idx, fold_scores in results:
            scores[test_idx] = fold_scores
    return classification_report(y, scores, threshold=threshold)
