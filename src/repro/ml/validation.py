"""Stratified k-fold cross-validation (Table 7 uses 10-fold)."""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from repro.ml.base import Classifier
from repro.ml.metrics import ClassificationReport, classification_report


def stratified_kfold(
    y, k: int = 10, seed: int = 13
) -> Iterator[Tuple["np.ndarray", "np.ndarray"]]:
    """Yield (train_idx, test_idx) pairs with per-class balance."""
    y = np.asarray(y).astype(int)
    if k < 2:
        raise ValueError("k must be >= 2")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(len(y), dtype=int)
    for cls in np.unique(y):
        members = np.nonzero(y == cls)[0]
        members = members[rng.permutation(len(members))]
        for i, index in enumerate(members):
            fold_of[index] = i % k
    for fold in range(k):
        test_mask = fold_of == fold
        yield np.nonzero(~test_mask)[0], np.nonzero(test_mask)[0]


def cross_validate(
    make_model: Callable[[], Classifier],
    x,
    y,
    k: int = 10,
    seed: int = 13,
    threshold: float = 0.5,
) -> ClassificationReport:
    """k-fold CV; metrics are computed over the pooled out-of-fold scores.

    Pooling (rather than averaging per-fold metrics) matches how a single
    Table 7 row summarizes one model.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y).astype(int)
    scores = np.empty(len(y), dtype=np.float64)
    for train_idx, test_idx in stratified_kfold(y, k=k, seed=seed):
        model = make_model()
        model.fit(x[train_idx], y[train_idx])
        scores[test_idx] = model.predict_proba(x[test_idx])
    return classification_report(y, scores, threshold=threshold)
