"""Shared classifier interface and input validation."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_xy(x, y=None) -> Tuple["np.ndarray", "np.ndarray"]:
    """Coerce inputs to float64/int arrays and validate shapes."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {x.shape}")
    if y is None:
        return x, np.empty(0, dtype=np.int64)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(y) != x.shape[0]:
        raise ValueError(f"X has {x.shape[0]} rows but y has {len(y)}")
    y = y.astype(np.int64)
    return x, y


class Classifier:
    """Minimal fit/predict/predict_proba contract.

    ``predict_proba`` returns P(class 1) as a 1-D array — all models here
    are binary (phishing vs benign).
    """

    def fit(self, x, y) -> "Classifier":
        raise NotImplementedError

    def predict_proba(self, x) -> "np.ndarray":
        raise NotImplementedError

    def predict(self, x, threshold: float = 0.5) -> "np.ndarray":
        """Thresholded class prediction."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted yet")
