"""Naive Bayes classifiers over keyword-frequency vectors.

Multinomial NB is the natural model for frequency embeddings; Bernoulli NB
(presence/absence) is provided for comparison.  Both use Laplace smoothing
and operate in log space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy


class MultinomialNaiveBayes(Classifier):
    """Multinomial NB with Laplace smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._log_prior: Optional["np.ndarray"] = None
        self._log_likelihood: Optional["np.ndarray"] = None

    def fit(self, x, y) -> "MultinomialNaiveBayes":
        x, y = check_xy(x, y)
        if np.any(x < 0):
            raise ValueError("multinomial NB requires non-negative features")
        counts = np.array([(y == c).sum() for c in (0, 1)], dtype=np.float64)
        if np.any(counts == 0):
            raise ValueError("training data must contain both classes")
        self._log_prior = np.log(counts / counts.sum())
        feature_counts = np.stack([x[y == c].sum(axis=0) for c in (0, 1)])
        smoothed = feature_counts + self.alpha
        self._log_likelihood = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        return self

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_log_prior")
        x, _ = check_xy(x)
        joint = x @ self._log_likelihood.T + self._log_prior  # (n, 2)
        # normalize in log space
        shift = joint.max(axis=1, keepdims=True)
        probs = np.exp(joint - shift)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]


class BernoulliNaiveBayes(Classifier):
    """Bernoulli NB over binarized features."""

    def __init__(self, alpha: float = 1.0, binarize_threshold: float = 0.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.binarize_threshold = binarize_threshold
        self._log_prior: Optional["np.ndarray"] = None
        self._log_p: Optional["np.ndarray"] = None
        self._log_not_p: Optional["np.ndarray"] = None

    def _binarize(self, x: "np.ndarray") -> "np.ndarray":
        return (x > self.binarize_threshold).astype(np.float64)

    def fit(self, x, y) -> "BernoulliNaiveBayes":
        x, y = check_xy(x, y)
        x = self._binarize(x)
        counts = np.array([(y == c).sum() for c in (0, 1)], dtype=np.float64)
        if np.any(counts == 0):
            raise ValueError("training data must contain both classes")
        self._log_prior = np.log(counts / counts.sum())
        present = np.stack([x[y == c].sum(axis=0) for c in (0, 1)])
        p = (present + self.alpha) / (counts[:, None] + 2 * self.alpha)
        self._log_p = np.log(p)
        self._log_not_p = np.log(1.0 - p)
        return self

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_log_prior")
        x, _ = check_xy(x)
        x = self._binarize(x)
        joint = (
            x @ self._log_p.T
            + (1.0 - x) @ self._log_not_p.T
            + self._log_prior
        )
        shift = joint.max(axis=1, keepdims=True)
        probs = np.exp(joint - shift)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]
