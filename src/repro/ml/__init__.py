"""ML substrate: the paper's three classifiers and evaluation machinery.

§5.2 trains Naive Bayes, k-NN, and Random Forest on the keyword-frequency
embedding and picks Random Forest (FP 0.03 / FN 0.06 / AUC 0.97).  All three
are implemented here from scratch on numpy, along with the metrics (ROC,
AUC, confusion rates) and stratified k-fold cross-validation used by
Table 7 / Fig 10.
"""

from repro.ml.base import Classifier, check_xy
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.knn import KNearestNeighbors
from repro.ml.tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.metrics import (
    ClassificationReport,
    auc_score,
    classification_report,
    confusion_matrix,
    roc_curve,
)
from repro.ml.validation import cross_validate, stratified_kfold

__all__ = [
    "BernoulliNaiveBayes",
    "ClassificationReport",
    "Classifier",
    "DecisionTree",
    "KNearestNeighbors",
    "MultinomialNaiveBayes",
    "RandomForest",
    "auc_score",
    "check_xy",
    "classification_report",
    "confusion_matrix",
    "cross_validate",
    "roc_curve",
    "stratified_kfold",
]
