"""Classification metrics: confusion rates, ROC, AUC (Table 7 / Fig 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def confusion_matrix(y_true, y_pred) -> Tuple[int, int, int, int]:
    """Return (tn, fp, fn, tp)."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have equal length")
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    return tn, fp, fn, tp


def roc_curve(y_true, scores) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """ROC points (fpr, tpr, thresholds), thresholds descending."""
    y_true = np.asarray(y_true).astype(int)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have equal length")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    positives = sorted_true.sum()
    negatives = len(sorted_true) - positives
    if positives == 0 or negatives == 0:
        raise ValueError("ROC requires both classes present")
    tp_cum = np.cumsum(sorted_true)
    fp_cum = np.cumsum(1 - sorted_true)
    # keep the last point of each tied-score run
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    tpr = np.concatenate(([0.0], tp_cum[distinct] / positives))
    fpr = np.concatenate(([0.0], fp_cum[distinct] / negatives))
    thresholds = np.concatenate(([np.inf], sorted_scores[distinct]))
    return fpr, tpr, thresholds


def auc_score(y_true, scores) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    # trapezoidal rule (np.trapz was removed in numpy 2.0)
    return float(np.sum((fpr[1:] - fpr[:-1]) * (tpr[1:] + tpr[:-1]) / 2.0))


@dataclass
class ClassificationReport:
    """The four Table 7 columns plus the raw confusion counts."""

    false_positive_rate: float
    false_negative_rate: float
    auc: float
    accuracy: float
    tn: int = 0
    fp: int = 0
    fn: int = 0
    tp: int = 0

    def row(self) -> Tuple[float, float, float, float]:
        return (
            self.false_positive_rate,
            self.false_negative_rate,
            self.auc,
            self.accuracy,
        )


def classification_report(y_true, scores, threshold: float = 0.5) -> ClassificationReport:
    """Compute the Table 7 metrics from scores."""
    y_true = np.asarray(y_true).astype(int)
    scores = np.asarray(scores, dtype=np.float64)
    y_pred = (scores >= threshold).astype(int)
    tn, fp, fn, tp = confusion_matrix(y_true, y_pred)
    fpr = fp / (fp + tn) if (fp + tn) else 0.0
    fnr = fn / (fn + tp) if (fn + tp) else 0.0
    accuracy = (tp + tn) / len(y_true) if len(y_true) else 0.0
    return ClassificationReport(
        false_positive_rate=fpr,
        false_negative_rate=fnr,
        auc=auc_score(y_true, scores),
        accuracy=accuracy,
        tn=tn, fp=fp, fn=fn, tp=tp,
    )
