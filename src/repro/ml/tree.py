"""CART decision tree (gini impurity, binary classification).

Split search is fully vectorized: all candidate feature columns are sorted
in one 2-D pass and every boundary's gini gain is scored by
cumulative-class-count scans over the whole (samples × features) block —
no per-feature Python loop.  Prediction is vectorized too: the fitted tree
is flattened into parallel node arrays and a whole matrix descends level
by level.

Both hot paths keep a *reference* twin (``legacy=True``) — the original
per-feature / per-row implementations — used by the equivalence tests and
``benchmarks/bench_training.py`` to prove the vectorized paths return
byte-identical outputs while measuring their speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy


@dataclass
class _Node:
    """One tree node; leaves carry the positive-class probability."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree(Classifier):
    """Binary CART tree."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional["np.random.Generator"] = None,
        legacy: bool = False,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self.legacy = legacy
        self._root: Optional[_Node] = None
        self._n_features = 0

    def fit(self, x, y, sample: Optional["np.ndarray"] = None) -> "DecisionTree":
        """Fit on ``x``/``y``, or on the rows ``sample`` indexes into them.

        ``sample`` (bootstrap row indices, possibly repeating) trains the
        tree exactly as ``fit(x[sample], y[sample])`` would — the indexed
        build keeps the sample's row order — without materializing the
        full-width copy.
        """
        x, y = check_xy(x, y)
        if len(y if sample is None else sample) == 0:
            raise ValueError("empty training set")
        self._n_features = x.shape[1]
        self._importance = np.zeros(self._n_features)
        y = y.astype(np.float64)
        if self.legacy:
            if sample is not None:
                x, y = x[sample], y[sample]
            self._n_samples = x.shape[0]
            self._root = self._build(x, y, depth=0)
        else:
            if sample is None:
                sample = np.arange(x.shape[0], dtype=np.int64)
            else:
                sample = np.asarray(sample, dtype=np.int64)
            self._n_samples = len(sample)
            # recurse on row indices into the one full matrix: a node only
            # ever materializes its (rows × candidate-features) block, never
            # a full-width copy of x per side like the reference build does
            self._root = self._build_indexed(x, y, sample, depth=0)
        self._flatten()
        return self

    @property
    def feature_importances(self) -> "np.ndarray":
        """Impurity-decrease importance per feature (sums to 1 if any)."""
        self._require_fitted("_root")
        total = self._importance.sum()
        if total == 0:
            return self._importance.copy()
        return self._importance / total

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_root")
        x, _ = check_xy(x)
        if self.legacy:
            return self._predict_proba_reference(x)
        # vectorized descent: every row tracks its current node index and
        # the whole batch steps one level at a time.  The comparisons are
        # the same ``row[feature] <= threshold`` floats as the reference
        # walk, so the leaf assignment (and output) is byte-identical.
        index = np.zeros(x.shape[0], dtype=np.int64)
        active = np.nonzero(self._node_feature[index] >= 0)[0]
        while len(active):
            at = index[active]
            go_left = (x[active, self._node_feature[at]]
                       <= self._node_threshold[at])
            index[active] = np.where(go_left, self._node_left[at],
                                     self._node_right[at])
            active = active[self._node_feature[index[active]] >= 0]
        return self._node_value[index]

    def _predict_proba_reference(self, x: "np.ndarray") -> "np.ndarray":
        """Reference per-row node walk (the pre-vectorization hot path)."""
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def _flatten(self) -> None:
        """Linearize the node tree into parallel arrays for batch descent.

        ``feature == -1`` marks a leaf; internal nodes carry child indices
        into the same arrays.
        """
        features, thresholds, lefts, rights, values = [], [], [], [], []

        def walk(node: _Node) -> int:
            index = len(features)
            features.append(node.feature if not node.is_leaf else -1)
            thresholds.append(node.threshold)
            lefts.append(0)
            rights.append(0)
            values.append(node.prediction)
            if not node.is_leaf:
                lefts[index] = walk(node.left)
                rights[index] = walk(node.right)
            return index

        walk(self._root)
        self._node_feature = np.array(features, dtype=np.int64)
        self._node_threshold = np.array(thresholds, dtype=np.float64)
        self._node_left = np.array(lefts, dtype=np.int64)
        self._node_right = np.array(rights, dtype=np.int64)
        self._node_value = np.array(values, dtype=np.float64)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def _build(self, x: "np.ndarray", y: "np.ndarray", depth: int) -> _Node:
        prediction = float(y.mean())
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return _Node(prediction=prediction)
        feature, threshold = self._best_split(x, y)
        if feature < 0:
            return _Node(prediction=prediction)
        mask = x[:, feature] <= threshold
        # weighted impurity decrease, accumulated for feature importances
        n = len(y)
        parent_gini = self._gini(y.sum(), n)
        left_gini = self._gini(y[mask].sum(), mask.sum())
        right_gini = self._gini(y[~mask].sum(), n - mask.sum())
        children_gini = (mask.sum() * left_gini + (n - mask.sum()) * right_gini) / n
        self._importance[feature] += (n / self._n_samples) * (parent_gini - children_gini)
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        return _Node(
            prediction=prediction, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _build_indexed(self, x: "np.ndarray", y: "np.ndarray",
                       idx: "np.ndarray", depth: int) -> _Node:
        """The vectorized build: identical recursion to :meth:`_build`, but
        a node carries its *row indices* into the one full matrix instead
        of a full-width copy of its slice — the split search then gathers
        only the (rows × candidate-features) block it actually scans."""
        labels = y[idx]
        prediction = float(labels.mean())
        if (
            depth >= self.max_depth
            or len(idx) < self.min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return _Node(prediction=prediction)
        feature, threshold = self._split_indexed(x, labels, idx)
        if feature < 0:
            return _Node(prediction=prediction)
        go_left = x[idx, feature] <= threshold
        n = len(idx)
        parent_gini = self._gini(labels.sum(), n)
        left_gini = self._gini(labels[go_left].sum(), go_left.sum())
        right_gini = self._gini(labels[~go_left].sum(), n - go_left.sum())
        children_gini = (go_left.sum() * left_gini
                         + (n - go_left.sum()) * right_gini) / n
        self._importance[feature] += (n / self._n_samples) * (parent_gini - children_gini)
        left = self._build_indexed(x, y, idx[go_left], depth + 1)
        right = self._build_indexed(x, y, idx[~go_left], depth + 1)
        return _Node(
            prediction=prediction, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _candidate_features(self, total_features: int) -> "np.ndarray":
        if self.max_features and self.max_features < total_features:
            return self.rng.choice(total_features, size=self.max_features,
                                   replace=False)
        return np.arange(total_features)

    def _best_split(self, x: "np.ndarray", y: "np.ndarray") -> tuple:
        if self.legacy:
            return self._best_split_reference(x, y)
        features = self._candidate_features(x.shape[1])
        return self._scan_columns(x[:, features], y, features)

    def _split_indexed(self, x: "np.ndarray", labels: "np.ndarray",
                       idx: "np.ndarray") -> tuple:
        features = self._candidate_features(x.shape[1])
        columns = x[idx[:, None], features[None, :]]
        return self._scan_columns(columns, labels, features)

    def _scan_columns(self, columns: "np.ndarray", y: "np.ndarray",
                      features: "np.ndarray") -> tuple:
        """Best (feature, threshold) over the gathered candidate columns.

        One 2-D pass: sort every candidate column at once, scan cumulative
        positive counts for every boundary of every column, and pick the
        first feature (in candidate order) attaining the maximal gain —
        exactly the winner the reference per-feature loop selects, because
        ``argmax`` breaks ties toward the earlier boundary / feature just
        as the loop's strict ``>`` update does.
        """
        n = columns.shape[0]
        positives = y.sum()
        parent_gini = self._gini(positives, n)

        order = np.argsort(columns, axis=0, kind="stable")
        sorted_cols = np.take_along_axis(columns, order, axis=0)
        cum_pos = np.cumsum(y[order], axis=0)                  # (n, m)

        left_n = np.arange(1, n, dtype=np.int64)[:, None]      # (n-1, 1)
        right_n = n - left_n
        boundary = sorted_cols[1:] > sorted_cols[:-1]          # (n-1, m)
        valid = boundary & (left_n >= self.min_samples_leaf) \
            & (right_n >= self.min_samples_leaf)
        left_pos = cum_pos[:-1]
        right_pos = positives - left_pos
        gini_left = self._gini_vec(left_pos, left_n)
        gini_right = self._gini_vec(right_pos, right_n)
        children = (left_n * gini_left + right_n * gini_right) / n
        gains = np.where(valid, parent_gini - children, -1.0)  # (n-1, m)

        per_feature_row = gains.argmax(axis=0)                 # first max per column
        per_feature_gain = gains[per_feature_row, np.arange(gains.shape[1])]
        winner = int(per_feature_gain.argmax())                # first max across columns
        if per_feature_gain[winner] <= 1e-12:
            return (-1, 0.0)
        row = per_feature_row[winner]
        threshold = (sorted_cols[row, winner] + sorted_cols[row + 1, winner]) / 2.0
        return (int(features[winner]), float(threshold))

    def _best_split_reference(self, x: "np.ndarray", y: "np.ndarray") -> tuple:
        """Reference per-feature split loop (the pre-vectorization search)."""
        n = x.shape[0]
        positives = y.sum()
        features = self._candidate_features(x.shape[1])

        best_gain = 1e-12
        best = (-1, 0.0)
        parent_gini = self._gini(positives, n)
        for feature in features:
            column = x[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_y = y[order]
            # cumulative positives left of each boundary
            cum_pos = np.cumsum(sorted_y)
            boundaries = np.nonzero(sorted_col[1:] > sorted_col[:-1])[0]
            if len(boundaries) == 0:
                continue
            left_n = boundaries + 1
            right_n = n - left_n
            valid = (left_n >= self.min_samples_leaf) & (right_n >= self.min_samples_leaf)
            if not valid.any():
                continue
            left_pos = cum_pos[boundaries]
            right_pos = positives - left_pos
            gini_left = self._gini_vec(left_pos, left_n)
            gini_right = self._gini_vec(right_pos, right_n)
            children = (left_n * gini_left + right_n * gini_right) / n
            gains = np.where(valid, parent_gini - children, -1.0)
            index = int(gains.argmax())
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                boundary = boundaries[index]
                threshold = (sorted_col[boundary] + sorted_col[boundary + 1]) / 2.0
                best = (int(feature), float(threshold))
        return best

    @staticmethod
    def _gini(positives: float, count: float) -> float:
        if count == 0:
            return 0.0
        p = positives / count
        return 2.0 * p * (1.0 - p)

    @staticmethod
    def _gini_vec(positives: "np.ndarray", counts: "np.ndarray") -> "np.ndarray":
        # every caller passes counts >= 1 (boundary side sizes), so the
        # plain divide is safe and skips the where/out masking machinery
        p = positives / counts
        return 2.0 * p * (1.0 - p)
