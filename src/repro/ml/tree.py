"""CART decision tree (gini impurity, binary classification).

Node splitting is vectorized: candidate thresholds per feature come from
sorting the feature column once and evaluating the gini gain of every
boundary in one pass.  Trees support feature subsampling per split so the
forest can decorrelate its members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy


@dataclass
class _Node:
    """One tree node; leaves carry the positive-class probability."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree(Classifier):
    """Binary CART tree."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional["np.random.Generator"] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self._n_features = 0

    def fit(self, x, y) -> "DecisionTree":
        x, y = check_xy(x, y)
        if len(y) == 0:
            raise ValueError("empty training set")
        self._n_features = x.shape[1]
        self._importance = np.zeros(self._n_features)
        self._n_samples = x.shape[0]
        self._root = self._build(x, y.astype(np.float64), depth=0)
        return self

    @property
    def feature_importances(self) -> "np.ndarray":
        """Impurity-decrease importance per feature (sums to 1 if any)."""
        self._require_fitted("_root")
        total = self._importance.sum()
        if total == 0:
            return self._importance.copy()
        return self._importance / total

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_root")
        x, _ = check_xy(x)
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    # ------------------------------------------------------------------
    def _build(self, x: "np.ndarray", y: "np.ndarray", depth: int) -> _Node:
        prediction = float(y.mean())
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return _Node(prediction=prediction)
        feature, threshold = self._best_split(x, y)
        if feature < 0:
            return _Node(prediction=prediction)
        mask = x[:, feature] <= threshold
        # weighted impurity decrease, accumulated for feature importances
        n = len(y)
        parent_gini = self._gini(y.sum(), n)
        left_gini = self._gini(y[mask].sum(), mask.sum())
        right_gini = self._gini(y[~mask].sum(), n - mask.sum())
        children_gini = (mask.sum() * left_gini + (n - mask.sum()) * right_gini) / n
        self._importance[feature] += (n / self._n_samples) * (parent_gini - children_gini)
        left = self._build(x[mask], y[mask], depth + 1)
        right = self._build(x[~mask], y[~mask], depth + 1)
        return _Node(
            prediction=prediction, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _best_split(self, x: "np.ndarray", y: "np.ndarray") -> tuple:
        n, total_features = x.shape
        positives = y.sum()
        if self.max_features and self.max_features < total_features:
            features = self.rng.choice(total_features, size=self.max_features, replace=False)
        else:
            features = np.arange(total_features)

        best_gain = 1e-12
        best = (-1, 0.0)
        parent_gini = self._gini(positives, n)
        for feature in features:
            column = x[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_y = y[order]
            # cumulative positives left of each boundary
            cum_pos = np.cumsum(sorted_y)
            boundaries = np.nonzero(sorted_col[1:] > sorted_col[:-1])[0]
            if len(boundaries) == 0:
                continue
            left_n = boundaries + 1
            right_n = n - left_n
            valid = (left_n >= self.min_samples_leaf) & (right_n >= self.min_samples_leaf)
            if not valid.any():
                continue
            left_pos = cum_pos[boundaries]
            right_pos = positives - left_pos
            gini_left = self._gini_vec(left_pos, left_n)
            gini_right = self._gini_vec(right_pos, right_n)
            children = (left_n * gini_left + right_n * gini_right) / n
            gains = np.where(valid, parent_gini - children, -1.0)
            index = int(gains.argmax())
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                boundary = boundaries[index]
                threshold = (sorted_col[boundary] + sorted_col[boundary + 1]) / 2.0
                best = (int(feature), float(threshold))
        return best

    @staticmethod
    def _gini(positives: float, count: float) -> float:
        if count == 0:
            return 0.0
        p = positives / count
        return 2.0 * p * (1.0 - p)

    @staticmethod
    def _gini_vec(positives: "np.ndarray", counts: "np.ndarray") -> "np.ndarray":
        p = np.divide(positives, counts, out=np.zeros_like(positives, dtype=np.float64),
                      where=counts > 0)
        return 2.0 * p * (1.0 - p)
