"""k-nearest-neighbour classifier with cosine or euclidean distance.

Cosine distance is the default: keyword-frequency vectors vary greatly in
total length (long benign pages vs terse phishing forms), and cosine
normalizes that away.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy


class KNearestNeighbors(Classifier):
    """Brute-force k-NN (datasets at our scale fit comfortably in memory)."""

    def __init__(self, k: int = 5, metric: str = "cosine") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if metric not in ("cosine", "euclidean"):
            raise ValueError(f"unsupported metric {metric!r}")
        self.k = k
        self.metric = metric
        self._x: Optional["np.ndarray"] = None
        self._y: Optional["np.ndarray"] = None
        self._norms: Optional["np.ndarray"] = None

    def fit(self, x, y) -> "KNearestNeighbors":
        x, y = check_xy(x, y)
        if len(y) == 0:
            raise ValueError("empty training set")
        self._x = x
        self._y = y
        if self.metric == "cosine":
            self._norms = np.linalg.norm(x, axis=1)
            self._norms[self._norms == 0] = 1.0
        return self

    def _distances(self, x: "np.ndarray") -> "np.ndarray":
        assert self._x is not None
        if self.metric == "cosine":
            norms = np.linalg.norm(x, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            similarity = (x / norms) @ (self._x / self._norms[:, None]).T
            return 1.0 - similarity
        # euclidean via the expansion trick
        sq_train = (self._x ** 2).sum(axis=1)
        sq_test = (x ** 2).sum(axis=1)[:, None]
        cross = x @ self._x.T
        return np.sqrt(np.maximum(sq_test - 2 * cross + sq_train, 0.0))

    def predict_proba(self, x) -> "np.ndarray":
        self._require_fitted("_x")
        x, _ = check_xy(x)
        distances = self._distances(x)
        k = min(self.k, distances.shape[1])
        neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
        neighbour_labels = self._y[neighbour_idx]
        return neighbour_labels.mean(axis=1)
