"""Topological stage execution with checkpointing and incremental re-runs.

:class:`StageRunner` walks a :class:`~repro.stages.graph.StageGraph` in
topological order and, for each stage, decides between two paths:

* **execute** — run ``stage.compute`` with wall-clock charged to the
  shared :class:`~repro.perf.report.PerfReport` under the stage's name
  (every stage, uniformly — no hand-rolled ``perf_counter`` pairs), then
  digest and store its outputs;
* **load** — when resuming a previous run whose manifest holds a
  completed record with an identical *fingerprint* (code digest + config
  slice digest + input artifact digests) and the store still has all the
  output objects, skip execution and load the artifacts instead,
  replaying the stage's recorded accounting deltas (crawl health,
  injected-fault tallies, simulated-clock advance) so downstream stages
  observe exactly the state a fresh serial run would have produced.

That replay is what keeps the PR-2 determinism contract across
persistence: a resumed or incrementally re-executed pipeline yields
byte-identical crawl digests and identical verified sets, because cached
stages are indistinguishable — to everything downstream — from stages
that actually ran.

``from_stage`` forces a stage and its whole downstream closure to
re-execute (the CLI's ``--from-stage``); ``stop_after`` ends the walk
early after a named stage, which is how tests and the CI resume-smoke job
simulate a killed process at stage granularity (mid-*crawl* kills are
covered by the store's partial checkpoints instead).
"""

from __future__ import annotations

import hashlib
import inspect
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Set

from repro.stages.artifacts import Artifact, derived_digest
from repro.stages.graph import Stage, StageGraph
from repro.stages.store import ArtifactStore, RunManifest, StageRecord


def code_digest(fn: Any) -> str:
    """Fingerprint a stage's implementation by its source text.

    Editing stage code invalidates its cached artifacts; when source is
    unavailable (REPL lambdas, C extensions) the qualified name stands in,
    trading edit-sensitivity for availability.
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        source = getattr(fn, "__qualname__", repr(fn))
    return hashlib.sha256(source.encode("utf-8", "surrogatepass")).hexdigest()


#: Pure throughput knobs: the determinism contract guarantees none of
#: them can change an artifact byte, so none of them may appear in a
#: stage's config slice — changing ``--train-workers`` must never
#: invalidate a stored stage.  ``config_slice_digest`` enforces this.
THROUGHPUT_FIELDS = frozenset({
    "scan_workers", "crawl_workers", "train_workers", "extract_workers",
    "enrich_workers", "enrich_hedging",
    "serve_workers", "serve_max_batch", "serve_max_delay",
    "capture_cache", "checkpoint_interval", "legacy_ml",
})


def config_slice_digest(config: Any, fields: Iterable[str]) -> str:
    """Digest of the named config fields' reprs (sorted by field name)."""
    names = sorted(fields)
    banned = THROUGHPUT_FIELDS.intersection(names)
    if banned:
        raise ValueError(
            f"throughput knobs cannot enter a stage fingerprint: {sorted(banned)}")
    parts = [f"{name}={getattr(config, name)!r}" for name in names]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


@dataclass
class StageContext:
    """Per-stage handle the runner passes into ``compute``.

    Exposes the store's partial-checkpoint slots bound to this run,
    stage, and fingerprint — the fold-in point for the crawler's
    ``CrawlCheckpoint``.
    """

    store: ArtifactStore
    run_id: str
    stage: str
    fingerprint: Dict[str, str]

    def partial(self) -> Optional[Any]:
        """Mid-stage progress from an interrupted prior attempt, if any."""
        return self.store.load_partial(self.run_id, self.stage, self.fingerprint)

    def save_partial(self, payload: Any) -> None:
        self.store.save_partial(self.run_id, self.stage, self.fingerprint, payload)

    def clear_partial(self) -> None:
        self.store.clear_partial(self.run_id, self.stage)


@dataclass
class RunOutcome:
    """What a runner walk produced."""

    artifacts: Dict[str, Artifact]
    manifest: RunManifest
    interrupted: bool = False

    def payloads(self) -> Dict[str, Any]:
        return {name: a.payload for name, a in self.artifacts.items()}


@dataclass
class _Accounting:
    """Mutable run-level state stages charge as a side effect.

    The runner snapshots it around each executed stage and stores the
    delta in the manifest; loading the stage from cache replays the delta
    so fresh and resumed runs stay byte-identical downstream.
    """

    health: Optional[Any] = None        # CrawlHealth
    injected: Optional[Any] = None      # Counter of injected faults
    clock: Optional[Any] = None         # SimClock

    # -- capture -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "health": self.health.state_dict() if self.health else None,
            "injected": dict(self.injected) if self.injected is not None else None,
            "clock": self.clock.now() if self.clock else None,
        }

    def delta_since(self, before: Dict[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {"health": {}, "injected": {}, "clock": 0.0}
        if self.health is not None:
            after = self.health.state_dict()
            out["health"] = _dict_delta(before["health"], after)
        if self.injected is not None:
            after_injected = dict(self.injected)
            out["injected"] = {
                kind: after_injected[kind] - before["injected"].get(kind, 0)
                for kind in after_injected
                if after_injected[kind] != before["injected"].get(kind, 0)
            }
        if self.clock is not None:
            out["clock"] = self.clock.now() - before["clock"]
        return out

    # -- replay --------------------------------------------------------
    def replay(self, health_delta: Dict[str, Any],
               injected_delta: Dict[str, int], clock_delta: float) -> None:
        if self.health is not None and health_delta:
            self.health.apply_delta(health_delta)
        if self.injected is not None and injected_delta:
            self.injected.update(injected_delta)
        if self.clock is not None and clock_delta > 0:
            self.clock.advance_to(self.clock.now() + clock_delta)


def _dict_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Numeric delta of two (possibly one-level-nested) stat dicts."""
    delta: Dict[str, Any] = {}
    for key, value in after.items():
        prior = before.get(key)
        if isinstance(value, dict):
            sub = {k: v - (prior or {}).get(k, 0)
                   for k, v in value.items() if v != (prior or {}).get(k, 0)}
            if sub:
                delta[key] = sub
        else:
            diff = value - (prior or 0)
            if diff:
                delta[key] = diff
    return delta


class StageRunner:
    """Executes a stage graph against a store, incrementally.

    Args:
        graph: the validated stage graph.
        store: artifact store; ``None`` gets a private in-memory store.
        config: the object stage ``config_fields`` are read from.
        run_id: identifier for this run's manifest (auto-allocated when
            omitted).
        previous: manifest of an earlier run to resume / re-execute
            incrementally; its per-stage fingerprints gate artifact reuse.
        from_stage: force this stage and its downstream closure to
            re-execute regardless of fingerprints.
        perf: :class:`~repro.perf.report.PerfReport` charged with every
            executed stage's wall clock (and told about cache-loaded
            stages).
        health / injected / clock: run-level accounting replayed across
            cache loads (see :class:`_Accounting`).
        context_digest: guards against resuming a manifest produced
            against a different world/config universe.
    """

    def __init__(
        self,
        graph: StageGraph,
        store: Optional[ArtifactStore] = None,
        config: Any = None,
        run_id: Optional[str] = None,
        previous: Optional[RunManifest] = None,
        from_stage: Optional[str] = None,
        perf: Any = None,
        health: Any = None,
        injected: Any = None,
        clock: Any = None,
        context_digest: str = "",
    ) -> None:
        self.graph = graph
        self.store = store if store is not None else ArtifactStore()
        self.config = config
        self.perf = perf
        self.accounting = _Accounting(health=health, injected=injected,
                                      clock=clock)
        self.previous = previous
        self.context_digest = context_digest
        if previous is not None and previous.context_digest \
                and context_digest and previous.context_digest != context_digest:
            raise ValueError(
                f"run {previous.run_id!r} was produced against a different "
                "world/config universe; refusing to resume")
        if from_stage is not None and from_stage not in graph.stages:
            raise ValueError(
                f"unknown stage {from_stage!r}; choose from "
                f"{sorted(graph.stages)}")
        self.forced: Set[str] = (graph.downstream_closure(from_stage)
                                 if from_stage else set())
        self.run_id = run_id or (previous.run_id if previous
                                 else self.store.next_run_id())

    # ------------------------------------------------------------------
    def _fingerprint(self, stage: Stage,
                     inputs: Dict[str, Artifact]) -> Dict[str, str]:
        input_part = "\n".join(
            f"{name}:{inputs[name].digest}" for name in sorted(inputs))
        return {
            "code": code_digest(stage.compute),
            "config": config_slice_digest(self.config, stage.config_fields),
            "inputs": hashlib.sha256(input_part.encode()).hexdigest(),
        }

    def _reusable(self, stage: Stage, fingerprint: Dict[str, str]) -> Optional[StageRecord]:
        """The previous run's record, iff it licenses skipping this stage."""
        if stage.name in self.forced or self.previous is None:
            return None
        record = self.previous.record(stage.name)
        if record is None or record.status != "complete":
            return None
        if record.fingerprint != fingerprint:
            return None
        if set(record.outputs) != set(stage.outputs):
            return None
        if not all(self.store.has(digest) for digest in record.outputs.values()):
            return None
        return record

    # ------------------------------------------------------------------
    def run(self, stop_after: Optional[str] = None) -> RunOutcome:
        """Walk the graph; returns all artifacts plus the saved manifest."""
        if stop_after is not None and stop_after not in self.graph.stages:
            raise ValueError(f"unknown stage {stop_after!r}")
        manifest = RunManifest(run_id=self.run_id,
                               context_digest=self.context_digest)
        artifacts: Dict[str, Artifact] = {}
        for stage in self.graph.topological_order():
            inputs = {name: artifacts[name] for name in stage.inputs}
            fingerprint = self._fingerprint(stage, inputs)
            prior = self._reusable(stage, fingerprint)
            if prior is not None:
                for name, digest in prior.outputs.items():
                    artifacts[name] = Artifact(name=name, digest=digest,
                                               payload=self.store.get(digest))
                self.accounting.replay(prior.health_delta,
                                       prior.injected_delta,
                                       prior.clock_delta)
                if self.perf is not None:
                    self.perf.record_cached_stage(stage.name)
                record = replace(prior, cached=True, seconds=0.0)
            else:
                record = self._execute(stage, inputs, fingerprint, artifacts)
            manifest.records[stage.name] = record
            self.store.save_manifest(manifest)
            if stop_after == stage.name:
                return RunOutcome(artifacts=artifacts, manifest=manifest,
                                  interrupted=True)
        return RunOutcome(artifacts=artifacts, manifest=manifest)

    def _execute(self, stage: Stage, inputs: Dict[str, Artifact],
                 fingerprint: Dict[str, str],
                 artifacts: Dict[str, Artifact]) -> StageRecord:
        """Run one stage for real; digest, store, and account its outputs."""
        ctx = StageContext(store=self.store, run_id=self.run_id,
                           stage=stage.name, fingerprint=fingerprint)
        before = self.accounting.snapshot()
        started = time.perf_counter()
        payloads = {name: artifact.payload for name, artifact in inputs.items()}
        outputs = stage.compute(payloads, ctx)
        seconds = time.perf_counter() - started
        if self.perf is not None:
            self.perf.record_stage(stage.name, seconds)
        missing = set(stage.outputs) - set(outputs)
        if missing:
            raise RuntimeError(
                f"stage {stage.name!r} did not produce {sorted(missing)}")
        deltas = self.accounting.delta_since(before)
        record = StageRecord(
            stage=stage.name,
            status="complete",
            fingerprint=fingerprint,
            seconds=seconds,
            health_delta=deltas["health"],
            injected_delta=deltas["injected"],
            clock_delta=deltas["clock"],
        )
        for name in stage.outputs:
            digester = stage.digesters.get(name)
            digest = (digester(outputs[name]) if digester is not None
                      else derived_digest(fingerprint, name))
            artifact = Artifact(name=name, digest=digest, payload=outputs[name])
            self.store.put(artifact)
            artifacts[name] = artifact
            record.outputs[name] = digest
        ctx.clear_partial()
        return record
