"""Content-digested artifact wrappers for every inter-stage payload.

Every payload that crosses a stage boundary — squat matches, crawl
snapshots, ground-truth pages, CV reports, flagged/verified sets, evasion
measurements — travels inside an :class:`Artifact` carrying a canonical
SHA-256 content digest.  Digests serve two masters:

* **invalidation** — a downstream stage's fingerprint includes its input
  digests, so it re-runs exactly when an upstream artifact's *content*
  changed (not when it was merely recomputed to the same bytes);
* **determinism auditing** — a resumed or incrementally re-run pipeline
  must reproduce the digests of a fresh serial run byte for byte, which
  the incremental test-suite and ``bench_incremental.py`` assert.

Digesters are canonical, not ``pickle``-based: pickling sets and dicts can
reorder across processes (``PYTHONHASHSEED``), so each payload type hashes
a sorted/stable textual form instead.  Payloads without a canonical
digester (e.g. a trained model) get a *derived* digest from the producing
stage's fingerprint — sound because every stage is a deterministic
function of (code, config slice, inputs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping

from repro.perf.cache import content_digest, raster_digest


@dataclass
class Artifact:
    """One named, content-digested inter-stage payload."""

    name: str
    digest: str
    payload: Any
    meta: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# digest helpers
# ----------------------------------------------------------------------

def _hash_lines(kind: str, lines: Iterable[str]) -> str:
    """SHA-256 of a type tag plus newline-joined canonical lines."""
    hasher = hashlib.sha256()
    hasher.update(f"{kind}\n".encode())
    for line in lines:
        hasher.update(line.encode("utf-8", "surrogatepass"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _features_repr(features: Any) -> str:
    """Stable text form of a PageFeatures (order-preserving token lists)."""
    if features is None:
        return "-"
    return repr((
        features.ocr_tokens,
        features.lexical_tokens,
        features.form_tokens,
        features.form_count,
        features.password_input_count,
        features.script_count,
        features.js_indicators,
    ))


def digest_squat_matches(matches: Iterable[Any]) -> str:
    """Canonical digest of a squat-match list (scan output, in scan order)."""
    return _hash_lines("squat_matches", (
        f"{m.domain}|{m.brand}|{m.squat_type.value}|{m.detail or ''}"
        for m in matches
    ))


def digest_packed_zone(zone: Any) -> str:
    """Digest of a packed zone snapshot (the pack stage's artifact).

    The snapshot file already carries a SHA-256 over its payload bytes in
    its header, so the artifact digest is a cheap re-tag of that — no
    records are walked.
    """
    return _hash_lines("packed_zone", [zone.content_digest])


def digest_enrichment(table: Any) -> str:
    """Digest of a bulk-enrichment table (the enrich stage's artifact).

    The table's own :meth:`digest` hashes fully decoded rows — values,
    not intern ids — so this artifact digest is identical however the
    table was produced (serial, concurrent, hedged, fault-swept).
    """
    return _hash_lines("enrichment", [table.digest()])


def digest_crawl_snapshot(snapshot: Any) -> str:
    """Digest of one :class:`~repro.web.crawler.CrawlSnapshot`.

    Folds the snapshot's own canonical :meth:`digest` (the determinism
    contract's unit of comparison) into the artifact address space.
    """
    return _hash_lines("crawl_snapshot", [snapshot.digest()])


def digest_crawl_snapshots(snapshots: Iterable[Any]) -> str:
    """Digest of an ordered series of crawl snapshots (follow-ups)."""
    return _hash_lines("crawl_snapshots",
                       (snapshot.digest() for snapshot in snapshots))


def digest_ground_truth(pages: Iterable[Any]) -> str:
    """Digest of the labelled ground-truth corpus.

    Includes the extracted features: the training stage must be
    invalidated when extractor flags change the features even though the
    underlying captures are identical.
    """
    return _hash_lines("ground_truth", (
        "|".join((
            page.domain, page.brand, str(page.label), page.source,
            content_digest(page.html),
            raster_digest(page.screenshot_pixels),
            content_digest(_features_repr(page.features)),
        ))
        for page in pages
    ))


def digest_cv_reports(reports: Mapping[str, Any]) -> str:
    """Digest of the cross-validation report dict (model name → report)."""
    return _hash_lines("cv_reports", (
        f"{name}|{reports[name]!r}" for name in sorted(reports)
    ))


def digest_detections(flagged: Iterable[Any]) -> str:
    """Digest of the wild-detection (flagged page) list."""
    return _hash_lines("flagged", (
        "|".join((
            detection.domain, detection.profile, detection.brand,
            detection.squat_type.value, repr(detection.score),
            content_digest(detection.capture.html),
            raster_digest(detection.capture.screenshot.pixels),
            content_digest(_features_repr(detection.features)),
        ))
        for detection in flagged
    ))


def digest_verified(verified: Iterable[Any]) -> str:
    """Digest of the verified-phish list."""
    return _hash_lines("verified", (
        f"{v.domain}|{v.brand}|{v.squat_type.value}|{','.join(v.profiles)}"
        for v in verified
    ))


def digest_evasion(measurements: Iterable[Any]) -> str:
    """Digest of an evasion-measurement list."""
    return _hash_lines("evasion", (
        f"{m.domain}|{m.brand}|{m.layout_distance}|"
        f"{m.string_obfuscated}|{m.code_obfuscated}"
        for m in measurements
    ))


def derived_digest(fingerprint: Mapping[str, str], output: str) -> str:
    """Fingerprint-derived digest for payloads without a canonical form.

    Deterministic stages make this sound: same (code, config, inputs) ⇒
    same output, so the fingerprint addresses the content.
    """
    return _hash_lines("derived", (
        output,
        fingerprint.get("code", ""),
        fingerprint.get("config", ""),
        fingerprint.get("inputs", ""),
    ))
