"""Stage-graph pipeline architecture: persistent, resumable, incremental.

The paper's measurement is a staged, longitudinal process (§3, §7): scan
a DNS snapshot, crawl the candidates, train, classify, verify, then keep
re-crawling the verified set over later snapshots.  This package turns
that process into an explicit, re-executable graph:

* :mod:`repro.stages.graph` — the :class:`Stage` protocol (name, typed
  inputs/outputs, declared dependencies, config slice) and the validated
  :class:`StageGraph` DAG;
* :mod:`repro.stages.artifacts` — content-digested :class:`Artifact`
  wrappers plus canonical digesters for every inter-stage payload;
* :mod:`repro.stages.store` — the disk-backed :class:`ArtifactStore`
  (content-addressed objects, JSON :class:`RunManifest` per run, partial
  stage checkpoints — the crawler's ``CrawlCheckpoint`` folded in);
* :mod:`repro.stages.runner` — the :class:`StageRunner` that walks the
  graph, charges :class:`~repro.perf.report.PerfReport` uniformly, and
  re-runs a stage only when its code fingerprint, config slice, or input
  digests changed.

The invariant the whole package defends is the determinism contract: a
resumed or incrementally re-executed run produces byte-identical crawl
digests and identical verified sets to a fresh serial run.
"""

from repro.stages.artifacts import (
    Artifact,
    derived_digest,
    digest_crawl_snapshot,
    digest_crawl_snapshots,
    digest_cv_reports,
    digest_detections,
    digest_enrichment,
    digest_evasion,
    digest_ground_truth,
    digest_packed_zone,
    digest_squat_matches,
    digest_verified,
)
from repro.stages.graph import Stage, StageGraph, StageLike
from repro.stages.runner import (
    RunOutcome,
    StageContext,
    StageRunner,
    THROUGHPUT_FIELDS,
    code_digest,
    config_slice_digest,
)
from repro.stages.store import ArtifactStore, RunManifest, StageRecord

__all__ = [
    "Artifact",
    "ArtifactStore",
    "RunManifest",
    "RunOutcome",
    "Stage",
    "StageContext",
    "StageGraph",
    "StageLike",
    "StageRecord",
    "StageRunner",
    "THROUGHPUT_FIELDS",
    "code_digest",
    "config_slice_digest",
    "derived_digest",
    "digest_crawl_snapshot",
    "digest_crawl_snapshots",
    "digest_cv_reports",
    "digest_detections",
    "digest_enrichment",
    "digest_evasion",
    "digest_ground_truth",
    "digest_packed_zone",
    "digest_squat_matches",
    "digest_verified",
]
