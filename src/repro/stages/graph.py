"""The pipeline's stage graph: declared dependencies, topological execution.

The paper's measurement is staged and longitudinal — scan a snapshot,
crawl the candidates, train, classify, verify, then keep re-crawling the
verified set over later snapshots (§3, §7).  Modelling those stages as an
explicit dependency graph (instead of a hard-coded call sequence) is what
lets the runner checkpoint a run, resume it after a crash, and
*incrementally* re-execute it: a stage re-runs only when its code, its
config slice, or the digests of its inputs changed.

A :class:`Stage` declares:

* ``name`` — unique stage identifier (``scan``, ``crawl``, ``train``…);
* ``inputs`` — names of the artifacts it consumes;
* ``outputs`` — names of the artifacts it produces;
* ``config_fields`` — which :class:`~repro.core.config.PipelineConfig`
  fields participate in its fingerprint (throughput knobs like worker
  counts are deliberately *excluded* — they cannot change results, so
  they must not invalidate cached artifacts);
* ``compute`` — the function that turns input payloads into output
  payloads, given a :class:`~repro.stages.runner.StageContext` for
  partial-progress checkpointing;
* ``digesters`` — canonical content-digest functions per output (outputs
  without one get a fingerprint-derived digest).

Anything satisfying :class:`StageLike` can join a graph; :class:`Stage`
is the standard dataclass implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
)

try:  # pragma: no cover - typing_extensions not needed on 3.8+
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls


@runtime_checkable
class StageLike(Protocol):
    """Structural protocol every graph node must satisfy."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    config_fields: Tuple[str, ...]

    def compute(self, inputs: Dict[str, Any], ctx: Any) -> Dict[str, Any]:
        ...  # pragma: no cover - protocol


@dataclass
class Stage:
    """One named unit of pipeline work with declared data dependencies."""

    name: str
    compute: Callable[[Dict[str, Any], Any], Dict[str, Any]]
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    config_fields: Tuple[str, ...] = ()
    digesters: Mapping[str, Callable[[Any], str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage needs a name")
        if not self.outputs:
            raise ValueError(f"stage {self.name!r} declares no outputs")
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)
        self.config_fields = tuple(self.config_fields)
        unknown = set(self.digesters) - set(self.outputs)
        if unknown:
            raise ValueError(
                f"stage {self.name!r} digests undeclared outputs {sorted(unknown)}")


class StageGraph:
    """A validated DAG of stages keyed by the artifacts they exchange.

    Construction validates the graph once: stage names and artifact names
    must be unique, every input must be produced by some stage, and the
    dependency relation must be acyclic.  Execution order is the stable
    topological order (declaration order among ready stages), so a graph
    declared in pipeline order runs in pipeline order.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a stage graph needs at least one stage")
        self.stages: Dict[str, Stage] = {}
        self.producer: Dict[str, str] = {}      # artifact name -> stage name
        for stage in stages:
            if stage.name in self.stages:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
            for artifact in stage.outputs:
                if artifact in self.producer:
                    raise ValueError(
                        f"artifact {artifact!r} produced by both "
                        f"{self.producer[artifact]!r} and {stage.name!r}")
                self.producer[artifact] = stage.name
        for stage in stages:
            missing = [a for a in stage.inputs if a not in self.producer]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} consumes unproduced artifacts "
                    f"{missing}")
        self._order = self._toposort()

    # ------------------------------------------------------------------
    def dependencies(self, name: str) -> Set[str]:
        """Direct upstream stage names of one stage."""
        stage = self.stages[name]
        return {self.producer[artifact] for artifact in stage.inputs}

    def _toposort(self) -> List[str]:
        """Kahn's algorithm, stable in declaration order; rejects cycles."""
        names = list(self.stages)
        indegree = {name: len(self.dependencies(name)) for name in names}
        order: List[str] = []
        ready = [name for name in names if indegree[name] == 0]
        while ready:
            current = ready.pop(0)
            order.append(current)
            for name in names:
                if current in self.dependencies(name) and name not in order:
                    indegree[name] -= 1
                    if indegree[name] == 0 and name not in ready:
                        ready.append(name)
        if len(order) != len(names):
            stuck = sorted(set(names) - set(order))
            raise ValueError(f"stage graph has a cycle through {stuck}")
        return order

    def topological_order(self) -> List[Stage]:
        """Stages in execution order."""
        return [self.stages[name] for name in self._order]

    def downstream_closure(self, name: str) -> Set[str]:
        """A stage plus everything that (transitively) depends on it.

        This is the invalidation set of ``--from-stage NAME``: forcing a
        stage to re-run necessarily forces every consumer of its outputs.
        """
        if name not in self.stages:
            raise KeyError(f"unknown stage {name!r}")
        closure = {name}
        changed = True
        while changed:
            changed = False
            for candidate in self.stages:
                if candidate in closure:
                    continue
                if self.dependencies(candidate) & closure:
                    closure.add(candidate)
                    changed = True
        return closure
