"""Disk-backed artifact store + run manifests (whole-run persistence).

The store gives a pipeline run three kinds of durability:

* **objects/** — content-addressed artifact payloads, one pickle per
  digest.  Two runs producing the same bytes share one object, so a store
  accumulating weekly snapshots only pays for what changed.
* **runs/** — one JSON :class:`RunManifest` per run id, recording every
  stage's fingerprint (code, config slice, input digests), its output
  digests, wall-clock seconds, whether it was served from cache, and the
  accounting deltas (crawl health, injected faults, simulated clock) the
  runner replays when it loads the stage from cache instead of running it.
* **partials/** — mid-stage progress, i.e. the crawler's
  :class:`~repro.web.crawler.CrawlCheckpoint` folded into the store as a
  *partial stage artifact*: a killed crawl resumes from its last
  checkpoint slice rather than from the start of the stage.  A partial is
  bound to the stage fingerprint that produced it, so a config change
  discards stale progress instead of resuming into the wrong run.

``ArtifactStore(None)`` is a fully in-memory store with the same API —
the default for library callers who just want incremental semantics
within one process (tests, notebooks).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.stages.artifacts import Artifact

PathLike = Union[str, Path]


@dataclass
class StageRecord:
    """What one stage did in one run (a manifest row)."""

    stage: str
    status: str = "complete"
    fingerprint: Dict[str, str] = field(default_factory=dict)
    outputs: Dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0
    cached: bool = False
    health_delta: Dict[str, Any] = field(default_factory=dict)
    injected_delta: Dict[str, int] = field(default_factory=dict)
    clock_delta: float = 0.0


@dataclass
class RunManifest:
    """Everything needed to resume or incrementally re-execute one run."""

    run_id: str
    context_digest: str = ""
    records: Dict[str, StageRecord] = field(default_factory=dict)

    def record(self, stage: str) -> Optional[StageRecord]:
        return self.records.get(stage)

    def cached_stages(self) -> List[str]:
        """Stages this run served from the store instead of executing."""
        return [name for name, rec in self.records.items() if rec.cached]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "context_digest": self.context_digest,
            "records": {name: asdict(rec) for name, rec in self.records.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        manifest = cls(run_id=data["run_id"],
                       context_digest=data.get("context_digest", ""))
        for name, raw in data.get("records", {}).items():
            manifest.records[name] = StageRecord(**raw)
        return manifest


class ArtifactStore:
    """Content-addressed payloads + run manifests + partial stage state.

    Args:
        root: store directory (created on demand).  ``None`` keeps
            everything in memory — identical semantics, no durability.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._objects: Dict[str, bytes] = {}
        self._manifests: Dict[str, RunManifest] = {}
        self._partials: Dict[tuple, bytes] = {}

    @property
    def persistent(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------------
    # object layer
    # ------------------------------------------------------------------
    def _object_path(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        """Write via rename so a killed process never leaves a torn file."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put(self, artifact: Artifact) -> None:
        """Store an artifact payload under its digest (idempotent)."""
        if self.has(artifact.digest):
            return
        data = pickle.dumps(artifact.payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self.root is None:
            self._objects[artifact.digest] = data
        else:
            self._atomic_write(self._object_path(artifact.digest), data)

    def has(self, digest: str) -> bool:
        if self.root is None:
            return digest in self._objects
        return self._object_path(digest).exists()

    def get(self, digest: str) -> Any:
        """Load the payload stored under ``digest`` (KeyError if absent)."""
        if self.root is None:
            if digest not in self._objects:
                raise KeyError(f"no artifact {digest!r} in store")
            return pickle.loads(self._objects[digest])
        path = self._object_path(digest)
        if not path.exists():
            raise KeyError(f"no artifact {digest!r} in store")
        return pickle.loads(path.read_bytes())

    # ------------------------------------------------------------------
    # run manifests
    # ------------------------------------------------------------------
    def _manifest_path(self, run_id: str) -> Path:
        assert self.root is not None
        return self.root / "runs" / f"{run_id}.json"

    def save_manifest(self, manifest: RunManifest) -> None:
        if self.root is None:
            self._manifests[manifest.run_id] = manifest
            return
        payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
        self._atomic_write(self._manifest_path(manifest.run_id),
                           payload.encode("utf-8"))

    def load_manifest(self, run_id: str) -> RunManifest:
        if self.root is None:
            if run_id not in self._manifests:
                raise KeyError(f"no run {run_id!r} in store")
            return self._manifests[run_id]
        path = self._manifest_path(run_id)
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in store")
        return RunManifest.from_dict(json.loads(path.read_text("utf-8")))

    def list_runs(self) -> List[str]:
        if self.root is None:
            return sorted(self._manifests)
        runs_dir = self.root / "runs"
        if not runs_dir.exists():
            return []
        return sorted(p.stem for p in runs_dir.glob("*.json"))

    def next_run_id(self) -> str:
        """A fresh, collision-free ``run-NNNN`` id."""
        existing = set(self.list_runs())
        index = len(existing) + 1
        while f"run-{index:04d}" in existing:
            index += 1
        return f"run-{index:04d}"

    # ------------------------------------------------------------------
    # partial stage state (folded CrawlCheckpoint)
    # ------------------------------------------------------------------
    def _partial_path(self, run_id: str, stage: str) -> Path:
        assert self.root is not None
        return self.root / "partials" / run_id / f"{stage}.pkl"

    def save_partial(self, run_id: str, stage: str,
                     fingerprint: Dict[str, str], payload: Any) -> None:
        """Persist mid-stage progress bound to the stage fingerprint."""
        data = pickle.dumps({"fingerprint": dict(fingerprint),
                             "payload": payload},
                            protocol=pickle.HIGHEST_PROTOCOL)
        if self.root is None:
            self._partials[(run_id, stage)] = data
        else:
            self._atomic_write(self._partial_path(run_id, stage), data)

    def load_partial(self, run_id: str, stage: str,
                     fingerprint: Dict[str, str]) -> Optional[Any]:
        """Mid-stage progress for a matching fingerprint, else None."""
        if self.root is None:
            data = self._partials.get((run_id, stage))
        else:
            path = self._partial_path(run_id, stage)
            data = path.read_bytes() if path.exists() else None
        if data is None:
            return None
        entry = pickle.loads(data)
        if entry["fingerprint"] != dict(fingerprint):
            return None     # config/code/inputs moved on; progress is stale
        return entry["payload"]

    def clear_partial(self, run_id: str, stage: str) -> None:
        if self.root is None:
            self._partials.pop((run_id, stage), None)
            return
        path = self._partial_path(run_id, stage)
        if path.exists():
            path.unlink()
