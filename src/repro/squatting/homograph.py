"""Homograph squatting: visually confusable labels, including IDNs (§3.1).

Two sub-families, as in the paper:

* ASCII homographs — look-alikes expressible in plain LDH hostnames
  (``faceb00k``, ``rnicrosoft``);
* IDN homographs — unicode confusables registered through punycode
  (``xn--fcebook-8va.com`` displayed as ``fàcebook.com``).

Generation samples substitutions from the confusables table; detection
decodes punycode first, then runs the confusables matcher.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Set

from repro.dns.idna import ACE_PREFIX, IDNAError, label_to_ascii, label_to_unicode
from repro.squatting.confusables import (
    ASCII_CONFUSABLES,
    CONFUSABLES,
    matches_homograph,
)


class HomographModel:
    """Generator/detector for homograph-squatting labels."""

    name = "homograph"

    def __init__(self, confusables=None, max_substitutions: int = 2) -> None:
        self.confusables = confusables if confusables is not None else CONFUSABLES
        self.max_substitutions = max_substitutions

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate_ascii(self, label: str, max_variants: Optional[int] = None) -> Set[str]:
        """ASCII homographs: hostname-safe single substitutions."""
        variants: Set[str] = set()
        for i, char in enumerate(label):
            for sub in ASCII_CONFUSABLES.get(char, ()):
                variants.add(label[:i] + sub + label[i + 1:])
                if max_variants and len(variants) >= max_variants:
                    return variants
        # double substitutions of the most common digit confusions, which is
        # how faceb00k-style squats arise
        digit_subs = {"o": "0", "l": "1", "i": "1", "s": "5", "e": "3"}
        positions = [i for i, c in enumerate(label) if c in digit_subs]
        for i, j in combinations(positions, 2):
            chars = list(label)
            chars[i] = digit_subs[label[i]]
            chars[j] = digit_subs[label[j]]
            variants.add("".join(chars))
        variants.discard(label)
        return variants

    def generate_idn(self, label: str, max_variants: Optional[int] = None) -> Set[str]:
        """IDN homographs, returned in their punycode (A-label) form."""
        variants: Set[str] = set()
        for i, char in enumerate(label):
            for sub in self.confusables.get(char, ()):
                if all(ord(c) < 128 for c in sub):
                    continue
                unicode_label = label[:i] + sub + label[i + 1:]
                try:
                    variants.add(label_to_ascii(unicode_label))
                except IDNAError:
                    continue
                if max_variants and len(variants) >= max_variants:
                    return variants
        return variants

    def generate(self, label: str, max_variants: Optional[int] = None) -> Set[str]:
        """ASCII and IDN homographs of a label."""
        half = max_variants // 2 if max_variants else None
        variants = self.generate_ascii(label, max_variants=half)
        variants.update(self.generate_idn(label, max_variants=half))
        variants.discard(label)
        return variants

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def matches(self, label: str, target: str) -> Optional[str]:
        """Classify ``label`` as a homograph of ``target``.

        Returns ``"idn"`` or ``"ascii"`` (the evidence family) or None.
        """
        label = label.lower()
        target = target.lower()
        if label == target:
            return None
        if label.startswith(ACE_PREFIX):
            try:
                displayed = label_to_unicode(label)
            except IDNAError:
                return None
            if displayed != target and matches_homograph(displayed, target):
                return "idn"
            return None
        if matches_homograph(label, target):
            return "ascii"
        return None
