"""Combo squatting: brand name concatenated with extra tokens (§3.1).

``facebook-story.de``, ``go-uberfreight.com``, ``live-microsoftsupport.com``:
the brand string is embedded whole, joined to arbitrary affixes.  Following
the paper we focus on hyphenated combos (hyphens are the only separator legal
in a hostname), but — as the paper's own examples show
(``go-uberfreight.com``) — the affix may also glue directly onto the brand
inside a hyphenated token, so detection accepts a brand that appears as a
substring of a hyphen-bearing label.

Combo candidates cannot be enumerated, so unlike the other four models the
detector is the primary artifact; :meth:`generate` exists to let the
synthetic world register plausible combos.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

# Affixes observed on real combo squats; used only for world generation.
COMMON_AFFIXES: Tuple[str, ...] = (
    "login", "signin", "sigin", "secure", "security", "support", "help",
    "account", "accounts", "verify", "verification", "update", "online",
    "official", "store", "shop", "pay", "payment", "payments", "wallet",
    "cash", "app", "apps", "mobile", "web", "mail", "email", "team",
    "service", "services", "center", "info", "news", "story", "live",
    "go", "get", "my", "the", "new", "free", "best", "top", "pro",
    "prize", "prizeuk", "gift", "bonus", "promo", "deal", "deals",
    "learning", "freight", "selling", "auction", "grants", "gostore",
    "c", "us", "uk", "id", "auth", "portal", "access", "alert", "alerts",
)


class ComboModel:
    """Generator/detector for combo-squatting labels."""

    name = "combo"

    def __init__(self, min_brand_length: int = 4) -> None:
        # Very short brand strings ("bt", "gq") embedded in longer words
        # would flood the detector with false combos; the paper handles this
        # by matching the hyphen-delimited brand token.  We require either a
        # hyphen-delimited exact token, or (for longer brands) substring
        # containment.
        self.min_brand_length = min_brand_length

    # ------------------------------------------------------------------
    # generation (world-building aid)
    # ------------------------------------------------------------------
    def generate(
        self,
        label: str,
        affixes: Sequence[str] = COMMON_AFFIXES,
        max_variants: Optional[int] = None,
    ) -> Set[str]:
        """Hyphenated combos of ``label`` with common affixes.

        Three shapes per affix: brand-affix, affix-brand, and a glued
        tail where the next affix rides directly on the brand inside the
        hyphenated label (``go-uberfreight`` style).
        """
        variants: Set[str] = set()
        for i, affix in enumerate(affixes):
            variants.add(f"{label}-{affix}")
            variants.add(f"{affix}-{label}")
            glue = affixes[(i + 1) % len(affixes)]
            variants.add(f"{affix}-{label}{glue}")
            if max_variants and len(variants) >= max_variants:
                break
        variants.discard(label)
        return variants

    def generate_glued(self, label: str, affixes: Sequence[str], rng=None) -> Set[str]:
        """Combos where an affix glues directly to the brand inside a
        hyphenated label (``go-uberfreight``)."""
        variants: Set[str] = set()
        for i, affix in enumerate(affixes):
            other = affixes[(i + 1) % len(affixes)]
            variants.add(f"{other}-{label}{affix}")
            variants.add(f"{label}{affix}-{other}")
        return variants

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def matches(self, label: str, target: str) -> Optional[str]:
        """Classify ``label`` as a combo squat of ``target``.

        Returns the matched embedding (e.g. ``"token"`` or ``"substring"``)
        or None.  The label must contain a hyphen and must not *be* the
        brand.
        """
        label = label.lower()
        target = target.lower()
        if "-" not in label or label == target:
            return None
        tokens = label.split("-")
        if target in tokens:
            return "token"
        if len(target) >= self.min_brand_length and target in label:
            return "substring"
        return None
