"""Shared types for the squatting subsystem."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class SquatType(str, enum.Enum):
    """The five orthogonal squatting categories of §3.1.

    Detection priority follows the paper's matching order: a domain is
    labelled with the first category that matches, so the categories stay
    disjoint for measurement.
    """

    HOMOGRAPH = "homograph"
    BITS = "bits"
    TYPO = "typo"
    COMBO = "combo"
    WRONG_TLD = "wrongTLD"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Display order used by figures (matches Fig 2 / Fig 12 x-axis).
SQUAT_TYPE_ORDER = (
    SquatType.HOMOGRAPH,
    SquatType.BITS,
    SquatType.TYPO,
    SquatType.COMBO,
    SquatType.WRONG_TLD,
)


@dataclass(frozen=True)
class SquatMatch:
    """A squatting classification of one observed domain.

    Attributes:
        domain: the observed registered domain (e.g. ``faceb00k.pw``).
        brand: the impersonated brand key (e.g. ``facebook``).
        squat_type: which of the five categories matched.
        detail: human-readable matching evidence (e.g. which character was
            substituted), useful for case-study tables.
    """

    domain: str
    brand: str
    squat_type: SquatType
    detail: Optional[str] = None
