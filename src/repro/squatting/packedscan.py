"""Vectorized squat scan over packed columnar zone snapshots.

The dict-backed scan calls ``classify_domain`` once per registered
domain — dominated by Python dict lookups that reject the overwhelmingly
benign majority.  A :class:`~repro.dns.packedzone.PackedZone` stores core
labels as one contiguous byte blob, so the scan vectorizes: each slice
gathers its unique core labels into a fixed-width ``S``-dtype matrix and
runs a sorted-array hash-join against the detector's enumerable candidate
index plus cheap byte-level prefilters for every other rule.

A label is provably unclassifiable (the vector reject) when **all** hold:

* not a brand core label and no enumerable-candidate hit (steps 1 & 5),
* no ``xn--`` prefix (step 2),
* both homograph buckets ``(len, first char)`` / ``(len, last char)``
  are empty (step 3 — ``_match_ascii_homograph``'s own prefilter),
* no hyphen and no window of ``combo_min`` bytes matches a brand-label
  prefix (step 4 — a superset of ``_match_combo``'s candidates).

Labels that survive the reject are resolved by **in-kernel family
matchers** over the same matrix — a positionwise confusable-translation
table for single-candidate homograph buckets, exact brand/affix span
extraction for combo tokens and substrings, and per-row wrongTLD checks
against the aligned brand tables — so the per-domain Python classifier
(``SquattingDetector._classify``, kept verbatim as the byte-identity
oracle) only sees labels the matrix genuinely cannot represent: ``xn--``
punycode (the IDN decode path), non-ASCII bytes, over-width or empty
query labels.  The residual fallback rate is tracked per reason in
:class:`KernelStats` and surfaced through ``PerfReport``; it never enters
a digest.

Fixed-width ``S`` comparisons ignore trailing NUL padding, which is
exactly padding-insensitive string equality here: labels are UTF-8 with
no embedded NULs, so no two distinct labels collapse.

Pool protocol: workers receive only ``(start, stop)`` registered-domain
id ranges, mmap the snapshot file in their initializer, and scan their
slices zero-copy — nothing per-chunk is pickled except the per-slice
match lists and a small stats delta.

This module must not import ``repro.squatting.detector`` at module level
(the detector imports us for dispatch); workers import it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dns.packedzone import PackedZone
from repro.dns.records import split_domain
from repro.perf.engine import process_map
from repro.squatting.bits import pack_window_codes
from repro.squatting.confusables import CONFUSABLES, ascii_readable_pairs
from repro.squatting.types import SquatMatch, SquatType

# floor on the per-slice registered-domain span: vector setup costs are
# amortized per slice, so packed slices run much coarser than the 512-
# domain pickled chunks of the dict-backed pool path
PACKED_CHUNK = 4096

_HYPHEN = ord("-")

# per-label resolution kinds assigned by the in-kernel matchers
KIND_NONE = 0       # vector-rejected, or no family matched: benign
KIND_MATCH = 1      # match fully resolved in-kernel (brand/type/detail set)
KIND_BRAND = 2      # core is a brand label: per-row wrongTLD check decides
KIND_FALLBACK = 3   # unrepresentable in the matrix: Python classifier

# fallback reason codes (KIND_FALLBACK rows)
FB_IDN = 1          # xn-- punycode: the IDN decode path is scalar
FB_UNICODE = 2      # non-ASCII bytes: the confusables DP is per character

_FB_REASONS = {FB_IDN: "idn", FB_UNICODE: "unicode"}

_TYPE_LIST: List[SquatType] = list(SquatType)
_TYPE_INDEX: Dict[SquatType, int] = {t: i for i, t in enumerate(_TYPE_LIST)}
_HOMOGRAPH_CODE = _TYPE_INDEX[SquatType.HOMOGRAPH]
_COMBO_CODE = _TYPE_INDEX[SquatType.COMBO]


@dataclass
class KernelStats:
    """Scan-kernel accounting: throughput metadata, never digest input.

    ``rows`` counts every label presented to the kernel (slice rows or
    query names), ``survivors`` the rows that survived the vector reject,
    ``fast_hits`` the candidate-join rows among them.
    ``homograph_assists`` counts unique labels the vector homograph
    matcher handed to the scalar bucket walk (multi-candidate buckets or
    length-changing confusables — still resolved without the full
    cascade).  ``fallbacks`` maps fallback reason -> row count for the
    rows that ran the per-domain Python classifier.
    """

    rows: int = 0
    survivors: int = 0
    fast_hits: int = 0
    homograph_assists: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)

    @property
    def fallback_total(self) -> int:
        return sum(self.fallbacks.values())

    @property
    def fallback_rate(self) -> float:
        return self.fallback_total / self.rows if self.rows else 0.0

    def count_fallback(self, reason: str, n: int = 1) -> None:
        if n:
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + n

    def copy(self) -> "KernelStats":
        return KernelStats(self.rows, self.survivors, self.fast_hits,
                           self.homograph_assists, dict(self.fallbacks))

    def delta(self, before: "KernelStats") -> "KernelStats":
        """This snapshot minus an earlier one (for per-call accounting)."""
        fallbacks = {
            reason: count - before.fallbacks.get(reason, 0)
            for reason, count in self.fallbacks.items()
            if count - before.fallbacks.get(reason, 0)
        }
        return KernelStats(self.rows - before.rows,
                           self.survivors - before.survivors,
                           self.fast_hits - before.fast_hits,
                           self.homograph_assists - before.homograph_assists,
                           fallbacks)

    def merge(self, other: Optional["KernelStats"]) -> None:
        if other is None:
            return
        self.rows += other.rows
        self.survivors += other.survivors
        self.fast_hits += other.fast_hits
        self.homograph_assists += other.homograph_assists
        for reason, count in other.fallbacks.items():
            self.count_fallback(reason, count)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rows": self.rows,
            "survivors": self.survivors,
            "fast_hits": self.fast_hits,
            "homograph_assists": self.homograph_assists,
            "fallbacks": dict(sorted(self.fallbacks.items())),
            "fallback_rate": self.fallback_rate,
        }


def _allowed_bytes(label: str, memo: Dict[str, np.ndarray]) -> np.ndarray:
    """256-wide mask of bytes a homograph of ``label`` could contain.

    Union of the label's own characters and every character of every
    registered confusable variant of them — a superset of what the
    matching DP (:func:`repro.squatting.confusables.matches_homograph`)
    can consume, so masking with it never rejects a true match.
    """
    mask = memo.get(label)
    if mask is None:
        chars = set(label)
        for base in set(label):
            for variant in CONFUSABLES.get(base, ()):
                chars.update(variant)
        mask = np.zeros(256, dtype=bool)
        for char in chars:
            if ord(char) < 256:
                mask[ord(char)] = True
        memo[label] = mask
    return mask


def _membership(keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(hit mask, key position) of each value in a sorted key array."""
    if keys.size == 0:
        return (np.zeros(values.shape, dtype=bool),
                np.zeros(values.shape, dtype=np.int64))
    pos = np.searchsorted(keys, values)
    np.minimum(pos, keys.size - 1, out=pos)
    return keys[pos] == values, pos


class DetectorMatrices:
    """Vector-side detector indices for one (detector, label width) pair.

    Everything here is a pure function of the detector's python indices
    and the fixed label width — independent of which zone slice (or
    which arbitrary query batch) is being classified — so one build is
    shared between the batch scan context and the serve engine via
    :func:`detector_matrices`.
    """

    def __init__(self, detector, width: int) -> None:
        self.width = width
        sdtype = np.dtype(f"S{width}")

        # enumerable candidates (homograph-ASCII / bits / typo), sorted for
        # the hash join; labels longer than any observed core cannot match
        items = [(label.encode("utf-8"), brand, squat_type)
                 for label, (brand, squat_type)
                 in detector._candidate_index.items()]
        items = [item for item in items if len(item[0]) <= width]
        raw = np.array([item[0] for item in items], dtype=sdtype) \
            if items else np.zeros(0, dtype=sdtype)
        order = np.argsort(raw, kind="stable")
        self.cand_keys = raw[order]
        self.cand_brands: List[str] = [items[i][1] for i in order]
        self.cand_types: List[SquatType] = [items[i][2] for i in order]
        self.cand_type_codes = np.fromiter(
            (_TYPE_INDEX[t] for t in self.cand_types),
            dtype=np.int8, count=len(self.cand_types))

        # brand labels sorted by raw bytes (identical to the S-dtype sort
        # order: NUL padding is minimal), with the name/domain tables the
        # in-kernel wrongTLD check reads by join position
        blabels = [label for label in detector._brand_by_label
                   if len(label.encode("utf-8")) <= width]
        blabels.sort(key=lambda label: label.encode("utf-8"))
        self.brand_keys = np.array(
            [label.encode("utf-8") for label in blabels], dtype=sdtype) \
            if blabels else np.zeros(0, dtype=sdtype)
        self.brand_names: List[str] = [
            detector._brand_by_label[label].name for label in blabels]
        self.brand_domains: List[str] = [
            detector._brand_by_label[label].domain for label in blabels]

        # homograph bucket occupancy tables keyed (observed length, edge
        # byte), plus per-bucket allowed-character masks.  The confusables
        # DP can only consume a label character that is literally in the
        # brand label or appears in some confusable variant of one of its
        # characters, so a label with any byte outside the union mask of a
        # bucket cannot match any brand in that bucket — the step-3 reject
        # this makes vectorizable is what keeps random labels off the
        # per-domain Python fallback.
        self.hb_first = np.zeros((width + 1, 256), dtype=bool)
        self.hb_last = np.zeros((width + 1, 256), dtype=bool)
        self.hb_first_allow = np.zeros((width + 1, 256, 256), dtype=bool)
        self.hb_last_allow = np.zeros((width + 1, 256, 256), dtype=bool)
        # ordered candidate lists for the vector homograph matcher, keyed
        # (edge, observed length, edge byte).  Each entry is a
        # (label bytes, brand name, allow mask) triple: an ASCII label of
        # the observed length carries its width-padded bytes — decidable
        # positionwise against ``readable`` — while a shorter or
        # non-ASCII candidate carries ``None`` bytes plus its
        # allowed-byte mask, so rows with a byte outside the mask
        # provably cannot match it and continue the vector walk; only
        # rows compatible with such a marker go to the scalar DP.  The
        # scalar bucket walk takes the first hit in insertion order,
        # which the per-row walk below reproduces.  Labels *longer* than
        # the observed length are dropped outright — the DP consumes at
        # least one label char per brand char, so they can never match.
        self.hom_buckets: Dict[Tuple[int, int, int],
                               List[Tuple[Optional[np.ndarray],
                                          Optional[str],
                                          Optional[np.ndarray]]]] = {}
        allow_memo: Dict[str, np.ndarray] = {}
        for (length, edge, char), labels in detector._homograph_buckets.items():
            if not (0 <= length <= width and len(char) == 1
                    and ord(char) < 256):
                continue
            occupancy = self.hb_first if edge == 0 else self.hb_last
            occupancy[length, ord(char)] = True
            allow = self.hb_first_allow if edge == 0 else self.hb_last_allow
            for label in labels:
                allow[length, ord(char)] |= _allowed_bytes(label, allow_memo)
            entries: List[Tuple[Optional[np.ndarray], Optional[str],
                                Optional[np.ndarray]]] = []
            for label in dict.fromkeys(labels):
                if len(label) > length:
                    continue
                raw = label.encode("utf-8")
                if len(label) == length and len(raw) == length:
                    enc = np.zeros(width, dtype=np.uint8)
                    enc[:length] = np.frombuffer(raw, dtype=np.uint8)
                    entries.append(
                        (enc, detector._brand_by_label[label].name, None))
                else:
                    entries.append(
                        (None, None, _allowed_bytes(label, allow_memo)))
            if entries:
                self.hom_buckets[(edge, length, ord(char))] = entries

        # confusable-translation table: readable[l, t] <=> a lone byte l
        # can be read as byte t (identity included; NUL reads as NUL so
        # padding aligns).  For equal-length labels the confusables DP
        # degenerates to a positionwise check against this table, which is
        # how single-candidate homograph buckets resolve without Python.
        self.readable = np.zeros((256, 256), dtype=bool)
        diag = np.arange(256)
        self.readable[diag, diag] = True
        for variant, base in ascii_readable_pairs():
            self.readable[ord(variant), ord(base)] = True

        # combo window keys: every combo-index prefix packed big-endian
        # into a u64 (W <= 8 always holds for the default combo model; a
        # wider W just disables this reject term, which is conservative)
        self.combo_w = detector.generator.combo.min_brand_length
        self.combo_keys: Optional[np.ndarray] = None
        if 1 <= self.combo_w <= 8:
            codes = sorted(
                int.from_bytes(prefix.encode("utf-8"), "big")
                for prefix in detector._combo_prefix_index
                if len(prefix.encode("utf-8")) == self.combo_w)
            self.combo_keys = np.array(codes, dtype=np.uint64)

        # combo matcher entries: (label bytes, length, brand name,
        # token-eligible, substring-eligible).  A hyphenated brand label
        # can never equal a hyphen-delimited token; only labels of at
        # least combo_min length are in the scalar 4-gram substring index.
        self.combo_entries: List[Tuple[np.ndarray, int, str, bool, bool]] = []
        for label, brand in detector._brand_by_label.items():
            raw = label.encode("utf-8")
            if not raw or len(raw) != len(label) or len(raw) > width:
                continue
            token_ok = "-" not in label
            sub_ok = len(label) >= self.combo_w
            if token_ok or sub_ok:
                self.combo_entries.append(
                    (np.frombuffer(raw, dtype=np.uint8), len(raw),
                     brand.name, token_ok, sub_ok))
        # prefix-code join index over the entries: substring-eligible
        # labels (len >= combo_w) grouped by their first combo_w bytes
        # packed big-endian into a u64.  The combo matcher joins each
        # row's packed windows against ``combo_entry_codes`` once per
        # slice and only verifies full occurrences at actual (row,
        # window) hits, instead of building dense occurrence masks for
        # every catalog entry.  Entries shorter than combo_w can only be
        # hyphen-delimited tokens and keep the dense path (they are few).
        self.combo_entry_codes: Optional[np.ndarray] = None
        self.combo_code_groups: List[List[int]] = []
        self.combo_short_ids: List[int] = []
        if 1 <= self.combo_w <= 8:
            groups: Dict[int, List[int]] = {}
            for idx, (enc, length, _b, _t, sub_ok) in enumerate(
                    self.combo_entries):
                if sub_ok:
                    code = int.from_bytes(
                        enc[:self.combo_w].tobytes(), "big")
                    groups.setdefault(code, []).append(idx)
                else:
                    self.combo_short_ids.append(idx)
            self.combo_entry_codes = np.array(sorted(groups),
                                              dtype=np.uint64)
            self.combo_code_groups = [
                groups[int(code)] for code in self.combo_entry_codes]


# (id(detector), width) -> (detector, matrices).  A handful of entries per
# process at most — one per live detector × snapshot shape; the detector
# strong ref both pins the id against address recycling and keeps the
# matrices valid for as long as anyone could present the same key.
_MATRICES_CACHE: Dict[Tuple[int, int], Tuple[object, DetectorMatrices]] = {}


def detector_matrices(detector, width: int) -> DetectorMatrices:
    """The shared :class:`DetectorMatrices` build for (detector, width).

    The allow-mask tables are the expensive part (the (width+1, 256, 256)
    byte cubes); caching here means a process that both scans a snapshot
    and serves queries over it pays for them once.
    """
    key = (id(detector), width)
    entry = _MATRICES_CACHE.get(key)
    if entry is None or entry[0] is not detector:
        entry = (detector, DetectorMatrices(detector, width))
        _MATRICES_CACHE[key] = entry
    return entry[1]


@dataclass
class _VectorFlags:
    """Per-unique-label vector reject terms (one row per matrix row)."""

    is_brand: np.ndarray
    brand_pos: np.ndarray
    cand_pos: np.ndarray
    nonascii: np.ndarray
    hyphen: np.ndarray
    xn: np.ndarray
    ok_first: np.ndarray
    ok_last: np.ndarray
    present: np.ndarray
    homograph: np.ndarray
    combo: np.ndarray
    keep: np.ndarray
    fast: np.ndarray


@dataclass
class _LabelResolution:
    """In-kernel verdict per unique label: kind + match payload."""

    kind: np.ndarray                 # KIND_* per row
    type_code: np.ndarray            # SquatType index (KIND_MATCH rows)
    brands: List[Optional[str]]      # brand name (KIND_MATCH rows)
    details: List[Optional[str]]     # match detail (KIND_MATCH rows)
    brand_pos: np.ndarray            # brand-key join position (KIND_BRAND)
    fb_code: np.ndarray              # FB_* reason (KIND_FALLBACK rows)
    keep: np.ndarray                 # vector-reject survivors
    fast: np.ndarray                 # candidate-join hits


class PackedScanContext:
    """Per-process scan state: detector + packed zone + vector indices.

    ``in_kernel=False`` keeps the PR 5 behaviour — every vector-reject
    survivor goes through the per-domain Python classifier — as a live
    twin for benchmarking and differential testing; the output is
    byte-identical either way.
    """

    def __init__(self, detector, zone: PackedZone,
                 width: Optional[int] = None,
                 in_kernel: bool = True) -> None:
        self.detector = detector
        self.zone = zone
        self.in_kernel = bool(in_kernel)
        self.kernel = KernelStats()
        if zone.n_cores:
            lens = np.diff(zone.core_off.astype(np.int64))
            natural = max(int(lens.max()), 1)
        else:
            natural = 1
        # a caller-forced width only ever *widens* the label matrix:
        # narrower than the zone's longest core would truncate labels in
        # the gather and could false-reject.  The streaming driver pins
        # one width across all delta segments so every segment scan hits
        # the same cached DetectorMatrices build.
        self.width = max(natural, int(width)) if width else natural
        self.sdtype = np.dtype(f"S{self.width}")
        matrices = detector_matrices(detector, self.width)
        self.matrices = matrices
        self.cand_keys = matrices.cand_keys
        self.cand_brands = matrices.cand_brands
        self.cand_types = matrices.cand_types
        self.brand_keys = matrices.brand_keys
        self.hb_first = matrices.hb_first
        self.hb_last = matrices.hb_last
        self.hb_first_allow = matrices.hb_first_allow
        self.hb_last_allow = matrices.hb_last_allow
        self.combo_w = matrices.combo_w
        self.combo_keys = matrices.combo_keys

    # ------------------------------------------------------------------
    def _gather_labels(self, uniq: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """NUL-padded (rows, width) byte matrix + lengths for core ids."""
        zone = self.zone
        core_off = zone.core_off
        starts = core_off[uniq].astype(np.int64)
        lens = core_off[uniq + 1].astype(np.int64) - starts
        width = self.width
        cols = np.arange(width, dtype=np.int64)
        blob = zone.core_blob
        if blob.size:
            idx = starts[:, None] + cols[None, :]
            np.minimum(idx, blob.size - 1, out=idx)
            padded = blob[idx]
        else:
            padded = np.zeros((uniq.size, width), dtype=np.uint8)
        padded[cols[None, :] >= lens[:, None]] = 0
        return padded, lens

    def _flags(self, padded: np.ndarray, lens: np.ndarray) -> _VectorFlags:
        """All vector reject terms for a NUL-padded label matrix.

        ``padded`` is a ``(rows, width)`` uint8 matrix with ``lens`` true
        byte lengths (each ``1..width``) — either gathered from the
        snapshot's core blob or encoded from arbitrary query labels.
        """
        n = padded.shape[0]
        keys = np.ascontiguousarray(padded).view(self.sdtype).ravel()

        is_brand, brand_pos = _membership(self.brand_keys, keys)
        cand_hit, cand_pos = _membership(self.cand_keys, keys)
        nonascii = (padded & 0x80).any(axis=1)
        hyphen = (padded == _HYPHEN).any(axis=1)
        if self.width >= 4:
            xn = ((lens >= 4)
                  & (padded[:, 0] == 120) & (padded[:, 1] == 110)
                  & (padded[:, 2] == 45) & (padded[:, 3] == 45))
        else:
            xn = np.zeros(n, dtype=bool)
        rows = np.arange(n)
        first = padded[:, 0]
        last = padded[rows, np.maximum(lens - 1, 0)]
        # which bytes occur in each label (NUL padding cleared), to test
        # against the per-bucket allowed-character masks
        present = np.zeros((n, 256), dtype=bool)
        present[rows[:, None], padded] = True
        present[:, 0] = False
        ok_first = ~(present & ~self.hb_first_allow[lens, first]).any(axis=1)
        ok_last = ~(present & ~self.hb_last_allow[lens, last]).any(axis=1)
        homograph = ((self.hb_first[lens, first] & ok_first)
                     | (self.hb_last[lens, last] & ok_last))
        combo = self._combo_window_hits(padded, n)

        fast = cand_hit & ~is_brand
        keep = is_brand | cand_hit | xn | homograph | hyphen | combo | nonascii
        return _VectorFlags(is_brand, brand_pos, cand_pos, nonascii, hyphen,
                            xn, ok_first, ok_last, present, homograph, combo,
                            keep, fast)

    def _vector_flags(self, padded: np.ndarray,
                      lens: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(keep mask, fast candidate position) — the PR 5 reject view.

        ``fast_pos[i] >= 0`` marks a pure step-1 candidate hit; entries
        kept with ``-1`` need the Python classifier (legacy mode)."""
        flags = self._flags(padded, lens)
        fast_pos = np.where(flags.fast, flags.cand_pos, -1)
        return flags.keep, fast_pos

    def _combo_window_hits(self, padded: np.ndarray, rows: int) -> np.ndarray:
        """Mask of labels with any ``combo_w``-byte window in the combo
        prefix index.  Padding windows hold NUL bytes and real prefixes
        never do, so out-of-length windows can't false-positive."""
        if self.combo_keys is None:
            # reject term unavailable: conservatively keep everything
            return np.ones(rows, dtype=bool)
        if self.combo_keys.size == 0 or self.width - self.combo_w + 1 <= 0:
            return np.zeros(rows, dtype=bool)
        codes = pack_window_codes(padded, self.combo_w)
        hit, _ = _membership(self.combo_keys, codes.ravel())
        return hit.reshape(rows, codes.shape[1]).any(axis=1)

    # ------------------------------------------------------------------
    # in-kernel family matchers
    # ------------------------------------------------------------------
    def _resolve_labels(self, padded: np.ndarray,
                        lens: np.ndarray) -> _LabelResolution:
        """Classify every row of a label matrix with the in-kernel matchers.

        Mirrors the ``_classify`` cascade exactly: brand-domain veto and
        wrongTLD (KIND_BRAND, decided per row later), candidate hash join,
        IDN/unicode fallback routing, vector homograph, vector combo.
        Rows the vector reject proves benign stay KIND_NONE.
        """
        mat = self.matrices
        flags = self._flags(padded, lens)
        n = padded.shape[0]
        kind = np.zeros(n, dtype=np.int8)
        type_code = np.full(n, -1, dtype=np.int8)
        brands: List[Optional[str]] = [None] * n
        details: List[Optional[str]] = [None] * n
        fb_code = np.zeros(n, dtype=np.int8)

        # candidate hits outrank the IDN step in the scalar cascade, so an
        # enumerated punycode candidate still resolves in-kernel; all other
        # xn--/non-ASCII labels take the scalar cascade (steps 2/3 run a
        # per-character DP the byte matrix cannot express)
        fb_mask = (flags.nonascii | flags.xn) & ~flags.fast
        kind[fb_mask] = KIND_FALLBACK
        fb_code[flags.nonascii & fb_mask] = FB_UNICODE
        fb_code[flags.xn & ~flags.nonascii & fb_mask] = FB_IDN
        brand_mask = flags.is_brand & ~fb_mask
        kind[brand_mask] = KIND_BRAND
        kind[flags.fast] = KIND_MATCH
        fast_rows = np.nonzero(flags.fast)[0]
        if fast_rows.size:
            type_code[fast_rows] = mat.cand_type_codes[
                flags.cand_pos[fast_rows]]
            for r in fast_rows:
                brands[r] = self.cand_brands[flags.cand_pos[r]]

        rest = flags.keep & (kind == KIND_NONE)
        self._resolve_homograph(padded, lens, flags, rest, kind, type_code,
                                brands, details)
        self._resolve_combo(padded, flags, kind, type_code, brands, details)
        return _LabelResolution(kind, type_code, brands, details,
                                flags.brand_pos, fb_code, flags.keep,
                                flags.fast)

    def _resolve_homograph(self, padded, lens, flags, rest, kind, type_code,
                           brands, details) -> None:
        """Vector step 3: resolve homograph-flagged rows.

        Rows are grouped by (length, edge byte) bucket and walked through
        the bucket's candidates in scalar order; equal-length ASCII
        candidates are decided positionwise against the
        confusable-translation table (for equal lengths every DP step
        consumes exactly one character, so the positionwise check *is*
        the DP).  A row that reaches a shorter or non-ASCII candidate
        goes through the detector's scalar bucket walk — still cheap,
        and counted as a homograph assist rather than a fallback.
        """
        mat = self.matrices
        hom_rows = np.nonzero(flags.homograph & rest)[0]
        if hom_rows.size == 0:
            return
        n = hom_rows.size
        L = lens[hom_rows]
        first = padded[hom_rows, 0]
        last = padded[hom_rows, np.maximum(L - 1, 0)]
        viable = (mat.hb_first[L, first] & flags.ok_first[hom_rows],
                  mat.hb_last[L, last] & flags.ok_last[hom_rows])
        edges = (first.astype(np.int64), last.astype(np.int64))
        sub = padded[hom_rows]
        pres = flags.present[hom_rows]
        # the scalar walk tries first-bucket candidates before last-bucket
        # ones, in insertion order with duplicates skipped; re-checking a
        # candidate is idempotent (a positionwise miss stays a miss), so
        # the two passes below need no cross-bucket dedup
        open_mask = np.ones(n, dtype=bool)
        assist = np.zeros(n, dtype=bool)
        for edge in (0, 1):
            active = np.nonzero(open_mask & viable[edge])[0]
            if active.size == 0:
                continue
            keys = L[active] * 256 + edges[edge][active]
            for key in np.unique(keys):
                bucket = mat.hom_buckets.get(
                    (edge, int(key) // 256, int(key) % 256))
                if not bucket:
                    continue
                group = active[keys == key]
                alive = np.ones(group.size, dtype=bool)
                for enc, brand, allow in bucket:
                    live = group[alive]
                    if live.size == 0:
                        break
                    if enc is None:
                        # shorter or non-ASCII candidate: the scalar DP
                        # must arbitrate any row whose bytes all fall in
                        # the label's allowed set; the rest provably
                        # cannot match it and keep walking
                        compat = ~(pres[live] & ~allow).any(axis=1)
                        if compat.any():
                            assist[live[compat]] = True
                            open_mask[live[compat]] = False
                            alive[alive] = ~compat
                        continue
                    okpos = mat.readable[sub[live], enc].all(axis=1)
                    if okpos.any():
                        for g in live[okpos]:
                            r = int(hom_rows[g])
                            kind[r] = KIND_MATCH
                            type_code[r] = _HOMOGRAPH_CODE
                            brands[r] = brand
                            details[r] = "ascii"
                        open_mask[live[okpos]] = False
                        alive[alive] = ~okpos
        arows = hom_rows[assist]
        if arows.size:
            self.kernel.homograph_assists += int(arows.size)
            detector = self.detector
            for r in arows:
                r = int(r)
                core = padded[r, :lens[r]].tobytes().decode("utf-8")
                found = detector._ascii_homograph_label(core)
                if found is not None:
                    label, detail = found
                    kind[r] = KIND_MATCH
                    type_code[r] = _HOMOGRAPH_CODE
                    brands[r] = detector._brand_by_label[label].name
                    details[r] = detail

    def _resolve_combo(self, padded, flags, kind, type_code,
                       brands, details) -> None:
        """Vector step 4: exact brand/affix span extraction.

        A hyphen-delimited occurrence is a combo *token* (leftmost token
        wins, as in ``core.split('-')`` order), any occurrence of a
        ``combo_min``-or-longer label is a *substring* candidate (longest
        label wins, earliest position on ties — the scalar window scan's
        strictly-longer-replaces rule).  Token verdicts outrank substring
        verdicts, mirroring ``_match_combo``.

        Long entries (len >= combo_w) are found by joining each row's
        packed ``combo_w``-byte windows against the sorted entry-prefix
        codes; full occurrences and boundaries are verified only at the
        sparse (row, window) hit pairs.  Short token-only entries — and
        every entry when the u64 prefix index is unavailable — take the
        dense per-entry occurrence masks.
        """
        mat = self.matrices
        crows = np.nonzero((kind == KIND_NONE) & flags.keep
                           & (flags.hyphen | flags.combo))[0]
        if crows.size == 0 or not mat.combo_entries:
            return
        sub = padded[crows]
        m = crows.size
        hy = flags.hyphen[crows]
        any_hy = bool(hy.any())
        big = np.int64(1 << 62)
        best_tok_pos = np.full(m, big, dtype=np.int64)
        best_tok = np.full(m, -1, dtype=np.int64)
        best_sub_len = np.zeros(m, dtype=np.int64)
        best_sub_pos = np.full(m, big, dtype=np.int64)
        best_sub = np.full(m, -1, dtype=np.int64)
        width = self.width
        if mat.combo_entry_codes is not None:
            self._combo_join(sub, m, hy, any_hy, best_tok_pos, best_tok,
                             best_sub_len, best_sub_pos, best_sub)
            dense_ids = mat.combo_short_ids
        else:
            dense_ids = range(len(mat.combo_entries))
        if dense_ids:
            ext = np.concatenate([sub, np.zeros((m, 1), dtype=np.uint8)],
                                 axis=1)
            for e_idx in dense_ids:
                enc, length, _name, token_ok, sub_ok = \
                    mat.combo_entries[e_idx]
                nwin = width - length + 1
                if nwin <= 0:
                    continue
                occ = np.ones((m, nwin), dtype=bool)
                for j in range(length):
                    occ &= sub[:, j:j + nwin] == enc[j]
                if not occ.any():
                    continue
                if token_ok and any_hy:
                    left = np.empty((m, nwin), dtype=bool)
                    left[:, 0] = True
                    left[:, 1:] = sub[:, :nwin - 1] == _HYPHEN
                    right = ext[:, length:length + nwin]
                    tocc = occ & left & ((right == _HYPHEN) | (right == 0)) \
                        & hy[:, None]
                    thit = tocc.any(axis=1)
                    if thit.any():
                        tpos = np.argmax(tocc, axis=1)
                        better = thit & (tpos < best_tok_pos)
                        best_tok_pos[better] = tpos[better]
                        best_tok[better] = e_idx
                if sub_ok:
                    shit = occ.any(axis=1)
                    spos = np.argmax(occ, axis=1)
                    better = shit & ((length > best_sub_len)
                                     | ((length == best_sub_len)
                                        & (spos < best_sub_pos)))
                    best_sub_len[better] = length
                    best_sub_pos[better] = spos[better]
                    best_sub[better] = e_idx
        for k in np.nonzero(best_tok >= 0)[0]:
            r = int(crows[k])
            kind[r] = KIND_MATCH
            type_code[r] = _COMBO_CODE
            brands[r] = mat.combo_entries[int(best_tok[k])][2]
            details[r] = "token"
        for k in np.nonzero((best_tok < 0) & (best_sub >= 0))[0]:
            r = int(crows[k])
            kind[r] = KIND_MATCH
            type_code[r] = _COMBO_CODE
            brands[r] = mat.combo_entries[int(best_sub[k])][2]
            details[r] = "substring"

    def _combo_join(self, sub, m, hy, any_hy, best_tok_pos, best_tok,
                    best_sub_len, best_sub_pos, best_sub) -> None:
        """Prefix-code join leg of the combo matcher (long entries).

        Packs every ``combo_w``-byte window of ``sub`` into u64 codes,
        joins them against the sorted unique entry-prefix codes, then per
        matching code verifies the candidate entries' remaining bytes and
        boundaries only at the hit (row, window) pairs.  Updates the
        shared best-token / best-substring reduction in place with the
        same strict orderings as the dense path.
        """
        mat = self.matrices
        width = self.width
        w = mat.combo_w
        if mat.combo_entry_codes.size == 0 or width - w + 1 <= 0:
            return
        codes = pack_window_codes(sub, w)
        hit, pos = _membership(mat.combo_entry_codes, codes.ravel())
        nwin = codes.shape[1]
        hit = hit.reshape(m, nwin)
        hrows, hcols = np.nonzero(hit)
        if hrows.size == 0:
            return
        hcodes = pos.reshape(m, nwin)[hrows, hcols]
        big = np.int64(1 << 62)
        for code_idx in np.unique(hcodes):
            sel = hcodes == code_idx
            rows_sel = hrows[sel]
            cols_sel = hcols[sel]
            for e_idx in mat.combo_code_groups[int(code_idx)]:
                enc, length, _name, token_ok, _sub_ok = \
                    mat.combo_entries[e_idx]
                fit = cols_sel <= width - length
                r = rows_sel[fit]
                c = cols_sel[fit]
                ok = np.ones(r.size, dtype=bool)
                for k in range(w, length):
                    ok &= sub[r, c + k] == enc[k]
                r = r[ok]
                c = c[ok]
                if r.size == 0:
                    continue
                # substring reduction: long entries are always in the
                # scalar 4-gram substring index
                tmp = np.full(m, big, dtype=np.int64)
                np.minimum.at(tmp, r, c)
                better = (tmp < big) & ((length > best_sub_len)
                                        | ((length == best_sub_len)
                                           & (tmp < best_sub_pos)))
                best_sub_len[better] = length
                best_sub_pos[better] = tmp[better]
                best_sub[better] = e_idx
                if token_ok and any_hy:
                    leftbyte = sub[r, np.maximum(c - 1, 0)]
                    left = (c == 0) | (leftbyte == _HYPHEN)
                    rb = c + length
                    rbyte = np.where(rb < width,
                                     sub[r, np.minimum(rb, width - 1)], 0)
                    tok = left & ((rbyte == _HYPHEN) | (rbyte == 0)) & hy[r]
                    rt = r[tok]
                    if rt.size:
                        tmp = np.full(m, big, dtype=np.int64)
                        np.minimum.at(tmp, rt, c[tok])
                        better = tmp < best_tok_pos
                        best_tok_pos[better] = tmp[better]
                        best_tok[better] = e_idx

    def _wrongtld_verdict(self, domain: str,
                          brand_pos: int) -> Optional[SquatMatch]:
        """Steps 0 + 5 of the cascade for a row whose core is a brand label."""
        detector = self.detector
        if domain in detector._brand_domains:
            return None  # the brand's own site is not a squat
        brand_domain = self.matrices.brand_domains[brand_pos]
        if brand_domain.lower() == domain:
            return None
        detail = detector.generator.wrongtld.matches(domain, brand_domain)
        if detail is None:
            return None
        return SquatMatch(
            domain=domain,
            brand=self.matrices.brand_names[brand_pos],
            squat_type=SquatType.WRONG_TLD,
            detail=detail,
        )

    # ------------------------------------------------------------------
    # the shared classify-and-emit core behind scan_slice / count_slice
    # ------------------------------------------------------------------
    def _resolve_slice(self, start: int, stop: int,
                       emit: bool = True) -> Tuple[List[SquatMatch],
                                                   np.ndarray]:
        """Classify one id slice: ``(matches, per-type counts)``.

        The single classify-and-emit helper behind :meth:`scan_slice`
        (``emit=True``: SquatMatch objects in id order) and
        :meth:`count_slice` (``emit=False``: histogram only, match rows
        counted without materializing domain strings).
        """
        matches: List[SquatMatch] = []
        counts = np.zeros(len(_TYPE_LIST), dtype=np.int64)
        zone = self.zone
        reg_core = zone.reg_core[start:stop]
        if reg_core.size == 0:
            return matches, counts
        stats = self.kernel
        stats.rows += int(reg_core.size)
        uniq, inv = np.unique(reg_core, return_inverse=True)
        padded, lens = self._gather_labels(uniq)
        if not self.in_kernel:
            self._legacy_slice(start, stop, inv, padded, lens,
                               emit, matches, counts)
            return matches, counts
        res = self._resolve_labels(padded, lens)
        kind_rows = res.kind[inv]
        stats.survivors += int(res.keep[inv].sum())
        stats.fast_hits += int(res.fast[inv].sum())
        interesting = np.nonzero(kind_rows != KIND_NONE)[0]
        if interesting.size == 0:
            return matches, counts
        if not emit:
            match_rows = kind_rows == KIND_MATCH
            if match_rows.any():
                counts += np.bincount(
                    res.type_code[inv][match_rows].astype(np.int64),
                    minlength=len(_TYPE_LIST))
            interesting = interesting[kind_rows[interesting] != KIND_MATCH]
        tld_ids = zone.reg_tld[start:stop]
        tlds = zone.tlds
        core_cache: Dict[int, str] = {}
        classify = self.detector._classify
        for position in interesting:
            u = int(inv[position])
            core = core_cache.get(u)
            if core is None:
                core = padded[u, :lens[u]].tobytes().decode("utf-8")
                core_cache[u] = core
            tld = tlds[tld_ids[position]]
            domain = f"{core}.{tld}" if tld else core
            row_kind = kind_rows[position]
            if row_kind == KIND_MATCH:
                matches.append(SquatMatch(
                    domain=domain,
                    brand=res.brands[u],
                    squat_type=_TYPE_LIST[res.type_code[u]],
                    detail=res.details[u],
                ))
                continue
            if row_kind == KIND_BRAND:
                match = self._wrongtld_verdict(domain, int(res.brand_pos[u]))
            else:
                stats.count_fallback(_FB_REASONS[int(res.fb_code[u])])
                match = classify(domain, core)
            if match is None:
                continue
            if emit:
                matches.append(match)
            else:
                counts[_TYPE_INDEX[match.squat_type]] += 1
        return matches, counts

    def _legacy_slice(self, start: int, stop: int, inv, padded, lens,
                      emit: bool, matches: List[SquatMatch],
                      counts: np.ndarray) -> None:
        """PR 5 survivor loop: every non-candidate survivor runs
        ``_classify``.  Kept as the live benchmark/differential twin."""
        stats = self.kernel
        keep, fast_pos = self._vector_flags(padded, lens)
        keep_rows = keep[inv]
        n_keep = int(keep_rows.sum())
        if n_keep == 0:
            return
        stats.survivors += n_keep
        n_fast = int((fast_pos[inv] >= 0).sum())
        stats.fast_hits += n_fast
        stats.count_fallback("scalar", n_keep - n_fast)
        zone = self.zone
        tld_ids = zone.reg_tld[start:stop]
        tlds = zone.tlds
        core_cache: Dict[int, str] = {}
        classify = self.detector._classify
        for position in np.nonzero(keep_rows)[0]:
            u = int(inv[position])
            core = core_cache.get(u)
            if core is None:
                core = padded[u, :lens[u]].tobytes().decode("utf-8")
                core_cache[u] = core
            tld = tlds[tld_ids[position]]
            domain = f"{core}.{tld}" if tld else core
            fast_idx = int(fast_pos[u])
            if fast_idx >= 0:
                if emit:
                    matches.append(SquatMatch(
                        domain=domain,
                        brand=self.cand_brands[fast_idx],
                        squat_type=self.cand_types[fast_idx],
                    ))
                else:
                    counts[_TYPE_INDEX[self.cand_types[fast_idx]]] += 1
                continue
            match = classify(domain, core)
            if match is None:
                continue
            if emit:
                matches.append(match)
            else:
                counts[_TYPE_INDEX[match.squat_type]] += 1

    # ------------------------------------------------------------------
    def classify_batch(self, domains) -> List[Optional[SquatMatch]]:
        """Vectorized ``classify_domain`` over arbitrary domain names.

        The serving hot path: query names are not zone members, so the
        label matrix is encoded from the queries themselves and resolved
        by the same in-kernel matchers as the zone scan; only
        unrepresentable labels (empty, over-width, punycode, non-ASCII)
        fall back to the reference classifier.  Output is byte-identical
        to per-name :meth:`SquattingDetector.classify_domain` calls, in
        input order.
        """
        n = len(domains)
        verdicts: List[Optional[SquatMatch]] = [None] * n
        normalized: List[str] = [""] * n
        cores: List[str] = [""] * n
        vec_rows: List[int] = []
        encoded: List[bytes] = []
        fallback: List[int] = []
        for i, domain in enumerate(domains):
            name = domain.lower().rstrip(".")
            core = split_domain(name)[0]
            normalized[i] = name
            cores[i] = core
            raw = core.encode("utf-8")
            if 0 < len(raw) <= self.width:
                vec_rows.append(i)
                encoded.append(raw)
            else:
                fallback.append(i)
        stats = self.kernel
        stats.rows += n
        classify = self.detector._classify
        if encoded:
            padded = np.array(encoded, dtype=self.sdtype) \
                .view(np.uint8).reshape(len(encoded), self.width)
            lens = np.fromiter((len(raw) for raw in encoded),
                               dtype=np.int64, count=len(encoded))
            if self.in_kernel:
                res = self._resolve_labels(padded, lens)
                stats.survivors += int(res.keep.sum())
                stats.fast_hits += int(res.fast.sum())
                for row in np.nonzero(res.kind != KIND_NONE)[0]:
                    row = int(row)
                    i = vec_rows[row]
                    row_kind = res.kind[row]
                    if row_kind == KIND_MATCH:
                        verdicts[i] = SquatMatch(
                            domain=normalized[i],
                            brand=res.brands[row],
                            squat_type=_TYPE_LIST[res.type_code[row]],
                            detail=res.details[row],
                        )
                    elif row_kind == KIND_BRAND:
                        verdicts[i] = self._wrongtld_verdict(
                            normalized[i], int(res.brand_pos[row]))
                    else:
                        stats.count_fallback(_FB_REASONS[int(res.fb_code[row])])
                        verdicts[i] = classify(normalized[i], cores[i])
            else:
                keep, fast_pos = self._vector_flags(padded, lens)
                n_keep = int(keep.sum())
                stats.survivors += n_keep
                n_fast = int((fast_pos >= 0).sum())
                stats.fast_hits += n_fast
                stats.count_fallback("scalar", n_keep - n_fast)
                for row in np.nonzero(keep)[0]:
                    i = vec_rows[row]
                    fast_idx = int(fast_pos[row])
                    if fast_idx >= 0:
                        verdicts[i] = SquatMatch(
                            domain=normalized[i],
                            brand=self.cand_brands[fast_idx],
                            squat_type=self.cand_types[fast_idx],
                        )
                    else:
                        verdicts[i] = classify(normalized[i], cores[i])
        for i in fallback:
            stats.count_fallback("empty" if not cores[i] else "width")
            verdicts[i] = classify(normalized[i], cores[i])
        return verdicts

    # ------------------------------------------------------------------
    def scan_slice(self, start: int, stop: int) -> List[SquatMatch]:
        matches, _ = self._resolve_slice(start, stop, emit=True)
        return matches

    def count_slice(self, start: int, stop: int) -> Dict[SquatType, int]:
        _, counts = self._resolve_slice(start, stop, emit=False)
        return {squat_type: int(count)
                for squat_type, count in zip(_TYPE_LIST, counts) if count}


# ----------------------------------------------------------------------
# kernel stats surfacing: the last packed scan's accounting, consumed by
# the perf report (throughput metadata only — never digest input)
# ----------------------------------------------------------------------
_LAST_SCAN_STATS: Optional[KernelStats] = None


def take_last_scan_stats() -> Optional[KernelStats]:
    """Stats of the most recent packed scan in this process, consumed on
    read so a later dict-backed scan cannot be misattributed."""
    global _LAST_SCAN_STATS
    stats, _LAST_SCAN_STATS = _LAST_SCAN_STATS, None
    return stats


def clear_last_scan_stats() -> None:
    global _LAST_SCAN_STATS
    _LAST_SCAN_STATS = None


# ----------------------------------------------------------------------
# pool plumbing: workers get (start, stop) id ranges only, mmap the
# snapshot once per process, and scan slices zero-copy
# ----------------------------------------------------------------------

# parent-built pool state, (detector, context, key).  Built *before* the
# process pool starts, so fork-start platforms (Linux) hand every worker
# the finished detector indices and scan context as copy-on-write pages
# and the per-worker initializer reduces to a key comparison.  The
# detector strong ref pins id(detector), so a key can never alias a
# recycled address while it is cached.
_POOL_STATE: Optional[Tuple[object, PackedScanContext, Tuple]] = None


def _pool_context(detector, zone: PackedZone,
                  width: Optional[int] = None,
                  in_kernel: bool = True) -> Tuple[PackedScanContext, Tuple]:
    """The scan context for (detector, zone, width, mode), cached in
    module state."""
    global _POOL_STATE
    key = (id(detector), zone.content_digest, width or 0, bool(in_kernel))
    if _POOL_STATE is None or _POOL_STATE[2] != key:
        _POOL_STATE = (detector,
                       PackedScanContext(detector, zone, width=width,
                                         in_kernel=in_kernel), key)
    return _POOL_STATE[1], key


def _packed_pool_init(catalog, generator, path: str, key: Tuple) -> None:
    global _POOL_STATE
    key = tuple(key)
    if _POOL_STATE is not None and _POOL_STATE[2] == key:
        return  # fork-inherited from the parent, nothing to rebuild
    # spawn-start platforms (or a stale inherited key): rebuild from the
    # picklable initargs
    from repro.squatting.detector import SquattingDetector  # lazy: no cycle
    detector = SquattingDetector(catalog, generator)
    width = int(key[2]) or None
    _POOL_STATE = (detector,
                   PackedScanContext(detector, PackedZone.load(path),
                                     width=width, in_kernel=bool(key[3])),
                   key)


def _packed_scan_slice(
        bounds: Tuple[int, int]) -> Tuple[List[SquatMatch], KernelStats]:
    state = _POOL_STATE
    assert state is not None, "pool worker used before initialization"
    context = state[1]
    before = context.kernel.copy()
    matches = context.scan_slice(*bounds)
    return matches, context.kernel.delta(before)


def _packed_count_slice(
        bounds: Tuple[int, int]) -> Tuple[Dict[SquatType, int], KernelStats]:
    state = _POOL_STATE
    assert state is not None, "pool worker used before initialization"
    context = state[1]
    before = context.kernel.copy()
    histogram = context.count_slice(*bounds)
    return histogram, context.kernel.delta(before)


def _slice_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    chunk = max(chunk_size, PACKED_CHUNK)
    return [(i, min(i + chunk, total)) for i in range(0, total, chunk)]


def packed_scan(detector, zone: PackedZone, workers: int = 1,
                chunk_size: int = PACKED_CHUNK,
                width: Optional[int] = None,
                in_kernel: bool = True) -> List[SquatMatch]:
    """Vectorized :meth:`SquattingDetector.scan` over a packed zone.

    Slice results concatenate in id order, so output equals the serial
    dict-backed scan for any worker count.  ``width`` forces a (>=
    natural) label-matrix width so repeated scans over differently-sized
    zones — the streaming driver's per-segment delta scans — share one
    cached :class:`DetectorMatrices` build; results are identical at any
    legal width.  ``in_kernel=False`` routes survivors through the PR 5
    per-domain classifier loop (the benchmark twin) — identical output,
    scalar-tail throughput.  Either way the run's :class:`KernelStats`
    are published via :func:`take_last_scan_stats`.
    """
    global _LAST_SCAN_STATS
    bounds = _slice_bounds(zone.n_registered, chunk_size)
    total = KernelStats()
    if workers <= 1 or len(bounds) <= 1:
        context, _ = _pool_context(detector, zone, width, in_kernel)
        before = context.kernel.copy()
        matches: List[SquatMatch] = []
        for start, stop in bounds:
            matches.extend(context.scan_slice(start, stop))
        total = context.kernel.delta(before)
        _LAST_SCAN_STATS = total
        return matches
    path = zone.ensure_file()
    _, key = _pool_context(detector, zone, width, in_kernel)  # prefork
    chunks = process_map(
        _packed_scan_slice, bounds, workers,
        initializer=_packed_pool_init,
        initargs=(detector.catalog, detector.generator, str(path), key))
    matches = []
    for chunk, delta in chunks:
        matches.extend(chunk)
        total.merge(delta)
    _LAST_SCAN_STATS = total
    return matches


def packed_scan_counts(detector, zone: PackedZone, workers: int = 1,
                       chunk_size: int = PACKED_CHUNK,
                       width: Optional[int] = None,
                       in_kernel: bool = True) -> Dict[SquatType, int]:
    """Vectorized :meth:`SquattingDetector.scan_counts` over a packed zone."""
    global _LAST_SCAN_STATS
    counts: Dict[SquatType, int] = {t: 0 for t in SquatType}
    bounds = _slice_bounds(zone.n_registered, chunk_size)
    total = KernelStats()
    if workers <= 1 or len(bounds) <= 1:
        context, _ = _pool_context(detector, zone, width, in_kernel)
        before = context.kernel.copy()
        histograms = [context.count_slice(start, stop)
                      for start, stop in bounds]
        total = context.kernel.delta(before)
    else:
        path = zone.ensure_file()
        _, key = _pool_context(detector, zone, width, in_kernel)  # prefork
        results = process_map(
            _packed_count_slice, bounds, workers,
            initializer=_packed_pool_init,
            initargs=(detector.catalog, detector.generator, str(path), key))
        histograms = []
        for histogram, delta in results:
            histograms.append(histogram)
            total.merge(delta)
    for histogram in histograms:
        for squat_type, count in histogram.items():
            counts[squat_type] += count
    _LAST_SCAN_STATS = total
    return counts
