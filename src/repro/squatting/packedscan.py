"""Vectorized squat scan over packed columnar zone snapshots.

The dict-backed scan calls ``classify_domain`` once per registered
domain — dominated by Python dict lookups that reject the overwhelmingly
benign majority.  A :class:`~repro.dns.packedzone.PackedZone` stores core
labels as one contiguous byte blob, so the reject decision vectorizes:
each scan slice gathers its unique core labels into a fixed-width
``S``-dtype matrix and runs a sorted-array hash-join against the
detector's enumerable candidate index plus cheap byte-level prefilters
for every other rule.  Only the (rare) labels that *could* match fall
back to the per-domain Python classifier, whose verdict defines the
output — so results are byte-identical to the serial dict scan.

A label is provably unclassifiable (the vector reject) when **all** hold:

* not a brand core label and no enumerable-candidate hit (steps 1 & 5),
* no ``xn--`` prefix (step 2),
* both homograph buckets ``(len, first char)`` / ``(len, last char)``
  are empty (step 3 — ``_match_ascii_homograph``'s own prefilter),
* no hyphen and no window of ``combo_min`` bytes matches a brand-label
  prefix (step 4 — a superset of ``_match_combo``'s candidates).

Fixed-width ``S`` comparisons ignore trailing NUL padding, which is
exactly padding-insensitive string equality here: labels are UTF-8 with
no embedded NULs, so no two distinct labels collapse.

Pool protocol: workers receive only ``(start, stop)`` registered-domain
id ranges, mmap the snapshot file in their initializer, and scan their
slices zero-copy — nothing per-chunk is pickled either way.

This module must not import ``repro.squatting.detector`` at module level
(the detector imports us for dispatch); workers import it lazily.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dns.packedzone import PackedZone
from repro.dns.records import split_domain
from repro.perf.engine import process_map
from repro.squatting.confusables import CONFUSABLES
from repro.squatting.types import SquatMatch, SquatType

# floor on the per-slice registered-domain span: vector setup costs are
# amortized per slice, so packed slices run much coarser than the 512-
# domain pickled chunks of the dict-backed pool path
PACKED_CHUNK = 4096

_HYPHEN = ord("-")


def _allowed_bytes(label: str, memo: Dict[str, np.ndarray]) -> np.ndarray:
    """256-wide mask of bytes a homograph of ``label`` could contain.

    Union of the label's own characters and every character of every
    registered confusable variant of them — a superset of what the
    matching DP (:func:`repro.squatting.confusables.matches_homograph`)
    can consume, so masking with it never rejects a true match.
    """
    mask = memo.get(label)
    if mask is None:
        chars = set(label)
        for base in set(label):
            for variant in CONFUSABLES.get(base, ()):
                chars.update(variant)
        mask = np.zeros(256, dtype=bool)
        for char in chars:
            if ord(char) < 256:
                mask[ord(char)] = True
        memo[label] = mask
    return mask


def _membership(keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(hit mask, key position) of each value in a sorted key array."""
    if keys.size == 0:
        return (np.zeros(values.shape, dtype=bool),
                np.zeros(values.shape, dtype=np.int64))
    pos = np.searchsorted(keys, values)
    np.minimum(pos, keys.size - 1, out=pos)
    return keys[pos] == values, pos


class DetectorMatrices:
    """Vector-side detector indices for one (detector, label width) pair.

    Everything here is a pure function of the detector's python indices
    and the fixed label width — independent of which zone slice (or
    which arbitrary query batch) is being classified — so one build is
    shared between the batch scan context and the serve engine via
    :func:`detector_matrices`.
    """

    def __init__(self, detector, width: int) -> None:
        self.width = width
        sdtype = np.dtype(f"S{width}")

        # enumerable candidates (homograph-ASCII / bits / typo), sorted for
        # the hash join; labels longer than any observed core cannot match
        items = [(label.encode("utf-8"), brand, squat_type)
                 for label, (brand, squat_type)
                 in detector._candidate_index.items()]
        items = [item for item in items if len(item[0]) <= width]
        raw = np.array([item[0] for item in items], dtype=sdtype) \
            if items else np.zeros(0, dtype=sdtype)
        order = np.argsort(raw, kind="stable")
        self.cand_keys = raw[order]
        self.cand_brands: List[str] = [items[i][1] for i in order]
        self.cand_types: List[SquatType] = [items[i][2] for i in order]

        brands = [label.encode("utf-8") for label in detector._brand_by_label]
        brands = [b for b in brands if len(b) <= width]
        self.brand_keys = np.sort(np.array(brands, dtype=sdtype)) \
            if brands else np.zeros(0, dtype=sdtype)

        # homograph bucket occupancy tables keyed (observed length, edge
        # byte), plus per-bucket allowed-character masks.  The confusables
        # DP can only consume a label character that is literally in the
        # brand label or appears in some confusable variant of one of its
        # characters, so a label with any byte outside the union mask of a
        # bucket cannot match any brand in that bucket — the step-3 reject
        # this makes vectorizable is what keeps random labels off the
        # per-domain Python fallback.
        self.hb_first = np.zeros((width + 1, 256), dtype=bool)
        self.hb_last = np.zeros((width + 1, 256), dtype=bool)
        self.hb_first_allow = np.zeros((width + 1, 256, 256), dtype=bool)
        self.hb_last_allow = np.zeros((width + 1, 256, 256), dtype=bool)
        allow_memo: Dict[str, np.ndarray] = {}
        for (length, edge, char), labels in detector._homograph_buckets.items():
            if not (0 <= length <= width and len(char) == 1
                    and ord(char) < 256):
                continue
            occupancy = self.hb_first if edge == 0 else self.hb_last
            occupancy[length, ord(char)] = True
            allow = self.hb_first_allow if edge == 0 else self.hb_last_allow
            for label in labels:
                allow[length, ord(char)] |= _allowed_bytes(label, allow_memo)

        # combo window keys: every combo-index prefix packed big-endian
        # into a u64 (W <= 8 always holds for the default combo model; a
        # wider W just disables this reject term, which is conservative)
        self.combo_w = detector.generator.combo.min_brand_length
        self.combo_keys: Optional[np.ndarray] = None
        if 1 <= self.combo_w <= 8:
            codes = sorted(
                int.from_bytes(prefix.encode("utf-8"), "big")
                for prefix in detector._combo_prefix_index
                if len(prefix.encode("utf-8")) == self.combo_w)
            self.combo_keys = np.array(codes, dtype=np.uint64)


# (id(detector), width) -> (detector, matrices).  A handful of entries per
# process at most — one per live detector × snapshot shape; the detector
# strong ref both pins the id against address recycling and keeps the
# matrices valid for as long as anyone could present the same key.
_MATRICES_CACHE: Dict[Tuple[int, int], Tuple[object, DetectorMatrices]] = {}


def detector_matrices(detector, width: int) -> DetectorMatrices:
    """The shared :class:`DetectorMatrices` build for (detector, width).

    The allow-mask tables are the expensive part (the (width+1, 256, 256)
    byte cubes); caching here means a process that both scans a snapshot
    and serves queries over it pays for them once.
    """
    key = (id(detector), width)
    entry = _MATRICES_CACHE.get(key)
    if entry is None or entry[0] is not detector:
        entry = (detector, DetectorMatrices(detector, width))
        _MATRICES_CACHE[key] = entry
    return entry[1]


class PackedScanContext:
    """Per-process scan state: detector + packed zone + vector indices."""

    def __init__(self, detector, zone: PackedZone,
                 width: Optional[int] = None) -> None:
        self.detector = detector
        self.zone = zone
        if zone.n_cores:
            lens = np.diff(zone.core_off.astype(np.int64))
            natural = max(int(lens.max()), 1)
        else:
            natural = 1
        # a caller-forced width only ever *widens* the label matrix:
        # narrower than the zone's longest core would truncate labels in
        # the gather and could false-reject.  The streaming driver pins
        # one width across all delta segments so every segment scan hits
        # the same cached DetectorMatrices build.
        self.width = max(natural, int(width)) if width else natural
        self.sdtype = np.dtype(f"S{self.width}")
        matrices = detector_matrices(detector, self.width)
        self.matrices = matrices
        self.cand_keys = matrices.cand_keys
        self.cand_brands = matrices.cand_brands
        self.cand_types = matrices.cand_types
        self.brand_keys = matrices.brand_keys
        self.hb_first = matrices.hb_first
        self.hb_last = matrices.hb_last
        self.hb_first_allow = matrices.hb_first_allow
        self.hb_last_allow = matrices.hb_last_allow
        self.combo_w = matrices.combo_w
        self.combo_keys = matrices.combo_keys

    # ------------------------------------------------------------------
    def _survivors(self, start: int, stop: int):
        """Yield ``(domain, fast_candidate_pos, core)`` for every domain in
        ``[start, stop)`` that survives the vector reject, in id order.

        ``fast_candidate_pos >= 0`` marks a pure step-1 hit whose match is
        emitted straight from the candidate index; ``-1`` means the Python
        classifier must decide.
        """
        zone = self.zone
        reg_core = zone.reg_core[start:stop]
        if reg_core.size == 0:
            return
        uniq, inv = np.unique(reg_core, return_inverse=True)
        core_off = zone.core_off
        starts = core_off[uniq].astype(np.int64)
        lens = core_off[uniq + 1].astype(np.int64) - starts
        width = self.width
        cols = np.arange(width, dtype=np.int64)
        blob = zone.core_blob
        if blob.size:
            idx = starts[:, None] + cols[None, :]
            np.minimum(idx, blob.size - 1, out=idx)
            padded = blob[idx]
        else:
            padded = np.zeros((uniq.size, width), dtype=np.uint8)
        padded[cols[None, :] >= lens[:, None]] = 0
        keep, fast_pos = self._vector_flags(padded, lens)
        if not keep.any():
            return

        tld_ids = zone.reg_tld[start:stop]
        tlds = zone.tlds
        core_cache: Dict[int, str] = {}
        for position in np.nonzero(keep[inv])[0]:
            u = int(inv[position])
            core = core_cache.get(u)
            if core is None:
                core = padded[u, :lens[u]].tobytes().decode("utf-8")
                core_cache[u] = core
            tld = tlds[tld_ids[position]]
            domain = f"{core}.{tld}" if tld else core
            yield domain, int(fast_pos[u]), core

    def _vector_flags(self, padded: np.ndarray,
                      lens: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(keep mask, fast candidate position) of the vector reject.

        ``padded`` is a NUL-padded ``(rows, width)`` uint8 label matrix
        with ``lens`` true byte lengths (each ``1..width``) — either
        gathered from the snapshot's core blob (:meth:`_survivors`) or
        encoded from arbitrary query labels (:meth:`classify_batch`).
        ``fast_pos[i] >= 0`` marks a pure step-1 candidate hit; entries
        kept with ``-1`` need the Python classifier.
        """
        n = padded.shape[0]
        keys = np.ascontiguousarray(padded).view(self.sdtype).ravel()

        is_brand, _ = _membership(self.brand_keys, keys)
        cand_hit, cand_pos = _membership(self.cand_keys, keys)
        nonascii = (padded & 0x80).any(axis=1)
        hyphen = (padded == _HYPHEN).any(axis=1)
        if self.width >= 4:
            xn = ((lens >= 4)
                  & (padded[:, 0] == 120) & (padded[:, 1] == 110)
                  & (padded[:, 2] == 45) & (padded[:, 3] == 45))
        else:
            xn = np.zeros(n, dtype=bool)
        rows = np.arange(n)
        first = padded[:, 0]
        last = padded[rows, np.maximum(lens - 1, 0)]
        # which bytes occur in each label (NUL padding cleared), to test
        # against the per-bucket allowed-character masks
        present = np.zeros((n, 256), dtype=bool)
        present[rows[:, None], padded] = True
        present[:, 0] = False
        ok_first = ~(present & ~self.hb_first_allow[lens, first]).any(axis=1)
        ok_last = ~(present & ~self.hb_last_allow[lens, last]).any(axis=1)
        homograph = ((self.hb_first[lens, first] & ok_first)
                     | (self.hb_last[lens, last] & ok_last))
        combo = self._combo_window_hits(padded, n)

        fast = cand_hit & ~is_brand
        keep = is_brand | cand_hit | xn | homograph | hyphen | combo | nonascii
        fast_pos = np.where(fast, cand_pos, -1)
        return keep, fast_pos

    def classify_batch(self, domains) -> List[Optional[SquatMatch]]:
        """Vectorized ``classify_domain`` over arbitrary domain names.

        The serving hot path: query names are not zone members, so the
        label matrix is encoded from the queries themselves and run
        through the same vector reject as :meth:`_survivors`; the rare
        survivors (plus labels the key arrays cannot represent — empty,
        or wider than the snapshot's interned cores) fall back to the
        reference classifier.  Output is byte-identical to per-name
        :meth:`SquattingDetector.classify_domain` calls, in input order.
        """
        n = len(domains)
        verdicts: List[Optional[SquatMatch]] = [None] * n
        normalized: List[str] = [""] * n
        cores: List[str] = [""] * n
        vec_rows: List[int] = []
        encoded: List[bytes] = []
        fallback: List[int] = []
        for i, domain in enumerate(domains):
            name = domain.lower().rstrip(".")
            core = split_domain(name)[0]
            normalized[i] = name
            cores[i] = core
            raw = core.encode("utf-8")
            if 0 < len(raw) <= self.width:
                vec_rows.append(i)
                encoded.append(raw)
            else:
                fallback.append(i)
        classify = self.detector._classify
        if encoded:
            padded = np.array(encoded, dtype=self.sdtype) \
                .view(np.uint8).reshape(len(encoded), self.width)
            lens = np.fromiter((len(raw) for raw in encoded),
                               dtype=np.int64, count=len(encoded))
            keep, fast_pos = self._vector_flags(padded, lens)
            for row in np.nonzero(keep)[0]:
                i = vec_rows[row]
                fast_idx = int(fast_pos[row])
                if fast_idx >= 0:
                    verdicts[i] = SquatMatch(
                        domain=normalized[i],
                        brand=self.cand_brands[fast_idx],
                        squat_type=self.cand_types[fast_idx],
                    )
                else:
                    verdicts[i] = classify(normalized[i], cores[i])
        for i in fallback:
            verdicts[i] = classify(normalized[i], cores[i])
        return verdicts

    def _combo_window_hits(self, padded: np.ndarray, rows: int) -> np.ndarray:
        """Mask of labels with any ``combo_w``-byte window in the combo
        prefix index.  Padding windows hold NUL bytes and real prefixes
        never do, so out-of-length windows can't false-positive."""
        w = self.combo_w
        if self.combo_keys is None:
            # reject term unavailable: conservatively keep everything
            return np.ones(rows, dtype=bool)
        nwin = self.width - w + 1
        if nwin <= 0 or self.combo_keys.size == 0:
            return np.zeros(rows, dtype=bool)
        codes = np.zeros((rows, nwin), dtype=np.uint64)
        for j in range(w):
            codes <<= np.uint64(8)
            codes |= padded[:, j:j + nwin]
        hit, _ = _membership(self.combo_keys, codes.ravel())
        return hit.reshape(rows, nwin).any(axis=1)

    # ------------------------------------------------------------------
    def scan_slice(self, start: int, stop: int) -> List[SquatMatch]:
        matches: List[SquatMatch] = []
        classify = self.detector._classify
        for domain, fast_idx, core in self._survivors(start, stop):
            if fast_idx >= 0:
                matches.append(SquatMatch(
                    domain=domain,
                    brand=self.cand_brands[fast_idx],
                    squat_type=self.cand_types[fast_idx],
                ))
            else:
                match = classify(domain, core)
                if match is not None:
                    matches.append(match)
        return matches

    def count_slice(self, start: int, stop: int) -> Dict[SquatType, int]:
        counts: Dict[SquatType, int] = {}
        classify = self.detector._classify
        for domain, fast_idx, core in self._survivors(start, stop):
            if fast_idx >= 0:
                squat_type = self.cand_types[fast_idx]
            else:
                match = classify(domain, core)
                if match is None:
                    continue
                squat_type = match.squat_type
            counts[squat_type] = counts.get(squat_type, 0) + 1
        return counts


# ----------------------------------------------------------------------
# pool plumbing: workers get (start, stop) id ranges only, mmap the
# snapshot once per process, and scan slices zero-copy
# ----------------------------------------------------------------------

# parent-built pool state, (detector, context, key).  Built *before* the
# process pool starts, so fork-start platforms (Linux) hand every worker
# the finished detector indices and scan context as copy-on-write pages
# and the per-worker initializer reduces to a key comparison.  The
# detector strong ref pins id(detector), so a key can never alias a
# recycled address while it is cached.
_POOL_STATE: Optional[Tuple[object, PackedScanContext, Tuple]] = None


def _pool_context(detector, zone: PackedZone,
                  width: Optional[int] = None) -> Tuple[PackedScanContext,
                                                        Tuple]:
    """The scan context for (detector, zone, width), cached in module state."""
    global _POOL_STATE
    key = (id(detector), zone.content_digest, width or 0)
    if _POOL_STATE is None or _POOL_STATE[2] != key:
        _POOL_STATE = (detector,
                       PackedScanContext(detector, zone, width=width), key)
    return _POOL_STATE[1], key


def _packed_pool_init(catalog, generator, path: str, key: Tuple) -> None:
    global _POOL_STATE
    key = tuple(key)
    if _POOL_STATE is not None and _POOL_STATE[2] == key:
        return  # fork-inherited from the parent, nothing to rebuild
    # spawn-start platforms (or a stale inherited key): rebuild from the
    # picklable initargs
    from repro.squatting.detector import SquattingDetector  # lazy: no cycle
    detector = SquattingDetector(catalog, generator)
    width = int(key[2]) or None
    _POOL_STATE = (detector,
                   PackedScanContext(detector, PackedZone.load(path),
                                     width=width), key)


def _packed_scan_slice(bounds: Tuple[int, int]) -> List[SquatMatch]:
    state = _POOL_STATE
    assert state is not None, "pool worker used before initialization"
    return state[1].scan_slice(*bounds)


def _packed_count_slice(bounds: Tuple[int, int]) -> Dict[SquatType, int]:
    state = _POOL_STATE
    assert state is not None, "pool worker used before initialization"
    return state[1].count_slice(*bounds)


def _slice_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    chunk = max(chunk_size, PACKED_CHUNK)
    return [(i, min(i + chunk, total)) for i in range(0, total, chunk)]


def packed_scan(detector, zone: PackedZone, workers: int = 1,
                chunk_size: int = PACKED_CHUNK,
                width: Optional[int] = None) -> List[SquatMatch]:
    """Vectorized :meth:`SquattingDetector.scan` over a packed zone.

    Slice results concatenate in id order, so output equals the serial
    dict-backed scan for any worker count.  ``width`` forces a (>=
    natural) label-matrix width so repeated scans over differently-sized
    zones — the streaming driver's per-segment delta scans — share one
    cached :class:`DetectorMatrices` build; results are identical at any
    legal width.
    """
    bounds = _slice_bounds(zone.n_registered, chunk_size)
    if workers <= 1 or len(bounds) <= 1:
        context, _ = _pool_context(detector, zone, width)
        matches: List[SquatMatch] = []
        for start, stop in bounds:
            matches.extend(context.scan_slice(start, stop))
        return matches
    path = zone.ensure_file()
    _, key = _pool_context(detector, zone, width)  # prefork: workers inherit it
    chunks = process_map(
        _packed_scan_slice, bounds, workers,
        initializer=_packed_pool_init,
        initargs=(detector.catalog, detector.generator, str(path), key))
    return [match for chunk in chunks for match in chunk]


def packed_scan_counts(detector, zone: PackedZone, workers: int = 1,
                       chunk_size: int = PACKED_CHUNK,
                       width: Optional[int] = None) -> Dict[SquatType, int]:
    """Vectorized :meth:`SquattingDetector.scan_counts` over a packed zone."""
    counts: Dict[SquatType, int] = {t: 0 for t in SquatType}
    bounds = _slice_bounds(zone.n_registered, chunk_size)
    if workers <= 1 or len(bounds) <= 1:
        context, _ = _pool_context(detector, zone, width)
        histograms = [context.count_slice(start, stop)
                      for start, stop in bounds]
    else:
        path = zone.ensure_file()
        _, key = _pool_context(detector, zone, width)  # prefork: workers inherit it
        histograms = process_map(
            _packed_count_slice, bounds, workers,
            initializer=_packed_pool_init,
            initargs=(detector.catalog, detector.generator, str(path), key))
    for histogram in histograms:
        for squat_type, count in histogram.items():
            counts[squat_type] += count
    return counts
