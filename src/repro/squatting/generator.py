"""Unified squatting-candidate generation across all five models.

Used in two places: the synthetic world registers attacker/speculator domains
drawn from these candidate pools, and the detector hash-joins the enumerable
pools against the DNS snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.brands.catalog import Brand
from repro.dns.records import KNOWN_TLDS, split_domain
from repro.squatting.bits import BitsModel
from repro.squatting.combo import ComboModel
from repro.squatting.homograph import HomographModel
from repro.squatting.typo import TypoModel
from repro.squatting.types import SquatType
from repro.squatting.wrongtld import WrongTLDModel


@dataclass
class CandidateSet:
    """Enumerable squat candidates of one brand, keyed by squat type.

    ``labels`` hold bare labels (any TLD may be attached); ``domains`` hold
    full registered domains (wrongTLD candidates carry their TLD).
    """

    brand: str
    labels: Dict[SquatType, Set[str]] = field(default_factory=dict)
    domains: Dict[SquatType, Set[str]] = field(default_factory=dict)

    def total(self) -> int:
        return sum(len(v) for v in self.labels.values()) + sum(
            len(v) for v in self.domains.values()
        )


class SquattingGenerator:
    """Enumerate squat candidates for brands using all five models."""

    def __init__(
        self,
        homograph: Optional[HomographModel] = None,
        typo: Optional[TypoModel] = None,
        bits: Optional[BitsModel] = None,
        combo: Optional[ComboModel] = None,
        wrongtld: Optional[WrongTLDModel] = None,
    ) -> None:
        self.homograph = homograph or HomographModel()
        self.typo = typo or TypoModel()
        self.bits = bits or BitsModel()
        self.combo = combo or ComboModel()
        self.wrongtld = wrongtld or WrongTLDModel()

    def candidates(self, brand: Brand, include_combo: bool = False) -> CandidateSet:
        """Generate the candidate set for one brand.

        Combo squats are unbounded; they are only included (from the common
        affix list) when ``include_combo`` is set, e.g. for world building.
        """
        label = brand.core_label
        out = CandidateSet(brand=brand.name)
        out.labels[SquatType.HOMOGRAPH] = self.homograph.generate(label)
        out.labels[SquatType.TYPO] = self.typo.generate(label)
        out.labels[SquatType.BITS] = self.bits.generate(label)
        if include_combo:
            out.labels[SquatType.COMBO] = self.combo.generate(label)
        out.domains[SquatType.WRONG_TLD] = self.wrongtld.generate(brand.domain)
        self._make_disjoint(out, label)
        return out

    @staticmethod
    def _make_disjoint(candidates: CandidateSet, brand_label: str) -> None:
        """Enforce the paper's orthogonality: each candidate belongs to one
        type, resolved in priority order homograph > bits > typo > combo."""
        priority = (SquatType.HOMOGRAPH, SquatType.BITS, SquatType.TYPO, SquatType.COMBO)
        claimed: Set[str] = {brand_label}
        for squat_type in priority:
            pool = candidates.labels.get(squat_type)
            if pool is None:
                continue
            pool -= claimed
            claimed |= pool
