"""Baseline squat generators: DNSTwist- and URLCrazy-alikes (§3.1).

The paper motivates its own detector by the gaps in the state of the art:

* **DNSTwist** generates typo/bits/homograph permutations of a given domain
  but ships an *incomplete* confusables table (13 of the 23 look-alikes of
  "a") and keeps the original TLD — so ``facebookj.es`` and
  ``facebook.audi`` are never produced;
* **URLCrazy** focuses on typo classes (character swaps, keyboard
  adjacency, common misspellings) with the same fixed-TLD limitation, and
  handles neither combo squatting nor wrongTLD.

We implement both as honest baselines over the same model classes the real
tools implement, so the coverage comparison (``bench_baseline_comparison``)
measures exactly the paper's argument: candidates the baselines can
enumerate vs the squats that actually exist in the zone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.idna import IDNAError, label_to_ascii
from repro.dns.records import split_domain
from repro.squatting.bits import BitsModel
from repro.squatting.confusables import dnstwist_subset
from repro.squatting.typo import QWERTY_NEIGHBOURS, TypoModel
from repro.squatting.types import SquatType


@dataclass
class BaselineReport:
    """Coverage of one baseline against observed squats."""

    name: str
    generated: int
    matched: int
    observed: int

    @property
    def recall(self) -> float:
        return self.matched / self.observed if self.observed else 0.0


class DNSTwistBaseline:
    """DNSTwist-style permutation engine.

    Produces typo (omission/repetition/transposition/insertion), bits, and
    homograph candidates — the latter from the *reduced* confusables table —
    always under the brand's own TLD.
    """

    name = "dnstwist"

    def __init__(self) -> None:
        self._typo = TypoModel()
        self._bits = BitsModel()
        self._confusables = dnstwist_subset()

    def generate(self, domain: str) -> Set[str]:
        """Candidate registered domains for one brand domain."""
        label, tld = split_domain(domain)
        candidates: Set[str] = set()
        candidates.update(self._typo.generate(label))
        candidates.update(self._bits.generate(label))
        candidates.update(self._homograph_labels(label))
        candidates.discard(label)
        suffix = f".{tld}" if tld else ""
        return {f"{candidate}{suffix}" for candidate in candidates if candidate}

    def _homograph_labels(self, label: str) -> Set[str]:
        out: Set[str] = set()
        for index, char in enumerate(label):
            for variant in self._confusables.get(char, ()):
                mutated = label[:index] + variant + label[index + 1:]
                if all(ord(c) < 128 for c in mutated):
                    out.add(mutated)
                    continue
                try:
                    out.add(label_to_ascii(mutated))
                except IDNAError:
                    continue
        return out


class URLCrazyBaseline:
    """URLCrazy-style typo generator.

    Character omission/repetition/transposition, keyboard-adjacent
    substitutions and insertions, and vowel swaps — original TLD only.
    """

    name = "urlcrazy"

    VOWELS = "aeiou"

    def __init__(self) -> None:
        self._typo = TypoModel()

    def generate(self, domain: str) -> Set[str]:
        label, tld = split_domain(domain)
        candidates: Set[str] = set()
        candidates.update(self._typo.omissions(label))
        candidates.update(self._typo.repetitions(label))
        candidates.update(self._typo.transpositions(label))
        candidates.update(self._typo.keyboard_insertions(label))
        candidates.update(self._keyboard_substitutions(label))
        candidates.update(self._vowel_swaps(label))
        candidates.discard(label)
        suffix = f".{tld}" if tld else ""
        return {f"{candidate}{suffix}" for candidate in candidates if candidate}

    @staticmethod
    def _keyboard_substitutions(label: str) -> Set[str]:
        out: Set[str] = set()
        for index, char in enumerate(label):
            for neighbour in QWERTY_NEIGHBOURS.get(char, ""):
                out.add(label[:index] + neighbour + label[index + 1:])
        return out

    def _vowel_swaps(self, label: str) -> Set[str]:
        out: Set[str] = set()
        for index, char in enumerate(label):
            if char in self.VOWELS:
                for vowel in self.VOWELS:
                    if vowel != char:
                        out.add(label[:index] + vowel + label[index + 1:])
        return out


def baseline_coverage(
    baseline,
    brand_domains: Dict[str, str],
    observed: Dict[str, Tuple[str, SquatType]],
) -> BaselineReport:
    """Score a baseline against the squats observed in a zone.

    Args:
        baseline: object with ``generate(domain) -> set`` and ``name``.
        brand_domains: brand key → canonical domain.
        observed: registered squat domain → (brand, type) ground truth.

    Returns:
        coverage counts: how many observed squats the baseline's candidate
        set contains.
    """
    generated: Set[str] = set()
    for domain in brand_domains.values():
        generated.update(baseline.generate(domain))
    matched = sum(1 for squat in observed if squat in generated)
    return BaselineReport(
        name=baseline.name,
        generated=len(generated),
        matched=matched,
        observed=len(observed),
    )


def coverage_by_type(
    baseline,
    brand_domains: Dict[str, str],
    observed: Dict[str, Tuple[str, SquatType]],
) -> Dict[str, Tuple[int, int]]:
    """Per-squat-type (matched, observed) counts for one baseline."""
    generated: Set[str] = set()
    for domain in brand_domains.values():
        generated.update(baseline.generate(domain))
    buckets: Dict[str, Tuple[int, int]] = {}
    for squat, (_brand, squat_type) in observed.items():
        matched, total = buckets.get(squat_type.value, (0, 0))
        buckets[squat_type.value] = (matched + (squat in generated), total + 1)
    return buckets
