"""Unicode confusables table for homograph squatting.

The paper's point against DNSTwist is table *completeness*: the Unicode
confusables list has e.g. 23 look-alikes for "a" while DNSTwist only maps 13.
We embed a substantial confusable mapping — ASCII look-alikes plus a wide set
of Latin-extended / Greek / Cyrillic homoglyphs per letter — and derive both
directions from it: variant generation (for candidate enumeration) and a
matching predicate (for detection).

Matching is deliberately *not* a single skeleton string: a character such as
``1`` is confusable with both ``l`` and ``i``, so detection runs a small
dynamic program over per-character base *sets* (and multi-character
sequences such as ``rn`` → ``m``), asking whether the suspicious label can be
read as the brand.  Plain ASCII letters always match only themselves.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Set, Tuple

# For each ASCII base character, the characters that render confusably close
# to it.  ASCII digit/symbol confusions (0/o, 1/l, 5/s …) come first; then
# accented Latin, Greek, and Cyrillic homoglyphs.  The table is intentionally
# larger than DNSTwist's (the ablation bench measures the recall difference).
CONFUSABLES: Dict[str, Tuple[str, ...]] = {
    "a": ("à", "á", "â", "ã", "ä", "å", "ā", "ă", "ą", "ǎ", "ȁ", "ȃ", "ȧ",
          "ḁ", "ạ", "ả", "ấ", "ầ", "ắ", "α", "а", "ә", "@"),
    "b": ("ƀ", "ƃ", "ɓ", "ḃ", "ḅ", "ḇ", "б", "ь", "ƅ"),
    "c": ("ç", "ć", "ĉ", "ċ", "č", "ƈ", "ȼ", "ḉ", "ϲ", "с", "ς"),
    "d": ("ď", "đ", "ɖ", "ɗ", "ḋ", "ḍ", "ḏ", "ḑ", "ԁ", "ɒ"),
    "e": ("è", "é", "ê", "ë", "ē", "ĕ", "ė", "ę", "ě", "ȅ", "ȇ", "ȩ", "ḕ",
          "ḗ", "ḙ", "ẹ", "ẻ", "ε", "е", "ё", "є", "3"),
    "f": ("ƒ", "ḟ", "ϝ", "ꞙ", "t"),
    "g": ("ĝ", "ğ", "ġ", "ģ", "ǥ", "ǧ", "ǵ", "ɠ", "ḡ", "ԍ", "ց", "9", "q"),
    "h": ("ĥ", "ħ", "ȟ", "ɦ", "ḣ", "ḥ", "ḧ", "ḩ", "ḫ", "һ", "հ"),
    "i": ("ì", "í", "î", "ï", "ĩ", "ī", "ĭ", "į", "ǐ", "ȉ", "ȋ", "ḭ", "ḯ",
          "ỉ", "ị", "ι", "і", "ї", "1", "!"),
    "j": ("ĵ", "ǰ", "ɉ", "ј", "ʝ"),
    "k": ("ķ", "ƙ", "ǩ", "ḱ", "ḳ", "ḵ", "κ", "к", "ⱪ"),
    "l": ("ĺ", "ļ", "ľ", "ŀ", "ł", "ƚ", "ɫ", "ḷ", "ḹ", "ḻ", "ḽ", "1",
          "ӏ", "ǀ", "i"),
    "m": ("ḿ", "ṁ", "ṃ", "ɱ", "м", "rn", "nn"),
    "n": ("ñ", "ń", "ņ", "ň", "ŉ", "ƞ", "ǹ", "ȵ", "ɲ", "ṅ", "ṇ", "ṉ", "ṋ",
          "η", "п", "и"),
    "o": ("ò", "ó", "ô", "õ", "ö", "ø", "ō", "ŏ", "ő", "ơ", "ǒ", "ǫ", "ȍ",
          "ȏ", "ȫ", "ṍ", "ṏ", "ọ", "ỏ", "ο", "о", "ө", "0"),
    "p": ("ƥ", "ṕ", "ṗ", "ρ", "р"),
    "q": ("ɋ", "ԛ", "ʠ", "9", "g"),
    "r": ("ŕ", "ŗ", "ř", "ȑ", "ȓ", "ɍ", "ṙ", "ṛ", "ṝ", "ṟ", "г", "ґ"),
    "s": ("ś", "ŝ", "ş", "š", "ș", "ȿ", "ṡ", "ṣ", "ѕ", "5", "$"),
    "t": ("ţ", "ť", "ŧ", "ƫ", "ƭ", "ț", "ṫ", "ṭ", "ṯ", "ṱ", "т", "7", "f"),
    "u": ("ù", "ú", "û", "ü", "ũ", "ū", "ŭ", "ů", "ű", "ų", "ư", "ǔ", "ȕ",
          "ȗ", "ṳ", "ṵ", "ṷ", "ụ", "υ", "ц", "ս", "v"),
    "v": ("ѵ", "ν", "ṽ", "ṿ", "ʋ", "u"),
    "w": ("ŵ", "ẁ", "ẃ", "ẅ", "ẇ", "ẉ", "ω", "ш", "ѡ", "vv"),
    "x": ("ẋ", "ẍ", "х", "χ"),
    "y": ("ý", "ÿ", "ŷ", "ƴ", "ȳ", "ẏ", "ỳ", "ỵ", "ỷ", "ỹ", "у", "γ"),
    "z": ("ź", "ż", "ž", "ƶ", "ȥ", "ẑ", "ẓ", "ẕ", "ʐ", "2"),
    "0": ("o", "ο", "о", "ө"),
    "1": ("l", "i", "ӏ"),
    "2": ("z", "ƻ"),
    "5": ("s", "ѕ"),
    "9": ("g", "q"),
}

# ASCII-only confusions (usable in plain LDH domains without IDN encoding),
# e.g. faceb00k.pw.  Derived view of the table above.  Hostname-safe means
# lowercase letters, digits, and hyphens only — "@" and "$" are visual
# look-alikes but cannot appear in a registered name, so they are kept for
# display-string analysis but excluded here.
_HOSTNAME_SAFE = set("abcdefghijklmnopqrstuvwxyz0123456789-")
ASCII_CONFUSABLES: Dict[str, Tuple[str, ...]] = {}
for _base, _variants in CONFUSABLES.items():
    _safe = tuple(v for v in _variants if set(v) <= _HOSTNAME_SAFE)
    if _safe:
        ASCII_CONFUSABLES[_base] = _safe

# Reverse map: variant → set of base characters it can be read as.  Plain
# ASCII letters are *not* given an identity entry here; the matcher treats
# identity separately so that e.g. "l" in a label first matches a literal "l"
# in the brand.
_REVERSE_SETS: Dict[str, Set[str]] = {}
for _base, _variants in CONFUSABLES.items():
    for _variant in _variants:
        _REVERSE_SETS.setdefault(_variant, set()).add(_base)

# Multi-character confusables ("rn" → "m"), longest first for greedy checks.
MULTI_CHAR_CONFUSABLES: Tuple[Tuple[str, FrozenSet[str]], ...] = tuple(
    sorted(
        ((v, frozenset(bases)) for v, bases in _REVERSE_SETS.items() if len(v) > 1),
        key=lambda pair: -len(pair[0]),
    )
)

# Edge maps for bucket pre-filters: the *first* (last) character of a
# displayed label constrains which base characters the matched brand can
# start (end) with — a homograph match must consume that edge character
# literally, as a single confusable, or as the edge of a multi-character
# variant, so variant[0] (variant[-1]) points back at every base it could
# stand in for.  Identity is handled by the consumer.
_LEAD_SETS: Dict[str, Set[str]] = {}
_TRAIL_SETS: Dict[str, Set[str]] = {}
for _base, _variants in CONFUSABLES.items():
    for _variant in _variants:
        _LEAD_SETS.setdefault(_variant[0], set()).add(_base)
        _TRAIL_SETS.setdefault(_variant[-1], set()).add(_base)


def lead_bases(char: str) -> FrozenSet[str]:
    """Base characters a brand could *start* with, given that the displayed
    label starts with ``char`` (excluding the literal identity)."""
    return frozenset(_LEAD_SETS.get(char, ()))


def trail_bases(char: str) -> FrozenSet[str]:
    """Base characters a brand could *end* with, given that the displayed
    label ends with ``char`` (excluding the literal identity)."""
    return frozenset(_TRAIL_SETS.get(char, ()))


def confusable_variants(char: str, ascii_only: bool = False) -> Tuple[str, ...]:
    """All registered look-alikes for a base character."""
    table = ASCII_CONFUSABLES if ascii_only else CONFUSABLES
    return table.get(char.lower(), ())


def readable_bases(char: str) -> FrozenSet[str]:
    """The base characters a single character could be read as (excluding
    its literal self)."""
    return frozenset(_REVERSE_SETS.get(char, ()))


def ascii_readable_pairs() -> Tuple[Tuple[str, str], ...]:
    """All ``(label_char, base_char)`` single-ASCII readings, identity excluded.

    The flattened single-character slice of the reverse table restricted to
    ASCII on both sides — exactly the pairs a byte-level matcher can apply
    positionwise.  The packed-scan kernel expands these into its 256x256
    confusable-translation table; multi-character variants and non-ASCII
    characters stay with the dynamic program in :func:`matches_homograph`.
    """
    pairs: List[Tuple[str, str]] = []
    for variant in sorted(_REVERSE_SETS):
        if len(variant) != 1 or ord(variant) > 127:
            continue
        for base in sorted(_REVERSE_SETS[variant]):
            if len(base) == 1 and ord(base) <= 127:
                pairs.append((variant, base))
    return tuple(pairs)


def matches_homograph(label: str, target: str) -> bool:
    """True if ``label`` can be visually read as ``target`` and differs.

    Runs a dynamic program over (label position, target position): a step
    consumes either one literally-equal character, one single-character
    confusable, or one multi-character confusable sequence.
    """
    label = label.lower()
    target = target.lower()
    if label == target:
        return False
    return _dp_match(label, target)


@lru_cache(maxsize=65536)
def _dp_match(label: str, target: str) -> bool:
    n, m = len(label), len(target)
    memo: Dict[Tuple[int, int], bool] = {}

    def match(i: int, j: int) -> bool:
        if i == n or j == m:
            return i == n and j == m
        key = (i, j)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = False
        char = label[i]
        if char == target[j] or target[j] in _REVERSE_SETS.get(char, ()):
            result = match(i + 1, j + 1)
        if not result:
            for variant, vbases in MULTI_CHAR_CONFUSABLES:
                if target[j] in vbases and label.startswith(variant, i):
                    if match(i + len(variant), j + 1):
                        result = True
                        break
        memo[key] = result
        return result

    return match(0, 0)


def skeleton(label: str) -> str:
    """Best-effort ASCII skeleton of a label, for display and indexing.

    Each confusable collapses to its *first* registered base (letters are
    preferred over digits by table construction); ASCII characters without an
    entry map to themselves.  Use :func:`matches_homograph` for detection —
    skeletons lose the multi-base ambiguity.
    """
    label = label.lower()
    out: List[str] = []
    i = 0
    while i < len(label):
        matched = False
        for variant, vbases in MULTI_CHAR_CONFUSABLES:
            if label.startswith(variant, i):
                out.append(sorted(vbases)[0])
                i += len(variant)
                matched = True
                break
        if matched:
            continue
        char = label[i]
        if "a" <= char <= "z":
            out.append(char)  # plain letters are their own skeleton
        else:
            bases = _REVERSE_SETS.get(char)
            if bases:
                letters = [b for b in sorted(bases) if b.isalpha()]
                out.append(letters[0] if letters else sorted(bases)[0])
            else:
                out.append(char)
        i += 1
    return "".join(out)


def dnstwist_subset() -> Dict[str, Tuple[str, ...]]:
    """A reduced table modelling DNSTwist's partial coverage.

    Keeps roughly 13/23 of each character's variants — mirroring the paper's
    observation that DNSTwist maps 13 of the 23 look-alikes of "a".  Used by
    the confusable-coverage ablation bench.
    """
    reduced = {}
    for base, variants in CONFUSABLES.items():
        keep = max(1, len(variants) * 13 // 23)
        reduced[base] = variants[:keep]
    return reduced
