"""Squatting-domain detection over a DNS snapshot (§3.1).

For each registered domain in the zone we check the five squatting rules
against each target brand, ignoring subdomains, and label the domain with the
*first* matching type in the paper's priority order so types stay disjoint:

    homograph > bits > typo > combo > wrongTLD

Complexity matters at snapshot scale, so the detector avoids the naive
(domains × brands) scan:

* homograph / bits / typo — candidate labels are enumerable per brand, so we
  *hash-join*: every observed core label is looked up in a precomputed
  label → (brand, type) index.  IDN labels are additionally skeleton-matched
  since unicode candidates cannot be exhaustively enumerated.
* combo — detected by scanning each core label once against a token index of
  brand strings.
* wrongTLD — exact core-label equality with a different suffix.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.brands.catalog import Brand, BrandCatalog
from repro.dns.idna import ACE_PREFIX, IDNAError, label_to_unicode
from repro.dns.packedzone import PackedZone
from repro.dns.records import split_domain
from repro.dns.zone import ZoneStore
from repro.perf.engine import process_map, shard
from repro.squatting import packedscan
from repro.squatting.bits import BitsModel
from repro.squatting.combo import ComboModel
from repro.squatting.confusables import lead_bases, trail_bases
from repro.squatting.generator import SquattingGenerator
from repro.squatting.homograph import HomographModel
from repro.squatting.typo import TypoModel
from repro.squatting.types import SquatMatch, SquatType
from repro.squatting.wrongtld import WrongTLDModel

# anything exposing the ZoneStore lookup protocol scans the same way
Zone = Union[ZoneStore, PackedZone]


class SquattingDetector:
    """Classify observed DNS names against a brand catalog."""

    def __init__(
        self,
        catalog: BrandCatalog,
        generator: Optional[SquattingGenerator] = None,
    ) -> None:
        self.catalog = catalog
        self.generator = generator or SquattingGenerator()
        self._brand_by_label: Dict[str, Brand] = {}
        self._brand_domains: Set[str] = set()
        # label -> (brand, type) hash-join index for enumerable candidates
        self._candidate_index: Dict[str, Tuple[str, SquatType]] = {}
        # 4-gram prefix index over brand labels for combo containment scans
        self._combo_prefix_index: Dict[str, List[str]] = defaultdict(list)
        # (length, first char) / (length, last char) buckets for the ASCII
        # homograph fallback and the IDN pre-filter, so neither ever loops
        # over the full catalog
        self._homograph_buckets: Dict[Tuple[int, int, str], List[str]] = defaultdict(list)
        # brand insertion rank, so bucket-gathered candidates can be tried
        # in catalog order (first match wins, same as a full catalog loop)
        self._brand_rank: Dict[str, int] = {}
        self._build_indices()

    def _build_indices(self) -> None:
        combo_min = self.generator.combo.min_brand_length
        for brand in self.catalog:
            label = brand.core_label
            self._brand_by_label[label] = brand
            self._brand_rank.setdefault(label, len(self._brand_rank))
            self._brand_domains.add(brand.domain.lower())
            if len(label) >= combo_min:
                self._combo_prefix_index[label[:combo_min]].append(label)
            for delta in (-1, 0, 1):
                self._homograph_buckets[(len(label) + delta, 0, label[0])].append(label)
                self._homograph_buckets[(len(label) + delta, 1, label[-1])].append(label)
        for labels in self._combo_prefix_index.values():
            labels.sort(key=len, reverse=True)
        for brand in self.catalog:
            candidates = self.generator.candidates(brand, include_combo=False)
            for squat_type, labels in candidates.labels.items():
                for candidate in labels:
                    # first brand to claim a label wins; collisions between
                    # brands are rare and benign for measurement
                    self._candidate_index.setdefault(candidate, (brand.name, squat_type))

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify_domain(self, domain: str) -> Optional[SquatMatch]:
        """Classify one registered domain; None if it squats no brand."""
        domain = domain.lower().rstrip(".")
        return self._classify(domain, split_domain(domain)[0])

    def _classify(self, domain: str, core: str) -> Optional[SquatMatch]:
        """Rule cascade over an already-normalized (domain, core label).

        Split out from :meth:`classify_domain` so the packed-zone scan
        kernel, which reads core labels straight from the snapshot's
        columnar blob, can skip the redundant ``split_domain`` pass.
        """
        if domain in self._brand_domains:
            return None  # the brand's own site is not a squat

        brand_of_core = self._brand_by_label.get(core)

        # 1. enumerable candidates (homograph ASCII, bits, typo) — hash join
        hit = self._candidate_index.get(core)
        if hit is not None and brand_of_core is None:
            brand_name, squat_type = hit
            return SquatMatch(domain=domain, brand=brand_name, squat_type=squat_type)

        # 2. IDN homographs — decode and skeleton-match
        if core.startswith(ACE_PREFIX):
            match = self._match_idn(domain, core)
            if match is not None:
                return match

        # 3. homograph fallback for multi-substitution ASCII look-alikes that
        #    enumeration (bounded at 1–2 substitutions) missed
        if brand_of_core is None:
            match = self._match_ascii_homograph(domain, core)
            if match is not None:
                return match

        # 4. combo squatting — token / containment scan (glued combos like
        #    secureuberlogin carry no hyphen, so this must not be gated on
        #    one; the 4-gram prefix index keeps the scan near-free)
        if brand_of_core is None:
            match = self._match_combo(domain, core)
            if match is not None:
                return match

        # 5. wrongTLD — exact label, wrong suffix
        if brand_of_core is not None:
            if brand_of_core.domain.lower() != domain:
                detail = self.generator.wrongtld.matches(domain, brand_of_core.domain)
                if detail is not None:
                    return SquatMatch(
                        domain=domain,
                        brand=brand_of_core.name,
                        squat_type=SquatType.WRONG_TLD,
                        detail=detail,
                    )
        return None

    def _match_idn(self, domain: str, core: str) -> Optional[SquatMatch]:
        """IDN homographs via the length/edge bucket pre-filter.

        A brand label can only match when its length is within ±1 of the
        displayed label's (the same gate the former full-catalog loop
        applied) and its first or last character is one the displayed
        label's edge character can be read as — literally, as a single
        confusable, or as the edge of a multi-character confusable.  The
        buckets encode exactly those constraints, and candidates are tried
        in catalog order, so the match is identical to the full loop.
        """
        try:
            displayed = label_to_unicode(core)
        except IDNAError:
            return None
        if not displayed:
            return None
        first = set(lead_bases(displayed[0]))
        first.add(displayed[0])
        last = set(trail_bases(displayed[-1]))
        last.add(displayed[-1])
        candidates: Set[str] = set()
        for char in first:
            candidates.update(
                self._homograph_buckets.get((len(displayed), 0, char), ()))
        for char in last:
            candidates.update(
                self._homograph_buckets.get((len(displayed), 1, char), ()))
        for label in sorted(candidates, key=self._brand_rank.__getitem__):
            if self.generator.homograph.matches(core, label):
                return SquatMatch(
                    domain=domain,
                    brand=self._brand_by_label[label].name,
                    squat_type=SquatType.HOMOGRAPH,
                    detail=f"idn:{displayed}",
                )
        return None

    def _ascii_homograph_label(self, core: str) -> Optional[Tuple[str, str]]:
        """First matching ``(brand label, detail)`` for a non-brand core.

        The bucket walk behind :meth:`_match_ascii_homograph`, split out so
        the packed-scan kernel can resolve the rows its vectorized
        confusable table cannot decide (multi-candidate buckets, length-
        changing confusables) without rebuilding the SquatMatch envelope.
        """
        if not core or self._brand_by_label.get(core) is not None:
            return None
        # bucket pre-filter: brand labels of compatible length sharing the
        # first or last character with the observed label
        seen: Set[str] = set()
        for bucket_key in ((len(core), 0, core[0]), (len(core), 1, core[-1])):
            for label in self._homograph_buckets.get(bucket_key, ()):
                if label in seen:
                    continue
                seen.add(label)
                detail = self.generator.homograph.matches(core, label)
                if detail is not None:
                    return label, detail
        return None

    def _match_ascii_homograph(self, domain: str, core: str) -> Optional[SquatMatch]:
        found = self._ascii_homograph_label(core)
        if found is None:
            return None
        label, detail = found
        return SquatMatch(
            domain=domain,
            brand=self._brand_by_label[label].name,
            squat_type=SquatType.HOMOGRAPH,
            detail=detail,
        )

    def _match_combo(self, domain: str, core: str) -> Optional[SquatMatch]:
        # exact hyphen-delimited brand tokens (covers short brands too);
        # only worth splitting when there is a hyphen to split on
        if "-" in core:
            for token in core.split("-"):
                brand = self._brand_by_label.get(token)
                if brand is not None:
                    return SquatMatch(
                        domain=domain, brand=brand.name,
                        squat_type=SquatType.COMBO, detail="token",
                    )
        # glued containment (go-uberfreight): slide a prefix window over the
        # label and consult the brand 4-gram index, longest brand first
        combo_min = self.generator.combo.min_brand_length
        best: Optional[str] = None
        for i in range(len(core) - combo_min + 1):
            for label in self._combo_prefix_index.get(core[i:i + combo_min], ()):
                if core.startswith(label, i):
                    if best is None or len(label) > len(best):
                        best = label
                    break  # index lists are longest-first
        if best is not None:
            return SquatMatch(
                domain=domain, brand=self._brand_by_label[best].name,
                squat_type=SquatType.COMBO, detail="substring",
            )
        return None

    # ------------------------------------------------------------------
    # snapshot scan
    # ------------------------------------------------------------------
    def iter_scan(self, zone: "Zone") -> Iterator[SquatMatch]:
        """Stream matches over a snapshot's registered domains.

        The generator form keeps snapshot-scale scans O(matches) in memory
        for consumers that only aggregate (:meth:`scan_counts`); sharded
        workers consume their chunk the same way.
        """
        return _iter_matches(self, zone.registered_domains())

    def scan(self, zone: "Zone") -> List[SquatMatch]:
        """Classify every registered domain in a snapshot.

        Returns one match per squatting registered domain (subdomains are
        collapsed, as in the paper).  Always the per-domain reference
        path, even for packed zones — the equality oracle the vectorized
        kernel is tested against.
        """
        return list(self.iter_scan(zone))

    def scan_sharded(self, zone: "Zone", workers: int = 1,
                     chunk_size: int = 512) -> List[SquatMatch]:
        """Parallel :meth:`scan` over a process pool.

        Packed zones route through the vectorized mmap kernel
        (:mod:`repro.squatting.packedscan`): workers receive only
        ``[start, stop)`` id ranges and map the snapshot file themselves.
        Dict-backed zones fall back to pickled chunks of registered
        domains.  Either way chunk results concatenate in shard order, so
        the output is exactly ``self.scan(zone)`` for any worker count —
        ``workers <= 1`` short-circuits to a serial run.
        """
        if isinstance(zone, PackedZone):
            return packedscan.packed_scan(
                self, zone, workers=workers,
                chunk_size=max(chunk_size, packedscan.PACKED_CHUNK))
        # dict-backed scans have no kernel stats; clear any stale snapshot a
        # previous packed scan left so perf reporting cannot misattribute it
        packedscan.clear_last_scan_stats()
        if workers <= 1:
            return self.scan(zone)
        shards = shard(zone.registered_domains(), chunk_size)
        chunks = process_map(
            _pool_scan_chunk, shards, workers,
            initializer=_pool_init, initargs=(self.catalog, self.generator))
        return [match for chunk in chunks for match in chunk]

    def scan_counts(self, zone: "Zone", workers: int = 1,
                    chunk_size: int = 512) -> Dict[SquatType, int]:
        """Squat-type histogram over a snapshot (the Fig 2 series).

        With ``workers > 1`` each pool worker histograms whole chunks of
        registered domains; per-chunk counts merge by addition, which is
        associative, so the result equals the serial histogram for any
        worker count or chunk size.  Packed zones use the vectorized
        kernel, as in :meth:`scan_sharded`.
        """
        if isinstance(zone, PackedZone):
            return packedscan.packed_scan_counts(
                self, zone, workers=workers,
                chunk_size=max(chunk_size, packedscan.PACKED_CHUNK))
        counts: Dict[SquatType, int] = {t: 0 for t in SquatType}
        if workers <= 1:
            for match in self.iter_scan(zone):
                counts[match.squat_type] += 1
            return counts
        shards = shard(zone.registered_domains(), chunk_size)
        chunk_counts = process_map(
            _pool_count_chunk, shards, workers,
            initializer=_pool_init, initargs=(self.catalog, self.generator))
        for histogram in chunk_counts:
            for squat_type, count in histogram.items():
                counts[squat_type] += count
        return counts


def _iter_matches(detector: SquattingDetector,
                  domains: Iterable[str]) -> Iterator[SquatMatch]:
    """Classify a domain stream, yielding only the matches.

    The single classify loop behind :meth:`SquattingDetector.iter_scan`
    *and* both pool chunk workers, so the sharded paths cannot drift from
    the serial scan.
    """
    for domain in domains:
        match = detector.classify_domain(domain)
        if match is not None:
            yield match


# ----------------------------------------------------------------------
# process-pool plumbing for scan_sharded: each worker process rebuilds the
# detector once (initializer) and reuses it for every chunk it claims
# ----------------------------------------------------------------------
_POOL_DETECTOR: Optional[SquattingDetector] = None


def _pool_init(catalog: BrandCatalog, generator: SquattingGenerator) -> None:
    global _POOL_DETECTOR
    _POOL_DETECTOR = SquattingDetector(catalog, generator)


def _pool_scan_chunk(domains: List[str]) -> List[SquatMatch]:
    detector = _POOL_DETECTOR
    assert detector is not None, "pool worker used before initialization"
    return list(_iter_matches(detector, domains))


def _pool_count_chunk(domains: List[str]) -> Dict[SquatType, int]:
    """Histogram one chunk (the associative piece of ``scan_counts``)."""
    detector = _POOL_DETECTOR
    assert detector is not None, "pool worker used before initialization"
    counts: Dict[SquatType, int] = {}
    for match in _iter_matches(detector, domains):
        counts[match.squat_type] = counts.get(match.squat_type, 0) + 1
    return counts
