"""Squatting domain models: generation and detection of five squat types.

The paper (§3.1) defines five *orthogonal* squatting categories — homograph,
typo, bits, combo, and wrongTLD — and scans 224M DNS records for candidates
impersonating 702 brands.  This package implements each category as both a
*generator* (enumerate candidate squats of a brand, used to seed the
synthetic world and for hash-join detection) and a *detector* predicate
(classify an observed domain against a brand).

The detector (:mod:`repro.squatting.detector`) reproduces the paper's scan:
enumerable types are matched by hash join against the zone store; combo
squatting, which cannot be enumerated, is found by scanning core labels.
"""

from repro.squatting.types import SquatMatch, SquatType
from repro.squatting.confusables import CONFUSABLES, confusable_variants, skeleton
from repro.squatting.homograph import HomographModel
from repro.squatting.typo import TypoModel
from repro.squatting.bits import BitsModel
from repro.squatting.combo import ComboModel
from repro.squatting.wrongtld import WrongTLDModel
from repro.squatting.generator import SquattingGenerator
from repro.squatting.detector import SquattingDetector

__all__ = [
    "BitsModel",
    "CONFUSABLES",
    "ComboModel",
    "HomographModel",
    "SquatMatch",
    "SquatType",
    "SquattingDetector",
    "SquattingGenerator",
    "TypoModel",
    "WrongTLDModel",
    "confusable_variants",
    "skeleton",
]
