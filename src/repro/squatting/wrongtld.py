"""WrongTLD squatting: same label, different public suffix (§3.1).

``facebook.audi`` keeps the brand's name and swaps the TLD.  Generation
enumerates the known TLD inventory; detection is an exact core-label match
with a differing suffix.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.dns.records import KNOWN_TLDS, split_domain


class WrongTLDModel:
    """Generator/detector for wrongTLD-squatting domains.

    Unlike the other models this one reasons about full registered domains
    (label + suffix), since the suffix is what changes.
    """

    name = "wrongTLD"

    def __init__(self, tlds: Sequence[str] = KNOWN_TLDS) -> None:
        self.tlds = tuple(tlds)

    def generate(self, domain: str, max_variants: Optional[int] = None) -> Set[str]:
        """All same-label domains under other known TLDs."""
        core, tld = split_domain(domain)
        variants: Set[str] = set()
        for candidate in self.tlds:
            if candidate == tld:
                continue
            variants.add(f"{core}.{candidate}")
            if max_variants and len(variants) >= max_variants:
                break
        return variants

    def matches(self, domain: str, target_domain: str) -> Optional[str]:
        """Classify ``domain`` as a wrongTLD squat of ``target_domain``.

        Returns the offending TLD or None.
        """
        core, tld = split_domain(domain)
        target_core, target_tld = split_domain(target_domain)
        if core == target_core and tld != target_tld:
            return tld or "(none)"
        return None
