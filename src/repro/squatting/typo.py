"""Typo squatting: mistyped variants of a brand label (§3.1).

The paper generates typos four ways: *insertion* (adding a character),
*omission* (deleting one), *repetition* (duplicating one), and *vowel swap*
(the paper's term for re-ordering two consecutive characters — a
transposition).  We additionally bias insertions toward QWERTY-adjacent keys,
which is how real fat-finger typos arise and how URLCrazy seeds its lists.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

ALPHABET = "abcdefghijklmnopqrstuvwxyz"

# QWERTY adjacency used to rank realistic insertions/substitutions.
QWERTY_NEIGHBOURS: Dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsd", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
}


class TypoModel:
    """Generator/detector for typo-squatting labels."""

    name = "typo"

    def __init__(self) -> None:
        # keyboard_insertions is pure per label and the scan/enumeration
        # paths re-request the same brand labels constantly, so memoize
        self._keyboard_memo: Dict[str, List[str]] = {}

    def generate(self, label: str) -> Set[str]:
        """All typo variants of ``label`` (deduplicated, label excluded)."""
        variants: Set[str] = set()
        variants.update(self.insertions(label))
        variants.update(self.omissions(label))
        variants.update(self.repetitions(label))
        variants.update(self.transpositions(label))
        variants.discard(label)
        return {v for v in variants if v}

    # ------------------------------------------------------------------
    # the four §3.1 typo mechanisms
    # ------------------------------------------------------------------
    def insertions(self, label: str) -> Iterator[str]:
        """Add one character at any position (alphabet, digits, and the
        inner hyphen that produces face-book-style typos)."""
        charset = ALPHABET + "0123456789-"
        for i in range(len(label) + 1):
            for char in charset:
                if char == "-" and (i == 0 or i == len(label)):
                    continue  # hostnames cannot begin/end with a hyphen
                yield label[:i] + char + label[i:]

    def omissions(self, label: str) -> Iterator[str]:
        """Delete one character."""
        for i in range(len(label)):
            yield label[:i] + label[i + 1:]

    def repetitions(self, label: str) -> Iterator[str]:
        """Duplicate one character (facebook → faceboook)."""
        for i in range(len(label)):
            yield label[:i] + label[i] + label[i:]

    def transpositions(self, label: str) -> Iterator[str]:
        """Swap two consecutive characters (facebook → fcaebook)."""
        for i in range(len(label) - 1):
            if label[i] != label[i + 1]:
                yield label[:i] + label[i + 1] + label[i] + label[i + 2:]

    def keyboard_insertions(self, label: str) -> List[str]:
        """Insertions restricted to QWERTY neighbours of adjacent keys."""
        cached = self._keyboard_memo.get(label)
        if cached is None:
            cached = []
            for i in range(len(label) + 1):
                context = set()
                if i > 0:
                    context.update(QWERTY_NEIGHBOURS.get(label[i - 1], ""))
                if i < len(label):
                    context.update(QWERTY_NEIGHBOURS.get(label[i], ""))
                for char in sorted(context):
                    cached.append(label[:i] + char + label[i:])
            self._keyboard_memo[label] = cached
        return list(cached)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def matches(self, label: str, target: str) -> Optional[str]:
        """Classify ``label`` as a typo of ``target``.

        Returns the mechanism name (``insertion`` / ``omission`` /
        ``repetition`` / ``transposition``) or None.  Runs in O(len) per
        mechanism instead of enumerating the variant set.
        """
        label = label.lower()
        target = target.lower()
        # every typo mechanism changes the length by at most one, so any
        # larger delta short-circuits before the per-character checks
        delta = len(label) - len(target)
        if delta > 1 or delta < -1 or label == target:
            return None
        if delta == 1 and self._is_deletion_of(label, target):
            # label is target + 1 char; repetition is the special insertion
            # that duplicates a neighbour.
            if self._is_repetition(label, target):
                return "repetition"
            return "insertion"
        if delta == -1 and self._is_deletion_of(target, label):
            return "omission"
        if delta == 0 and self._is_transposition(label, target):
            return "transposition"
        return None

    @staticmethod
    def _is_deletion_of(longer: str, shorter: str) -> bool:
        """True if deleting exactly one character of ``longer`` gives
        ``shorter``."""
        i = 0
        skipped = False
        j = 0
        while i < len(longer) and j < len(shorter):
            if longer[i] == shorter[j]:
                i += 1
                j += 1
            elif not skipped:
                skipped = True
                i += 1
            else:
                return False
        return True  # trailing extra char (if any) is the single deletion

    @staticmethod
    def _is_repetition(label: str, target: str) -> bool:
        """True if ``label`` duplicates one character of ``target``.

        O(len) instead of building a candidate string per position: a
        duplication at any position implies one at ``p - 1`` where ``p``
        is the longest common prefix, so a single suffix compare decides.
        """
        p = 0
        limit = len(target)
        while p < limit and label[p] == target[p]:
            p += 1
        return p > 0 and label[p:] == target[p - 1:]

    @staticmethod
    def _is_transposition(label: str, target: str) -> bool:
        """True if swapping one adjacent pair of ``target`` gives ``label``."""
        diffs = [i for i in range(len(target)) if label[i] != target[i]]
        if len(diffs) != 2:
            return False
        i, j = diffs
        return j == i + 1 and label[i] == target[j] and label[j] == target[i]
