"""Bit squatting plus the bit-parallel single-edit kernels (§3.1).

A bits-squatting domain is exactly one flipped bit away from the target: a
memory error in a resolver, proxy, or client turns ``facebook`` into
``facebnok`` and the attacker harvests the misdirected traffic.  Candidates
must survive the flip as valid LDH hostname characters.

This module also hosts the packed-matrix edit-distance kernels used by the
vectorized scan path and its verification harnesses:

* :func:`pack_window_codes` — every ``w``-byte window of a NUL-padded label
  matrix packed big-endian into one ``uint64`` per window, the shift-or
  encoding behind the combo prefix join.
* :func:`edit1_profile` — the k=1 band of the Myers edit-distance DP,
  evaluated for *all* rows of a label matrix against one target label in a
  handful of ``uint64`` column ops: per-row mismatch bitmasks, SWAR
  popcounts, and prefix/suffix agreement runs recovered with bit smears.
  A DNS label is at most 63 bytes, so one 64-bit word always suffices.

The profile codes drive :meth:`BitsModel.matches_batch` and
:func:`edit1_typo_details`, whose outputs are definitionally identical to
the per-string :meth:`BitsModel.matches` / ``TypoModel.matches`` loops —
the property tests assert exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

import numpy as np

_VALID_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789-")

# ----------------------------------------------------------------------
# edit-relation codes emitted by edit1_profile
# ----------------------------------------------------------------------
EDIT_NONE = 0           # more than one edit away (or incompatible length)
EDIT_EQUAL = 1          # byte-identical to the target
EDIT_SUBSTITUTION = 2   # same length, exactly one differing byte
EDIT_TRANSPOSITION = 3  # same length, one adjacent pair swapped
EDIT_INSERTION = 4      # one byte longer, deleting one byte gives the target
EDIT_REPETITION = 5     # the insertion that duplicates a target byte
EDIT_OMISSION = 6       # one byte shorter, target deletes one byte to match

_U1 = np.uint64(1)
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount(x: np.ndarray) -> np.ndarray:
    """SWAR population count of a uint64 array."""
    x = x - ((x >> _U1) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return (x * _H01) >> np.uint64(56)


def _pack_mask(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, nbits<=64)`` boolean matrix into uint64 words,
    bit ``j`` of the word holding column ``j``."""
    nbits = bits.shape[1]
    if nbits == 0:
        return np.zeros(bits.shape[0], dtype=np.uint64)
    weights = _U1 << np.arange(nbits, dtype=np.uint64)
    return (bits.astype(np.uint64) * weights[None, :]).sum(
        axis=1, dtype=np.uint64)


def _prefix_agreement(mask: np.ndarray, nbits: int) -> np.ndarray:
    """Length of the leading zero-run (trailing zeros of the word)."""
    lsb = mask & (~mask + _U1)
    run = _popcount(lsb - _U1).astype(np.int64)
    return np.where(mask == 0, np.int64(nbits), run)


def _suffix_agreement(mask: np.ndarray, nbits: int) -> np.ndarray:
    """Length of the trailing zero-run within an ``nbits``-wide window."""
    smear = mask.copy()
    for shift in (1, 2, 4, 8, 16, 32):
        smear |= smear >> np.uint64(shift)
    # popcount of the smear is the word's bit length
    return nbits - _popcount(smear).astype(np.int64)


def pack_window_codes(padded: np.ndarray, w: int) -> np.ndarray:
    """Every ``w``-byte window of each row packed big-endian into uint64.

    ``padded`` is a NUL-padded ``(rows, width)`` uint8 matrix; the result
    is ``(rows, width - w + 1)``.  Windows overlapping the NUL padding
    contain NUL bytes, which no real label prefix does, so join misses on
    them are structural rather than coincidental.  Requires ``1 <= w <= 8``.
    """
    if not 1 <= w <= 8:
        raise ValueError(f"window width {w} does not fit a uint64")
    rows, width = padded.shape
    nwin = width - w + 1
    if nwin <= 0:
        return np.zeros((rows, 0), dtype=np.uint64)
    codes = np.zeros((rows, nwin), dtype=np.uint64)
    for j in range(w):
        codes <<= np.uint64(8)
        codes |= padded[:, j:j + nwin]
    return codes


def edit1_profile(padded: np.ndarray, lens: np.ndarray,
                  target: Union[str, bytes]) -> Tuple[np.ndarray, np.ndarray]:
    """Single-edit relation of every row label to ``target``.

    ``padded`` is a NUL-padded ``(rows, width)`` uint8 label matrix with
    true byte lengths ``lens``; bytes are compared exactly (callers
    normalize case upstream).  Returns ``(codes, pos)`` where ``codes``
    holds the ``EDIT_*`` relation per row and ``pos`` the edit position:
    the differing index for a substitution, the left index of the swapped
    pair for a transposition, the longest-common-prefix length for
    insertion/repetition/omission (the inserted byte sits at ``pos`` in
    the row; the omitted one at ``pos`` in the target), and ``-1``
    otherwise.

    Everything is computed on per-row mismatch bitmasks: the prefix
    agreement is the mask's trailing-zero count, the suffix agreement its
    leading-zero run, and a row is within one edit exactly when the two
    runs overlap — the k=1 Myers band without materializing a DP table.
    """
    raw = target.encode("utf-8") if isinstance(target, str) else bytes(target)
    tgt = np.frombuffer(raw, dtype=np.uint8)
    T = int(tgt.size)
    n = padded.shape[0]
    codes = np.zeros(n, dtype=np.uint8)
    pos = np.full(n, -1, dtype=np.int64)
    if T == 0 or n == 0:
        return codes, pos
    if T + 1 > 64:
        raise ValueError(
            f"target length {T} exceeds the 63-byte DNS label bound "
            "(edit positions are packed into one uint64 word)")
    lens = np.asarray(lens, dtype=np.int64)
    width = padded.shape[1]
    span = min(width, T + 1)
    P = np.zeros((n, T + 1), dtype=np.uint8)
    P[:, :span] = padded[:, :span]

    eq_len = lens == T
    plus = lens == T + 1
    minus = lens == T - 1

    # mismatch mask of the first T row bytes against the target; shared by
    # the equal-length families and the insertion prefix run
    m_pre = _pack_mask(P[:, :T] != tgt[None, :])
    npop = _popcount(m_pre)
    p_pre = _prefix_agreement(m_pre, T)

    sel = eq_len & (m_pre == 0)
    codes[sel] = EDIT_EQUAL

    sel = eq_len & (npop == 1)
    codes[sel] = EDIT_SUBSTITUTION
    pos[sel] = p_pre[sel]

    lsb = m_pre & (~m_pre + _U1)
    two_adjacent = eq_len & (npop == 2) & (m_pre == (lsb | (lsb << _U1)))
    if two_adjacent.any():
        rows = np.nonzero(two_adjacent)[0]
        i = p_pre[rows]
        crossed = (P[rows, i] == tgt[i + 1]) & (P[rows, i + 1] == tgt[i])
        rows = rows[crossed]
        codes[rows] = EDIT_TRANSPOSITION
        pos[rows] = i[crossed]

    if plus.any():
        # suffix agreement of row[1:] against the target; the row deletes
        # one byte to give the target iff the runs cover it
        m_suf = _pack_mask(P[:, 1:T + 1] != tgt[None, :])
        s = _suffix_agreement(m_suf, T)
        rel = plus & (p_pre + s >= T)
        rep = rel & (p_pre > 0) & (s >= T - p_pre + 1)
        codes[rel] = EDIT_INSERTION
        codes[rep] = EDIT_REPETITION
        pos[rel] = p_pre[rel]

    if minus.any():
        # the target deletes one byte to give the row: clear bit T-1 of the
        # prefix mask (row padding vs the target's last byte) and compare
        # the row against the target shifted left by one
        m3 = m_pre & ((_U1 << np.uint64(T - 1)) - _U1) if T > 1 \
            else np.zeros(n, dtype=np.uint64)
        p3 = _prefix_agreement(m3, T - 1)
        m4 = _pack_mask(P[:, :T - 1] != tgt[None, 1:])
        s3 = _suffix_agreement(m4, T - 1)
        rel = minus & (p3 + s3 >= T - 1)
        codes[rel] = EDIT_OMISSION
        pos[rel] = p3[rel]

    return codes, pos


#: edit1_profile code -> TypoModel.matches mechanism name
_TYPO_DETAILS = {
    EDIT_INSERTION: "insertion",
    EDIT_REPETITION: "repetition",
    EDIT_OMISSION: "omission",
    EDIT_TRANSPOSITION: "transposition",
}


def edit1_typo_details(padded: np.ndarray, lens: np.ndarray,
                       target: Union[str, bytes]) -> List[Optional[str]]:
    """Batch twin of ``TypoModel.matches`` over lowercase ASCII rows.

    Returns the mechanism name per row (or None), identical to calling
    ``TypoModel.matches(label, target)`` on each decoded row.
    """
    codes, _ = edit1_profile(padded, lens, target)
    return [_TYPO_DETAILS.get(int(code)) for code in codes]


class BitsModel:
    """Generator/detector for bit-squatting labels."""

    name = "bits"

    def generate(self, label: str) -> Set[str]:
        """All valid single-bit-flip variants of ``label``."""
        variants: Set[str] = set()
        for i, char in enumerate(label):
            code = ord(char)
            for bit in range(8):
                flipped = code ^ (1 << bit)
                new_char = chr(flipped)
                # upper-case flips normalise back to the original label in
                # DNS (case-insensitive), so only keep genuinely new names
                if new_char.lower() == char:
                    continue
                if new_char not in _VALID_CHARS:
                    continue
                candidate = label[:i] + new_char + label[i + 1:]
                if self._valid_label(candidate) and candidate != label:
                    variants.add(candidate)
        return variants

    @staticmethod
    def _valid_label(label: str) -> bool:
        return bool(label) and not label.startswith("-") and not label.endswith("-")

    def matches(self, label: str, target: str) -> Optional[str]:
        """Classify ``label`` as a bit-flip of ``target``.

        Returns a detail string like ``"o->n@5"`` or None.
        """
        label = label.lower()
        target = target.lower()
        if len(label) != len(target) or label == target:
            return None
        diffs = [i for i in range(len(label)) if label[i] != target[i]]
        if len(diffs) != 1:
            return None
        i = diffs[0]
        xor = ord(label[i]) ^ ord(target[i])
        # one-bit difference <=> xor is a power of two
        if xor and (xor & (xor - 1)) == 0:
            return f"{target[i]}->{label[i]}@{i}"
        return None

    def matches_batch(self, padded: np.ndarray, lens: np.ndarray,
                      target: str) -> List[Optional[str]]:
        """Batch twin of :meth:`matches` over lowercase ASCII rows."""
        target = target.lower()
        codes, pos = edit1_profile(padded, lens, target)
        out: List[Optional[str]] = [None] * padded.shape[0]
        for row in np.nonzero(codes == EDIT_SUBSTITUTION)[0]:
            i = int(pos[row])
            observed = int(padded[row, i])
            xor = observed ^ ord(target[i])
            if xor and (xor & (xor - 1)) == 0:
                out[row] = f"{target[i]}->{chr(observed)}@{i}"
        return out
