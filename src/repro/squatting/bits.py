"""Bit squatting: single bit-flips of a brand label (§3.1).

A bits-squatting domain is exactly one flipped bit away from the target: a
memory error in a resolver, proxy, or client turns ``facebook`` into
``facebnok`` and the attacker harvests the misdirected traffic.  Candidates
must survive the flip as valid LDH hostname characters.
"""

from __future__ import annotations

from typing import Optional, Set

_VALID_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789-")


class BitsModel:
    """Generator/detector for bit-squatting labels."""

    name = "bits"

    def generate(self, label: str) -> Set[str]:
        """All valid single-bit-flip variants of ``label``."""
        variants: Set[str] = set()
        for i, char in enumerate(label):
            code = ord(char)
            for bit in range(8):
                flipped = code ^ (1 << bit)
                new_char = chr(flipped)
                # upper-case flips normalise back to the original label in
                # DNS (case-insensitive), so only keep genuinely new names
                if new_char.lower() == char:
                    continue
                if new_char not in _VALID_CHARS:
                    continue
                candidate = label[:i] + new_char + label[i + 1:]
                if self._valid_label(candidate) and candidate != label:
                    variants.add(candidate)
        return variants

    @staticmethod
    def _valid_label(label: str) -> bool:
        return bool(label) and not label.startswith("-") and not label.endswith("-")

    def matches(self, label: str, target: str) -> Optional[str]:
        """Classify ``label`` as a bit-flip of ``target``.

        Returns a detail string like ``"o->n@5"`` or None.
        """
        label = label.lower()
        target = target.lower()
        if len(label) != len(target) or label == target:
            return None
        diffs = [i for i in range(len(label)) if label[i] != target[i]]
        if len(diffs) != 1:
            return None
        i = diffs[0]
        xor = ord(label[i]) ^ ord(target[i])
        # one-bit difference <=> xor is a power of two
        if xor and (xor & (xor - 1)) == 0:
            return f"{target[i]}->{label[i]}@{i}"
        return None
