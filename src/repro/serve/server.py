"""The multi-worker serving front.

:func:`serve_load` drives a planned micro-batch stream through one
engine per worker process.  The worker protocol mirrors the packed
scan's pool plumbing: the parent prebuilds a :class:`QueryEngine`
(detector indices, scan context, negative cache) in module state before
the pool starts, fork-start platforms hand it to every worker as
copy-on-write pages, and the per-worker initializer reduces to a key
comparison (spawn platforms rebuild from picklable initargs).  Batch
tasks ship only ``(generation, path, names, dispatch time)`` — workers
mmap the snapshot themselves, zero-copy.

Hot reload: before each dispatch the front polls the
:class:`~repro.serve.publisher.SnapshotPublisher` (when given one) and
re-targets newer generations; a worker seeing a task stamped with a new
generation reopens the published file and swaps its engine between
batches, so in-flight batches drain on the old mmap while new batches
open the new one.  Which *batch* is answered by which generation
depends on publish timing — but every verdict is pure in (name,
generation), so correctness is per-request checkable regardless
(see ``offline_verdicts``).

Latency accounting mixes two clocks on purpose: queueing delay
(``dispatch - arrival``) is simulated time from the batch plan, service
time is measured host time for the batch's vectorized classify.  Both
are throughput metadata — never inputs to a verdict.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.dns.packedzone import PackedZone
from repro.faults.clock import SimClock
from repro.serve.batcher import plan_batches
from repro.serve.engine import QueryEngine, Verdict
from repro.serve.loadgen import percentile
from repro.serve.negcache import NegativeVerdictCache


@dataclass
class ServeStats:
    """One serve run's accounting (throughput/latency metadata only)."""

    queries: int = 0
    batches: int = 0
    workers: int = 1
    max_batch: int = 1
    max_delay: float = 0.0
    wall_seconds: float = 0.0
    service_seconds: float = 0.0
    negcache_hits: int = 0
    generation_swaps: int = 0
    dropped: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    served_by_generation: Dict[int, int] = field(default_factory=dict)
    kernel_rows: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-9)

    @property
    def fallback_rate(self) -> float:
        total = sum(self.fallbacks.values())
        return total / self.kernel_rows if self.kernel_rows else 0.0

    def count_fallbacks(self, families: Dict[str, int]) -> None:
        for reason, count in families.items():
            if count:
                self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries, "batches": self.batches,
            "workers": self.workers, "max_batch": self.max_batch,
            "max_delay": self.max_delay,
            "wall_seconds": round(self.wall_seconds, 4),
            "service_seconds": round(self.service_seconds, 4),
            "qps": round(self.qps),
            "negcache_hits": self.negcache_hits,
            "generation_swaps": self.generation_swaps,
            "dropped": self.dropped,
            "p50_ms": round(self.p50_ms, 3), "p99_ms": round(self.p99_ms, 3),
            "served_by_generation": {str(gen): count for gen, count
                                     in sorted(self.served_by_generation.items())},
            "kernel_rows": self.kernel_rows,
            "fallbacks": dict(sorted(self.fallbacks.items())),
            "fallback_rate": round(self.fallback_rate, 6),
        }


# ----------------------------------------------------------------------
# pathspec plumbing: one snapshot path, or a newline-joined
# base+delta chain (the streaming publisher's current_chain) — kept as a
# single string so batch tasks stay trivially picklable
# ----------------------------------------------------------------------

def _zone_pathspec(zone) -> str:
    paths = zone.paths() if hasattr(zone, "paths") else [zone.ensure_file()]
    return "\n".join(str(path) for path in paths)


def _open_pathspec(pathspec: str):
    """mmap one snapshot, or a base+delta chain as a SegmentedZone."""
    paths = [entry for entry in pathspec.split("\n") if entry]
    if len(paths) == 1:
        return PackedZone.load(paths[0])
    from repro.dns.deltazone import SegmentedZone  # lazy: no import cycle
    return SegmentedZone.load_chain(paths[0], paths[1:])


# ----------------------------------------------------------------------
# pool plumbing (same shape as packedscan's _POOL_STATE)
# ----------------------------------------------------------------------

# parent-prebuilt worker state: {"key", "detector", "engine"}.  The key
# carries the cache-relevant config (detector identity, snapshot digest,
# negcache knobs) so a bench flipping the negcache between legs never
# reuses a mismatched engine; the detector strong ref pins its id.
_SERVE_STATE: Optional[dict] = None


def _build_state(detector, zone: PackedZone, generation: int,
                 use_negcache: bool, ttl: float, capacity: int,
                 key: Tuple) -> dict:
    negcache = NegativeVerdictCache(ttl, capacity) if use_negcache else None
    return {"key": key, "detector": detector,
            "engine": QueryEngine(detector, zone, generation=generation,
                                  negcache=negcache)}


def _prepare_state(detector, zone: PackedZone, generation: int,
                   use_negcache: bool, ttl: float, capacity: int) -> Tuple:
    """Prebuild worker state in the parent; returns the fork-check key."""
    global _SERVE_STATE
    key = (id(detector), zone.content_digest, bool(use_negcache),
           float(ttl), int(capacity))
    if _SERVE_STATE is None or _SERVE_STATE["key"] != key:
        _SERVE_STATE = _build_state(detector, zone, generation,
                                    use_negcache, ttl, capacity, key)
    return key


def _serve_pool_init(catalog, generator, key: Tuple, path: str,
                     generation: int, use_negcache: bool, ttl: float,
                     capacity: int) -> None:
    global _SERVE_STATE
    key = tuple(key)
    if _SERVE_STATE is not None and _SERVE_STATE["key"] == key:
        return  # fork-inherited from the parent, nothing to rebuild
    from repro.squatting.detector import SquattingDetector  # lazy: no cycle
    detector = SquattingDetector(catalog, generator)
    _SERVE_STATE = _build_state(detector, _open_pathspec(path), generation,
                                use_negcache, ttl, capacity, key)


def _serve_batch(task: Tuple[int, str, Tuple[str, ...], float]
                 ) -> Tuple[List[Verdict], float, int,
                            Tuple[int, Dict[str, int]]]:
    """(verdicts, service seconds, negcache hits, kernel delta) for one
    batch task; the kernel delta is (rows classified in-kernel, per-reason
    scalar fallback counts)."""
    generation, path, names, now = task
    state = _SERVE_STATE
    assert state is not None, "serve worker used before initialization"
    engine: QueryEngine = state["engine"]
    if engine.generation != generation:
        engine.reload(_open_pathspec(path), generation)
    hits_before = engine.stats.negcache_hits
    rows_before = engine.stats.kernel_rows
    fb_before = dict(engine.stats.fallbacks)
    started = time.perf_counter()
    verdicts = engine.lookup_batch(list(names), now=now)
    elapsed = time.perf_counter() - started
    fb_delta = {reason: count - fb_before.get(reason, 0)
                for reason, count in engine.stats.fallbacks.items()
                if count - fb_before.get(reason, 0)}
    return (verdicts, elapsed, engine.stats.negcache_hits - hits_before,
            (engine.stats.kernel_rows - rows_before, fb_delta))


# ----------------------------------------------------------------------
# the serving front
# ----------------------------------------------------------------------

def serve_load(detector, zone: PackedZone,
               requests: Iterable[Tuple[float, str]],
               workers: int = 1, max_batch: int = 64,
               max_delay: float = 0.005,
               negcache: bool = True, negcache_ttl: float = 300.0,
               negcache_capacity: int = 1 << 16,
               publisher=None,
               on_dispatch: Optional[Callable[[int], None]] = None,
               clock: Optional[SimClock] = None,
               scorer=None) -> Tuple[List[Verdict], ServeStats]:
    """Serve a timestamped request stream; verdicts in request order.

    ``zone`` is the generation the server starts on; when ``publisher``
    is given, its ``CURRENT`` pointer is polled before every dispatch
    and strictly-newer generations are hot-swapped in.  ``on_dispatch``
    (batch index → None) runs before each poll — harnesses use it to
    publish mid-burst deterministically.  ``scorer`` is serial-only (it
    would have to be shipped to workers otherwise); pass ``workers=1``
    to use it.
    """
    if scorer is not None and workers > 1:
        raise ValueError("scorer requires workers=1 (not shipped to pools)")
    requests = list(requests)
    batches = plan_batches(requests, max_batch, max_delay)
    clock = clock if clock is not None else SimClock()
    stats = ServeStats(workers=workers, max_batch=max_batch,
                       max_delay=max_delay)
    stats.batches = len(batches)

    generation = zone.generation
    path = _zone_pathspec(zone) if batches and workers > 1 else ""
    swaps = 0

    def poll(index: int) -> None:
        nonlocal generation, path, swaps
        if on_dispatch is not None:
            on_dispatch(index)
        if publisher is not None:
            chain = getattr(publisher, "current_chain", None)
            if chain is not None:
                state = chain()
                if state is not None and state[0] > generation:
                    generation = state[0]
                    path = "\n".join(
                        [str(state[1])] + [str(p) for p in state[2]])
                    swaps += 1
            else:
                state = publisher.current()
                if state is not None and state[0] > generation:
                    generation = state[0]
                    path = str(state[1])
                    swaps += 1

    results: List[Optional[List[Verdict]]] = [None] * len(batches)
    latencies: List[float] = []
    started = time.perf_counter()

    if workers <= 1:
        engine = QueryEngine(
            detector, zone, generation=generation,
            negcache=NegativeVerdictCache(negcache_ttl, negcache_capacity)
            if negcache else None,
            scorer=scorer)
        for index, batch in enumerate(batches):
            poll(index)
            if engine.generation != generation:
                engine.reload(_open_pathspec(path), generation)
            clock.advance_to(batch.dispatch_at)
            t0 = time.perf_counter()
            results[index] = engine.lookup_batch(
                list(batch.names), now=batch.dispatch_at)
            service = time.perf_counter() - t0
            stats.service_seconds += service
            latencies.extend(
                (batch.dispatch_at - arrival + service) * 1e3
                for arrival in batch.arrivals)
        stats.negcache_hits = engine.stats.negcache_hits
        stats.kernel_rows = engine.stats.kernel_rows
        stats.count_fallbacks(engine.stats.fallbacks)
    else:
        key = _prepare_state(detector, zone, generation, negcache,
                             negcache_ttl, negcache_capacity)
        initargs = (detector.catalog, detector.generator, key, path,
                    generation, negcache, negcache_ttl, negcache_capacity)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_serve_pool_init,
                                 initargs=initargs) as pool:
            inflight: Dict[object, int] = {}
            next_index = 0
            while next_index < len(batches) or inflight:
                while next_index < len(batches) and len(inflight) < workers:
                    index = next_index
                    next_index += 1
                    poll(index)
                    batch = batches[index]
                    clock.advance_to(batch.dispatch_at)
                    future = pool.submit(
                        _serve_batch,
                        (generation, path, batch.names, batch.dispatch_at))
                    inflight[future] = index
                done, _pending = wait(set(inflight),
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    index = inflight.pop(future)
                    verdicts, service, hits, kernel = future.result()
                    results[index] = verdicts
                    stats.service_seconds += service
                    stats.negcache_hits += hits
                    stats.kernel_rows += kernel[0]
                    stats.count_fallbacks(kernel[1])
                    batch = batches[index]
                    latencies.extend(
                        (batch.dispatch_at - arrival + service) * 1e3
                        for arrival in batch.arrivals)

    stats.wall_seconds = time.perf_counter() - started
    verdicts: List[Verdict] = []
    for chunk in results:
        verdicts.extend(chunk or ())
    stats.queries = len(verdicts)
    stats.dropped = len(requests) - len(verdicts)
    stats.generation_swaps = swaps
    for verdict in verdicts:
        stats.served_by_generation[verdict.generation] = \
            stats.served_by_generation.get(verdict.generation, 0) + 1
    stats.p50_ms = percentile(latencies, 50)
    stats.p99_ms = percentile(latencies, 99)
    return verdicts, stats
