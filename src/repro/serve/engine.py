"""Per-process query engine: verdicts over one mmap'd snapshot generation.

A :class:`Verdict` is the serving answer for one domain — squat family,
matched brand, veto detail, the snapshot's registration bit, its
enrichment columns, and (when a scorer is installed) the classifier
score.  Every field is a pure function of (normalized name, snapshot
generation), which is the contract the whole serving layer leans on:
batching, caching, worker count, and hot-reload timing can change
throughput and latency but never a verdict byte.

The engine composes the packed substrate end to end: the negative cache
short-circuits repeat benign names, :meth:`PackedZone.registered_ids`
answers membership with two searchsorteds (never a per-name exception),
and :meth:`PackedScanContext.classify_batch` runs the whole cache-miss
batch through the vectorized reject in one call.  The offline oracle
(:func:`offline_verdicts`) rebuilds the same rows from the per-name
reference paths, so byte-identity is testable on every leg.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dns.packedzone import PackedZone, _u32_to_ip
from repro.dns.records import registered_domain
from repro.squatting.packedscan import PackedScanContext
from repro.squatting.types import SquatType

#: enrichment fields surfaced per verdict, in emission order
ENRICHMENT_FIELDS = ("a_ip", "country", "mx_present", "registrar", "year")


@dataclass(frozen=True)
class Verdict:
    """One served answer; compares and hashes by value."""

    domain: str                    # normalized query name
    generation: int                # snapshot generation that answered
    registered: bool               # registrable domain present in zone
    brand: Optional[str] = None    # matched brand (squats only)
    squat_type: Optional[SquatType] = None
    detail: Optional[str] = None   # veto/match trace from the classifier
    enrichment: Optional[Tuple[Tuple[str, object], ...]] = None
    score: Optional[float] = None  # classifier score when features cached

    @property
    def is_squat(self) -> bool:
        return self.squat_type is not None

    def __reduce__(self):
        # positional reduce: default frozen-dataclass pickling walks
        # __getstate__ dicts per instance, and the worker->parent result
        # path ships thousands of verdicts per second
        return (Verdict, (self.domain, self.generation, self.registered,
                          self.brand, self.squat_type, self.detail,
                          self.enrichment, self.score))


def verdict_line(verdict: Verdict) -> str:
    """Canonical one-line encoding, the unit of byte-identity checks."""
    squat = verdict.squat_type.value if verdict.squat_type else ""
    enr = "" if verdict.enrichment is None else \
        ";".join(f"{k}={v}" for k, v in verdict.enrichment)
    score = "" if verdict.score is None else f"{verdict.score:.9f}"
    return "|".join((verdict.domain, str(verdict.generation),
                     str(int(verdict.registered)), verdict.brand or "",
                     squat, verdict.detail or "", enr, score))


def digest_verdicts(verdicts: Iterable[Verdict]) -> str:
    """SHA-256 over the canonical verdict lines, order-sensitive."""
    digest = hashlib.sha256()
    for verdict in verdicts:
        digest.update(verdict_line(verdict).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class EngineStats:
    """Per-engine accounting (throughput metadata, never in a verdict).

    ``kernel_rows``/``fallbacks`` mirror the scan-side
    :class:`~repro.squatting.packedscan.KernelStats` contract: rows the
    in-kernel matchers classified versus the per-reason counts of names
    that fell back to the per-domain Python classifier.
    """

    queries: int = 0
    batches: int = 0
    negcache_hits: int = 0
    classified: int = 0
    reloads: int = 0
    kernel_rows: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)

    def count_fallbacks(self, families: Dict[str, int]) -> None:
        for reason, count in families.items():
            if count:
                self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count

    def as_dict(self) -> Dict[str, object]:
        return {"queries": self.queries, "batches": self.batches,
                "negcache_hits": self.negcache_hits,
                "classified": self.classified, "reloads": self.reloads,
                "kernel_rows": self.kernel_rows,
                "fallbacks": dict(sorted(self.fallbacks.items()))}


class QueryEngine:
    """Verdict lookups over one snapshot generation, hot-swappable.

    ``negcache`` (optional) must be a
    :class:`~repro.serve.negcache.NegativeVerdictCache`; it is kept
    across :meth:`reload` — generation stamps invalidate stale entries.
    ``scorer`` (optional) maps a normalized domain to a float score or
    None (e.g. a classifier over cached page features); it must be pure
    per (domain, generation) for the determinism contract to hold.
    """

    def __init__(self, detector, zone: PackedZone,
                 generation: Optional[int] = None,
                 negcache=None,
                 scorer: Optional[Callable[[str], Optional[float]]] = None,
                 ) -> None:
        self.detector = detector
        self.negcache = negcache
        self.scorer = scorer
        self.stats = EngineStats()
        self._install(zone, generation)

    def _install(self, zone: PackedZone, generation: Optional[int]) -> None:
        self.zone = zone
        self.generation = int(zone.generation if generation is None
                              else generation)
        self.context = PackedScanContext(self.detector, zone)
        self._enr: Optional[Dict[str, object]] = None
        if zone.has_enrichment and zone.enrichment_meta:
            self._enr = {
                "has": zone.enrichment_column("has"),
                "a_ip": zone.enrichment_column("a_ip"),
                "country": zone.enrichment_column("country"),
                "year": zone.enrichment_column("year"),
                "registrar": zone.enrichment_column("registrar"),
                "mx": zone.enrichment_column("mx"),
                "countries": list(zone.enrichment_meta["countries"]),
                "registrars": list(zone.enrichment_meta["registrars"]),
            }

    def reload(self, zone: PackedZone,
               generation: Optional[int] = None) -> None:
        """Swap in a new snapshot generation.

        Only this engine's references move: a batch currently draining
        elsewhere on the superseded mmap keeps its views alive until it
        finishes, which is the whole hot-reload drain semantics.
        """
        self._install(zone, generation)
        self.stats.reloads += 1

    # ------------------------------------------------------------------
    def _enrichment_for(self, reg_id: int) -> Optional[Tuple]:
        enr = self._enr
        if enr is None or not int(enr["has"][reg_id]):
            return None
        a_ip = int(enr["a_ip"][reg_id])
        country = int(enr["country"][reg_id])
        year = int(enr["year"][reg_id])
        registrar = int(enr["registrar"][reg_id])
        return (
            ("a_ip", _u32_to_ip(a_ip) if a_ip else None),
            ("country", enr["countries"][country] if country else None),
            ("mx_present", bool(enr["mx"][reg_id])),
            ("registrar", enr["registrars"][registrar] if registrar else None),
            ("year", year or None),
        )

    def lookup_batch(self, names: Sequence[str],
                     now: float = 0.0) -> List[Verdict]:
        """Verdicts for ``names`` in input order (one vectorized pass).

        ``now`` is the sim-clock dispatch time of the batch — it drives
        negative-cache TTLs only.
        """
        n = len(names)
        verdicts: List[Optional[Verdict]] = [None] * n
        negcache = self.negcache
        generation = self.generation
        pending: List[int] = []
        pending_names: List[str] = []
        for i, name in enumerate(names):
            normalized = name.lower().rstrip(".")
            if negcache is not None:
                cached = negcache.get(normalized, generation, now)
                if cached is not None:
                    verdicts[i] = cached
                    continue
            pending.append(i)
            pending_names.append(normalized)
        if pending_names:
            reg_ids = self.zone.registered_ids(pending_names)
            kernel_before = self.context.kernel.copy()
            matches = self.context.classify_batch(pending_names)
            kernel_delta = self.context.kernel.delta(kernel_before)
            self.stats.kernel_rows += kernel_delta.rows
            self.stats.count_fallbacks(kernel_delta.fallbacks)
            scorer = self.scorer
            for i, normalized, reg_id, match in zip(
                    pending, pending_names, reg_ids, matches):
                reg_id = int(reg_id)
                verdict = Verdict(
                    domain=normalized,
                    generation=generation,
                    registered=reg_id >= 0,
                    brand=match.brand if match else None,
                    squat_type=match.squat_type if match else None,
                    detail=match.detail if match else None,
                    enrichment=self._enrichment_for(reg_id)
                    if reg_id >= 0 else None,
                    score=scorer(normalized) if scorer is not None else None,
                )
                verdicts[i] = verdict
                if negcache is not None and not verdict.is_squat:
                    negcache.put(normalized, generation, now, verdict)
        stats = self.stats
        stats.queries += n
        stats.batches += 1
        stats.negcache_hits += n - len(pending)
        stats.classified += len(pending)
        return verdicts  # type: ignore[return-value]


def offline_verdicts(detector, zone: PackedZone, names: Sequence[str],
                     generation: Optional[int] = None,
                     scorer: Optional[Callable[[str], Optional[float]]] = None,
                     ) -> List[Verdict]:
    """The reference answer: per-name classify + dict-index membership.

    Deliberately avoids every serving fast path — scalar
    ``classify_domain`` calls, a python dict over
    :meth:`PackedZone.registered_domains`, per-row enrichment decode —
    so it is an independent oracle for byte-identity harnesses.
    """
    generation = int(zone.generation if generation is None else generation)
    regs = {domain: i for i, domain in enumerate(zone.registered_domains())}
    out: List[Verdict] = []
    for name in names:
        normalized = name.lower().rstrip(".")
        match = detector.classify_domain(normalized)
        reg_id = regs.get(registered_domain(normalized), -1)
        out.append(Verdict(
            domain=normalized,
            generation=generation,
            registered=reg_id >= 0,
            brand=match.brand if match else None,
            squat_type=match.squat_type if match else None,
            detail=match.detail if match else None,
            enrichment=_offline_enrichment(zone, reg_id)
            if reg_id >= 0 else None,
            score=scorer(normalized) if scorer is not None else None,
        ))
    return out


def _offline_enrichment(zone: PackedZone,
                        reg_id: int) -> Optional[Tuple]:
    """Per-row enrichment decode straight off the columns (oracle path)."""
    if not zone.has_enrichment or not zone.enrichment_meta:
        return None
    if not int(zone.enrichment_column("has")[reg_id]):
        return None
    a_ip = int(zone.enrichment_column("a_ip")[reg_id])
    country = int(zone.enrichment_column("country")[reg_id])
    year = int(zone.enrichment_column("year")[reg_id])
    registrar = int(zone.enrichment_column("registrar")[reg_id])
    countries = zone.enrichment_meta["countries"]
    registrars = zone.enrichment_meta["registrars"]
    return (
        ("a_ip", _u32_to_ip(a_ip) if a_ip else None),
        ("country", countries[country] if country else None),
        ("mx_present", bool(zone.enrichment_column("mx")[reg_id])),
        ("registrar", registrars[registrar] if registrar else None),
        ("year", year or None),
    )
