"""Interactive query serving over packed zone snapshots.

The batch pipeline answers "which of the snapshot's domains squat a
brand?" once per snapshot; defenders need the transpose — "is *this*
domain a squat, and why?" — answered continuously and fast.  This
package turns the packed substrate (mmap'd PZON snapshots, the
vectorized scan kernel, columnar enrichment) into that query service:

* :mod:`~repro.serve.engine` — per-process :class:`QueryEngine`
  producing :class:`Verdict` rows byte-identical to the offline
  scan/classify path;
* :mod:`~repro.serve.batcher` — deterministic micro-batching of the
  request stream (``max_batch``/``max_delay`` on the shared sim clock);
* :mod:`~repro.serve.negcache` — TTL'd generation-stamped cache for the
  overwhelmingly-common "not a squat" answer;
* :mod:`~repro.serve.publisher` — atomic snapshot-generation publishing
  for hot reloads;
* :mod:`~repro.serve.server` — the multi-worker serving front
  (:func:`serve_load`) with fork-inherited engines;
* :mod:`~repro.serve.loadgen` — deterministic query-stream synthesis
  for benches and the correctness harness.

See DESIGN.md §13.
"""

from repro.serve.batcher import Batch, plan_batches
from repro.serve.engine import (QueryEngine, Verdict, digest_verdicts,
                                offline_verdicts, verdict_line)
from repro.serve.loadgen import percentile, synth_requests
from repro.serve.negcache import NegativeVerdictCache
from repro.serve.publisher import SnapshotPublisher
from repro.serve.server import ServeStats, serve_load

__all__ = [
    "Batch",
    "NegativeVerdictCache",
    "QueryEngine",
    "ServeStats",
    "SnapshotPublisher",
    "Verdict",
    "digest_verdicts",
    "offline_verdicts",
    "percentile",
    "plan_batches",
    "serve_load",
    "synth_requests",
    "verdict_line",
]
