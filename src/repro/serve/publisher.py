"""Atomic snapshot-generation publishing.

A publish directory holds generation-stamped PZON files plus a
``CURRENT`` pointer file; both are written via temp-file + ``os.replace``
(and a directory fsync so the rename itself is durable), so a reader
polling :meth:`SnapshotPublisher.current` sees either the old complete
generation or the new complete generation, never a torn state.  Workers
hot-reload by comparing the polled generation number against their
engine's — the stamp inside the PZON meta (see
:func:`~repro.dns.packedzone.stamp_generation`) makes the handle
self-describing, so a worker that mmaps the file late still knows which
generation is answering.

The streaming path extends the pointer to a *chain*: one tab-separated
line ``generation<TAB>base<TAB>delta1<TAB>...``.  :meth:`current` keeps
returning the first two fields (pre-streaming readers see the base);
chain-aware readers call :meth:`current_chain` and open the union as a
:class:`~repro.dns.deltazone.SegmentedZone`.  :meth:`publish_delta`
appends one delta segment and bumps the generation; :meth:`publish`
resets the chain to a lone base (a compaction boundary).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dns.packedzone import PackedZone, stamp_generation

PathLike = Union[str, Path]

_CURRENT = "CURRENT"


class SnapshotPublisher:
    """Publishes snapshots into a directory as numbered generations."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def current(self) -> Optional[Tuple[int, Path]]:
        """(generation, base snapshot path) of the live pointer, or None."""
        chain = self.current_chain()
        return None if chain is None else (chain[0], chain[1])

    def current_chain(self) -> Optional[Tuple[int, Path, List[Path]]]:
        """(generation, base path, ordered delta paths), or None."""
        pointer = self.root / _CURRENT
        try:
            text = pointer.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        fields = text.split("\t")
        return (int(fields[0]), self.root / fields[1],
                [self.root / name for name in fields[2:]])

    def open_current(self) -> Optional[PackedZone]:
        """mmap the live generation's base, or None before any publish."""
        state = self.current()
        return None if state is None else PackedZone.load(state[1])

    # ------------------------------------------------------------------
    def publish(self, zone: PackedZone) -> Tuple[int, Path]:
        """Stamp ``zone`` as the next generation and swap it live.

        The data file lands first (write to temp, fsync, rename), the
        pointer swaps second — so a crash between the two leaves the old
        generation live and an orphaned-but-complete data file, never a
        pointer to a partial snapshot.  Any delta chain is reset: the new
        pointer names the base alone (this is the compaction boundary).
        """
        state = self.current()
        generation = (state[0] if state else 0) + 1
        stamped = stamp_generation(zone, generation)
        name = f"gen-{generation:06d}.pzon"
        path = self.root / name
        self._write_atomic(path, stamped.to_bytes())
        self._write_atomic(self.root / _CURRENT,
                           f"{generation}\t{name}\n".encode("utf-8"))
        return generation, path

    def publish_delta(self, segment_bytes: bytes) -> Tuple[int, Path]:
        """Append one delta segment to the live chain and bump generation.

        ``segment_bytes`` is a sealed delta-segment file (see
        :class:`~repro.dns.deltazone.DeltaSegmentBuilder`).  The segment
        is stamped with the new generation so late-mmapping readers can
        self-identify, then the pointer grows one more chain entry.
        Requires a published base (the chain needs something to hang off).
        """
        chain = self.current_chain()
        if chain is None:
            raise ValueError("publish_delta requires a published base")
        generation, base_path, delta_paths = chain
        generation += 1
        stamped = stamp_generation(
            PackedZone.from_bytes(segment_bytes), generation)
        name = f"gen-{generation:06d}.delta.pzon"
        path = self.root / name
        self._write_atomic(path, stamped.to_bytes())
        names = [base_path.name] + [p.name for p in delta_paths] + [name]
        pointer = "\t".join([str(generation)] + names) + "\n"
        self._write_atomic(self.root / _CURRENT, pointer.encode("utf-8"))
        return generation, path

    def _write_atomic(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # make the rename durable: fsync the directory entry, else a
        # crash can roll CURRENT back to a generation whose data file
        # outlived it (or vice versa)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
