"""Atomic snapshot-generation publishing.

A publish directory holds generation-stamped PZON files plus a
``CURRENT`` pointer file; both are written via temp-file + ``os.replace``
so a reader polling :meth:`SnapshotPublisher.current` sees either the
old complete generation or the new complete generation, never a torn
state.  Workers hot-reload by comparing the polled generation number
against their engine's — the stamp inside the PZON meta (see
:func:`~repro.dns.packedzone.stamp_generation`) makes the handle
self-describing, so a worker that mmaps the file late still knows which
generation is answering.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.dns.packedzone import PackedZone, stamp_generation

PathLike = Union[str, Path]

_CURRENT = "CURRENT"


class SnapshotPublisher:
    """Publishes snapshots into a directory as numbered generations."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def current(self) -> Optional[Tuple[int, Path]]:
        """(generation, snapshot path) of the live pointer, or None."""
        pointer = self.root / _CURRENT
        try:
            text = pointer.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        generation, _tab, name = text.partition("\t")
        return int(generation), self.root / name

    def open_current(self) -> Optional[PackedZone]:
        """mmap the live generation, or None before any publish."""
        state = self.current()
        return None if state is None else PackedZone.load(state[1])

    # ------------------------------------------------------------------
    def publish(self, zone: PackedZone) -> Tuple[int, Path]:
        """Stamp ``zone`` as the next generation and swap it live.

        The data file lands first (write to temp, fsync, rename), the
        pointer swaps second — so a crash between the two leaves the old
        generation live and an orphaned-but-complete data file, never a
        pointer to a partial snapshot.
        """
        state = self.current()
        generation = (state[0] if state else 0) + 1
        stamped = stamp_generation(zone, generation)
        name = f"gen-{generation:06d}.pzon"
        path = self.root / name
        self._write_atomic(path, stamped.to_bytes())
        self._write_atomic(self.root / _CURRENT,
                           f"{generation}\t{name}\n".encode("utf-8"))
        return generation, path

    def _write_atomic(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
