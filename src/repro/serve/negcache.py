"""TTL'd negative-verdict cache for the query engine.

The operational query mix is dominated by domains that squat nothing:
every lookup of such a name runs the full vector reject just to say
"benign".  Verdicts are pure functions of (name, snapshot generation),
so caching them is transparent — a hit returns the exact object an
uncached lookup would rebuild — and the cache only needs two safety
valves: a TTL (so an operator's mental model of "recently checked"
stays bounded) and a generation stamp (so a snapshot hot-reload
invalidates every stale answer without a sweep).

Time comes from the serve loop's :class:`~repro.faults.clock.SimClock`,
eviction is insertion-ordered under a fixed capacity, and hit/miss
accounting never feeds back into any verdict — determinism holds by
construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class NegativeVerdictCache:
    """domain -> (generation, expiry, verdict), FIFO-evicted at capacity."""

    def __init__(self, ttl: float = 300.0, capacity: int = 1 << 16) -> None:
        if ttl <= 0:
            raise ValueError("negative-cache TTL must be positive")
        if capacity < 1:
            raise ValueError("negative-cache capacity must be >= 1")
        self.ttl = float(ttl)
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Tuple[int, float, object]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, domain: str, generation: int, now: float):
        """The cached verdict, or None on miss/expiry/generation change."""
        entry = self._entries.get(domain)
        if entry is None:
            self.misses += 1
            return None
        gen, expiry, verdict = entry
        if gen != generation:
            # stale generation: drop eagerly so a reloaded server sheds
            # old answers as it re-touches names, not all at once
            del self._entries[domain]
            self.invalidations += 1
            self.misses += 1
            return None
        if now >= expiry:
            del self._entries[domain]
            self.misses += 1
            return None
        self.hits += 1
        return verdict

    def put(self, domain: str, generation: int, now: float, verdict) -> None:
        entries = self._entries
        if domain in entries:
            del entries[domain]  # re-put refreshes both TTL and FIFO slot
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[domain] = (generation, now + self.ttl, verdict)

    def purge_stale(self, generation: int) -> int:
        """Drop every entry not stamped ``generation``; returns the count.

        Optional eager invalidation after a hot reload — lazily expiring
        per-hit (see :meth:`get`) is equivalent for correctness, this
        just reclaims the memory immediately.
        """
        stale = [domain for domain, (gen, _, _) in self._entries.items()
                 if gen != generation]
        for domain in stale:
            del self._entries[domain]
        self.invalidations += len(stale)
        return len(stale)
