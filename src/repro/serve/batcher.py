"""Deterministic request micro-batching.

One scalar ``classify_domain`` call costs roughly as much Python
dispatch as a whole vectorized batch, so the serving front coalesces
pending lookups: a batch opens at its first request's arrival, admits
requests until either it holds ``max_batch`` of them or an arrival
lands past ``first_arrival + max_delay``, and dispatches at whichever
bound closed it.  Arrivals are sim-clock timestamps, so the plan — and
therefore batch membership, dispatch times, and the negative cache's
TTL arithmetic downstream — is a pure function of the request stream
and the two knobs.  Per-request latency is ``dispatch - arrival`` plus
service time: the classic batching trade the bench's p50/p99 columns
make visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Batch:
    """One dispatch unit: names in arrival order + their timestamps."""

    dispatch_at: float
    names: Tuple[str, ...]
    arrivals: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.names)


def plan_batches(requests: Iterable[Tuple[float, str]], max_batch: int,
                 max_delay: float) -> List[Batch]:
    """Coalesce an arrival-ordered ``(timestamp, name)`` stream.

    ``max_batch=1`` degenerates to unbatched serving (every request its
    own dispatch); ``max_delay=0`` still merges requests sharing one
    arrival instant.  Raises on a stream that goes backwards in time —
    the plan's determinism depends on arrival order.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")
    batches: List[Batch] = []
    names: List[str] = []
    arrivals: List[float] = []
    deadline = 0.0
    last_arrival = float("-inf")

    def flush(dispatch_at: float) -> None:
        batches.append(Batch(dispatch_at=dispatch_at, names=tuple(names),
                             arrivals=tuple(arrivals)))
        names.clear()
        arrivals.clear()

    for arrival, name in requests:
        arrival = float(arrival)
        if arrival < last_arrival:
            raise ValueError(
                f"request stream is not arrival-ordered at {name!r}")
        last_arrival = arrival
        if names and arrival > deadline:
            # the open batch timed out before this arrival: it left at
            # its deadline
            flush(deadline)
        if not names:
            deadline = arrival + max_delay
        names.append(name)
        arrivals.append(arrival)
        if len(names) >= max_batch:
            flush(arrival)
    if names:
        flush(deadline)
    return batches
