"""Deterministic query-load synthesis for serving benches and harnesses.

Real verdict traffic is repetitive (the same suspicious names get
checked again and again) and dominated by benign/never-registered
domains.  :func:`synth_requests` models that: a bounded name pool mixing
registered names, known squats, and synthesized never-registered names
is sampled with replacement — the repetition is what gives the negative
cache real traffic — under Poisson arrivals at a target QPS on the sim
clock.  Everything is a pure function of the seed, so a request stream
replays identically across legs, worker counts, and processes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

_MISS_TLDS = ("xyz", "top", "icu")


def synth_requests(n_queries: int, qps: float, seed: int = 1803,
                   registered: Sequence[str] = (),
                   squats: Sequence[str] = (),
                   miss_rate: float = 0.5, squat_rate: float = 0.05,
                   pool_factor: int = 3) -> List[Tuple[float, str]]:
    """An arrival-ordered ``(timestamp, name)`` stream.

    The pool holds ``n_queries // pool_factor`` unique names (so each is
    queried ~``pool_factor`` times on average): ``squat_rate`` of them
    drawn from ``squats``, ``miss_rate`` synthesized never-registered
    names (20-hex-digit labels under throwaway TLDs), the rest from
    ``registered``.  Empty source sequences shift their share onto the
    synthesized misses.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = np.random.default_rng(seed)
    n_pool = max(1, n_queries // max(pool_factor, 1))
    n_squat = int(round(n_pool * squat_rate)) if len(squats) else 0
    n_reg = int(round(n_pool * (1.0 - miss_rate - squat_rate))) \
        if len(registered) else 0
    pool: List[str] = []
    if n_squat:
        pool.extend(squats[int(i)]
                    for i in rng.integers(0, len(squats), n_squat))
    if n_reg:
        pool.extend(registered[int(i)]
                    for i in rng.integers(0, len(registered), n_reg))
    while len(pool) < n_pool:
        label = "".join(f"{b:02x}" for b in rng.integers(0, 256, 10))
        tld = _MISS_TLDS[int(rng.integers(0, len(_MISS_TLDS)))]
        pool.append(f"{label}.{tld}")
    picks = rng.integers(0, len(pool), n_queries)
    arrivals = np.cumsum(rng.exponential(1.0 / qps, n_queries))
    return [(float(at), pool[int(pick)])
            for at, pick in zip(arrivals, picks)]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in 0..100); 0.0 on empty input."""
    if not values:
        return 0.0
    data = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(data)))
    return float(data[rank - 1])
