"""Sector brand catalogs: the paper's stated measurement extension.

§7 ("Our Limitations"): *"As a future work, we can extend our measurement
scope to specifically cover the web domains of government agencies, military
institutions, universities, and hospitals to detect squatting phishing
targeting important organizations."*  This module implements that extension:
curated sector catalogs that plug into the same detector/pipeline machinery
as the Alexa-based catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.brands.catalog import Brand, BrandCatalog

# Each entry: (brand key, canonical domain, sensitivity).
GOVERNMENT_BRANDS: Tuple[Tuple[str, str, str], ...] = (
    ("irs", "irs.gov", "payment"),
    ("ssa", "ssa.gov", "login"),
    ("medicare", "medicare.gov", "login"),
    ("uscis", "uscis.gov", "login"),
    ("dmv", "dmv.org", "login"),
    ("treasury", "treasury.gov", "info"),
    ("stateagency", "state.gov", "info"),
    ("uktax", "hmrc.gov.uk", "payment"),
    ("govuk", "gov.uk", "login"),
    ("elections", "vote.gov", "info"),
)

MILITARY_BRANDS: Tuple[Tuple[str, str, str], ...] = (
    ("army", "army.mil", "login"),
    ("navy", "navy.mil", "login"),
    ("airforce", "airforce.mil", "login"),
    ("defense", "defense.gov", "info"),
    ("tricare", "tricare.mil", "login"),
    ("myarmybenefits", "myarmybenefits.us.army.mil", "login"),
)

UNIVERSITY_BRANDS: Tuple[Tuple[str, str, str], ...] = (
    ("mit", "mit.edu", "login"),
    ("stanford", "stanford.edu", "login"),
    ("harvard", "harvard.edu", "login"),
    ("berkeley", "berkeley.edu", "login"),
    ("oxford", "ox.ac.uk", "login"),
    ("cambridge", "cam.ac.uk", "login"),
    ("vt", "vt.edu", "login"),          # the authors' institution
    ("cmu", "cmu.edu", "login"),
    ("gatech", "gatech.edu", "login"),
)

HOSPITAL_BRANDS: Tuple[Tuple[str, str, str], ...] = (
    ("mayoclinic", "mayoclinic.org", "login"),
    ("clevelandclinic", "clevelandclinic.org", "login"),
    ("kaiser", "kaiserpermanente.org", "login"),
    ("nhs", "nhs.uk", "login"),
    ("hopkinsmedicine", "hopkinsmedicine.org", "login"),
    ("mountsinai", "mountsinai.org", "login"),
)

SECTORS: Dict[str, Tuple[Tuple[str, str, str], ...]] = {
    "government": GOVERNMENT_BRANDS,
    "military": MILITARY_BRANDS,
    "university": UNIVERSITY_BRANDS,
    "hospital": HOSPITAL_BRANDS,
}


def sector_catalog(sectors: Optional[Sequence[str]] = None) -> BrandCatalog:
    """Build a catalog of sector brands.

    Args:
        sectors: subset of :data:`SECTORS` keys; all four by default.
    """
    selected = sectors if sectors is not None else sorted(SECTORS)
    unknown = [s for s in selected if s not in SECTORS]
    if unknown:
        raise ValueError(f"unknown sectors: {unknown}")
    catalog = BrandCatalog()
    for sector in selected:
        for name, domain, sensitivity in SECTORS[sector]:
            catalog.add(Brand(
                name=name,
                domain=domain,
                category=sector,
                sensitivity=sensitivity,
                sources=("sector",),
            ))
    return catalog


def extend_with_sectors(
    catalog: BrandCatalog,
    sectors: Optional[Sequence[str]] = None,
) -> BrandCatalog:
    """Merge sector brands into an existing catalog (e.g. the Alexa one)."""
    merged = BrandCatalog(iter(catalog))
    for brand in sector_catalog(sectors):
        merged.add(brand)
    return merged
