"""Brand catalog: the impersonation targets of squatting phishing.

A :class:`Brand` is a name plus its canonical registered domain; the catalog
reproduces the paper's selection (Alexa category top-50 ∪ PhishTank targets,
merged on registered domain → 702 uniques) at configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.dns.records import split_domain

# Real, well-known brands used as the nucleus of the catalog.  These are the
# brands the paper calls out in its tables (Table 5, 9, 10, Fig 13) so the
# benches can print the same rows.  Each entry: (brand key, canonical domain,
# category, sensitivity in {login, payment, info}).
SEED_BRANDS: Tuple[Tuple[str, str, str, str], ...] = (
    ("google", "google.com", "computers", "login"),
    ("facebook", "facebook.com", "social", "login"),
    ("paypal", "paypal.com", "finance", "payment"),
    ("apple", "apple.com", "computers", "payment"),
    ("microsoft", "microsoft.com", "computers", "login"),
    ("amazon", "amazon.com", "shopping", "payment"),
    ("ebay", "ebay.com", "shopping", "payment"),
    ("bitcoin", "bitcoin.com", "finance", "payment"),
    ("uber", "uber.com", "travel", "login"),
    ("youtube", "youtube.com", "arts", "login"),
    ("citi", "citi.com", "finance", "payment"),
    ("twitter", "twitter.com", "social", "login"),
    ("dropbox", "dropbox.com", "computers", "login"),
    ("github", "github.com", "computers", "login"),
    ("adp", "adp.com", "business", "payment"),
    ("santander", "santander.co.uk", "finance", "payment"),
    ("adobe", "adobe.com", "computers", "login"),
    ("ford", "ford.com", "autos", "info"),
    ("archive", "archive.org", "reference", "info"),
    ("europa", "europa.eu", "society", "info"),
    ("cisco", "cisco.com", "computers", "login"),
    ("discover", "discover.com", "finance", "payment"),
    ("porn", "porn.com", "adult", "info"),
    ("healthcare", "healthcare.com", "health", "login"),
    ("samsung", "samsung.com", "computers", "info"),
    ("intel", "intel.com", "computers", "info"),
    ("people", "people.com", "news", "info"),
    ("smile", "smile.com", "shopping", "payment"),
    ("history", "history.com", "arts", "info"),
    ("target", "target.com", "shopping", "payment"),
    ("android", "android.com", "computers", "info"),
    ("compass", "compass.com", "business", "info"),
    ("poste", "poste.it", "finance", "payment"),
    ("realtor", "realtor.com", "business", "login"),
    ("usda", "usda.com", "society", "info"),
    ("visa", "visa.com", "finance", "payment"),
    ("patient", "patient.co.uk", "health", "info"),
    ("arena", "arena.com", "games", "info"),
    ("mint", "mint.com", "finance", "payment"),
    ("xbox", "xbox.com", "games", "login"),
    ("discovery", "discovery.com", "arts", "info"),
    ("cams", "cams.com", "adult", "login"),
    ("slate", "slate.com", "news", "info"),
    ("weather", "weather.com", "news", "info"),
    ("delta", "delta.com", "travel", "payment"),
    ("blogger", "blogger.com", "arts", "login"),
    ("chase", "chase.com", "finance", "payment"),
    ("battle", "battle.net", "games", "login"),
    ("pandora", "pandora.com", "arts", "login"),
    ("nets53", "nets53.com", "finance", "payment"),
    ("cnet", "cnet.com", "computers", "info"),
    ("skyscanner", "skyscanner.net", "travel", "info"),
    ("motorsport", "motorsport.com", "autos", "info"),
    ("bing", "bing.com", "computers", "info"),
    ("sina", "sina.com.cn", "news", "login"),
    ("dict", "dict.cc", "reference", "info"),
    ("bbb", "bbb.org", "business", "info"),
    ("bt", "bt.com", "computers", "login"),
    ("tsb", "tsb.co.uk", "finance", "payment"),
    ("cnn", "cnn.com", "news", "info"),
    ("nike", "nike.com", "shopping", "payment"),
    ("gq", "gq.com", "news", "info"),
    ("pinterest", "pinterest.com", "social", "login"),
    ("msn", "msn.com", "news", "login"),
    ("chess", "chess.com", "games", "login"),
    ("nyu", "nyu.com", "reference", "info"),
    ("nationwide", "nationwide.co.uk", "finance", "payment"),
    ("credit-agricole", "credit-agricole.fr", "finance", "payment"),
    ("cua", "cua.com.au", "finance", "payment"),
    ("fifa", "fifa.com", "games", "info"),
    ("columbia", "columbia.com", "shopping", "payment"),
    ("tsn", "tsn.ca", "news", "info"),
    ("bodybuilding", "bodybuilding.com", "health", "login"),
    ("vice", "vice.com", "news", "info"),
    ("zocdoc", "zocdoc.com", "health", "login"),
    ("comerica", "comerica.com", "finance", "payment"),
    ("verizon", "verizon.com", "computers", "payment"),
    ("shutterfly", "shutterfly.com", "shopping", "payment"),
    ("alliancebank", "alliancebank.com", "finance", "payment"),
    ("rabobank", "rabobank.nl", "finance", "payment"),
    ("priceline", "priceline.com", "travel", "payment"),
    ("carfax", "carfax.com", "autos", "payment"),
    ("citizenslc", "citizenslc.com", "finance", "payment"),
    ("netflix", "netflix.com", "arts", "payment"),
    ("instagram", "instagram.com", "social", "login"),
    ("linkedin", "linkedin.com", "business", "login"),
    ("spotify", "spotify.com", "arts", "login"),
    ("wellsfargo", "wellsfargo.com", "finance", "payment"),
    ("bankofamerica", "bankofamerica.com", "finance", "payment"),
    ("hsbc", "hsbc.co.uk", "finance", "payment"),
    ("steam", "steampowered.com", "games", "login"),
    ("yahoo", "yahoo.com", "computers", "login"),
    ("walmart", "walmart.com", "shopping", "payment"),
    ("airbnb", "airbnb.com", "travel", "payment"),
    ("booking", "booking.com", "travel", "payment"),
    ("whatsapp", "whatsapp.com", "social", "login"),
    ("telegram", "telegram.org", "social", "login"),
    ("coinbase", "coinbase.com", "finance", "payment"),
    ("binance", "binance.com", "finance", "payment"),
    ("stripe", "stripe.com", "finance", "payment"),
    ("venmo", "venmo.com", "finance", "payment"),
    ("zoom", "zoom.com", "business", "login"),
    ("slack", "slack.com", "business", "login"),
    ("office", "office.com", "business", "login"),
    ("outlook", "outlook.com", "computers", "login"),
    ("icloud", "icloud.com", "computers", "login"),
    ("gmail", "gmail.com", "computers", "login"),
)


@dataclass(frozen=True)
class Brand:
    """A popular online service that squatting phishing may impersonate.

    Attributes:
        name: brand key, also the core label of the canonical domain
            (e.g. ``facebook``).
        domain: canonical registered domain (e.g. ``facebook.com``).
        category: Alexa category the brand belongs to.
        sensitivity: ``login`` / ``payment`` / ``info`` — drives how juicy a
            phishing target the brand is in the synthetic world.
        sources: where the brand entered the catalog (``alexa`` and/or
            ``phishtank``).
    """

    name: str
    domain: str
    category: str = "other"
    sensitivity: str = "info"
    sources: Tuple[str, ...] = ("alexa",)

    @property
    def core_label(self) -> str:
        core, _tld = split_domain(self.domain)
        return core

    @property
    def tld(self) -> str:
        _core, tld = split_domain(self.domain)
        return tld


class BrandCatalog:
    """An ordered, indexed collection of brands."""

    def __init__(self, brands: Iterable[Brand] = ()) -> None:
        self._brands: Dict[str, Brand] = {}
        for brand in brands:
            self.add(brand)

    def add(self, brand: Brand) -> None:
        """Add a brand; duplicate names merge their source lists."""
        existing = self._brands.get(brand.name)
        if existing is not None:
            merged_sources = tuple(sorted(set(existing.sources) | set(brand.sources)))
            brand = Brand(
                name=existing.name,
                domain=existing.domain,
                category=existing.category,
                sensitivity=existing.sensitivity,
                sources=merged_sources,
            )
        self._brands[brand.name] = brand

    def __len__(self) -> int:
        return len(self._brands)

    def __iter__(self) -> Iterator[Brand]:
        return iter(self._brands.values())

    def __contains__(self, name: str) -> bool:
        return name in self._brands

    def get(self, name: str) -> Optional[Brand]:
        """Look up a brand by key."""
        return self._brands.get(name)

    def names(self) -> List[str]:
        """All brand keys, insertion-ordered."""
        return list(self._brands.keys())

    def by_category(self, category: str) -> List[Brand]:
        """Brands in an Alexa category."""
        return [b for b in self._brands.values() if b.category == category]

    def by_source(self, source: str) -> List[Brand]:
        """Brands contributed by a selection source."""
        return [b for b in self._brands.values() if source in b.sources]

    def core_labels(self) -> Set[str]:
        """Set of canonical core labels (the squat-matching keys)."""
        return {b.core_label for b in self._brands.values()}


def merge_brand_domains(domains: Sequence[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Collapse (name, domain) pairs sharing a registered domain (§3.1).

    The paper merges e.g. ``niams.nih.gov`` and ``nichd.nih.gov`` into
    ``nih.gov``.  We keep the first name seen for each registered domain.
    """
    seen: Dict[str, Tuple[str, str]] = {}
    for name, domain in domains:
        labels = domain.lower().split(".")
        registered = ".".join(labels[-2:]) if len(labels) >= 2 else domain.lower()
        core, tld = split_domain(domain)
        if tld:
            registered = f"{core}.{tld}"
        if registered not in seen:
            seen[registered] = (name, registered)
    return list(seen.values())


def build_paper_catalog(
    target_brand_count: int = 702,
    rng=None,
) -> BrandCatalog:
    """Build a catalog following the paper's selection procedure.

    The seed brands (the ones named in the paper's exhibits) come first;
    synthetic long-tail brands pad the catalog out to ``target_brand_count``
    so skew measurements (Fig 3, Fig 13) have a realistic tail to work with.
    """
    from repro.brands.alexa import ALEXA_CATEGORIES, synth_brand_name

    catalog = BrandCatalog()
    for name, domain, category, sensitivity in SEED_BRANDS:
        catalog.add(
            Brand(
                name=name,
                domain=domain,
                category=category,
                sensitivity=sensitivity,
                sources=("alexa", "phishtank"),
            )
        )

    index = 0
    categories = list(ALEXA_CATEGORIES)
    sensitivities = ("info", "info", "login", "payment")
    while len(catalog) < target_brand_count:
        name = synth_brand_name(index, rng=rng)
        index += 1
        if name in catalog:
            continue
        category = categories[index % len(categories)]
        sensitivity = sensitivities[index % len(sensitivities)]
        tld = ("com", "com", "net", "org", "co", "io")[index % 6]
        catalog.add(
            Brand(
                name=name,
                domain=f"{name}.{tld}",
                category=category,
                sensitivity=sensitivity,
                sources=("alexa",) if index % 4 else ("alexa", "phishtank"),
            )
        )
    return catalog
