"""Synthetic Alexa ranking service.

The paper uses Alexa twice: to *select* brands (17 categories × top 50) and
to *contextualise* PhishTank URLs (Fig 6: 70% of phishing URLs rank beyond
the top 1M).  This module provides both: category listings for the catalog
builder, and a rank oracle that assigns every domain in the synthetic world a
popularity rank with a Zipf-like head for brand originals and an unranked
tail for throwaway hosting.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# The 17 Alexa top-sites categories (§3.1).
ALEXA_CATEGORIES: Tuple[str, ...] = (
    "arts", "business", "computers", "games", "health", "home", "kids",
    "news", "recreation", "reference", "regional", "science", "shopping",
    "society", "sports", "adult", "world",
)

TOP_SITES_PER_CATEGORY = 50

# Syllable inventory for synthetic long-tail brand names.  Names are
# pronounceable and collision-checked by the catalog builder.
_ONSETS = ("b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r",
           "s", "t", "v", "w", "z", "br", "cl", "dr", "fl", "gr", "pl", "st",
           "tr", "sh", "ch")
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "io", "ou")
_CODAS = ("", "n", "r", "s", "t", "x", "l", "m", "ck", "sh")


def synth_brand_name(index: int, rng=None) -> str:
    """Deterministically derive a pronounceable brand name from an index."""
    digest = hashlib.sha256(f"brand-{index}".encode()).digest()
    syllables = 2 + digest[0] % 2
    parts: List[str] = []
    for i in range(syllables):
        onset = _ONSETS[digest[1 + 3 * i] % len(_ONSETS)]
        nucleus = _NUCLEI[digest[2 + 3 * i] % len(_NUCLEI)]
        coda = _CODAS[digest[3 + 3 * i] % len(_CODAS)] if i == syllables - 1 else ""
        parts.append(onset + nucleus + coda)
    return "".join(parts)


class AlexaRanking:
    """Rank oracle over the synthetic web.

    Domains registered through :meth:`assign_rank` get explicit ranks;
    anything else is "unranked" and reported with a large pseudo-rank beyond
    :attr:`universe_size`, reproducing the paper's ">1M" bucket.
    """

    # Rank buckets used by Fig 6.
    BUCKETS: Tuple[Tuple[int, int], ...] = (
        (1, 1_000),
        (1_001, 10_000),
        (10_001, 100_000),
        (100_001, 1_000_000),
    )

    def __init__(self, universe_size: int = 1_000_000) -> None:
        self.universe_size = universe_size
        self._ranks: Dict[str, int] = {}
        self._next_rank = 1

    def assign_rank(self, domain: str, rank: Optional[int] = None) -> int:
        """Give ``domain`` an explicit rank (next free rank if omitted)."""
        domain = domain.lower()
        if rank is None:
            rank = self._next_rank
        self._ranks[domain] = rank
        self._next_rank = max(self._next_rank, rank + 1)
        return rank

    def rank(self, domain: str) -> int:
        """Rank of ``domain``; unranked domains land beyond the universe."""
        domain = domain.lower()
        explicit = self._ranks.get(domain)
        if explicit is not None:
            return explicit
        # Deterministic pseudo-rank beyond the ranked universe.
        digest = hashlib.sha256(domain.encode()).digest()
        offset = int.from_bytes(digest[:4], "big") % (9 * self.universe_size)
        return self.universe_size + 1 + offset

    def is_ranked(self, domain: str) -> bool:
        """True if the domain has an explicit (top-1M) rank."""
        return domain.lower() in self._ranks

    def bucket(self, domain: str) -> str:
        """Fig 6 bucket label for a domain's rank."""
        r = self.rank(domain)
        for low, high in self.BUCKETS:
            if low <= r <= high:
                return f"({low - 1}-{high}]" if low > 1 else f"(0-{high}]"
        return f"({self.universe_size}+"

    def bucket_labels(self) -> List[str]:
        """All bucket labels in display order."""
        labels = []
        for low, high in self.BUCKETS:
            labels.append(f"({low - 1}-{high}]" if low > 1 else f"(0-{high}]")
        labels.append(f"({self.universe_size}+")
        return labels

    def histogram(self, domains: Iterable[str]) -> Dict[str, int]:
        """Count domains per rank bucket (the Fig 6 series)."""
        counts = {label: 0 for label in self.bucket_labels()}
        for domain in domains:
            counts[self.bucket(domain)] += 1
        return counts


def category_top_sites(
    catalog_names: Sequence[str],
    category: str,
    per_category: int = TOP_SITES_PER_CATEGORY,
) -> List[str]:
    """Deterministic "top sites" listing for one category.

    Used by tests to emulate the paper's 17×50 selection step over an
    existing catalog.
    """
    ranked = sorted(
        catalog_names,
        key=lambda name: hashlib.sha256(f"{category}:{name}".encode()).hexdigest(),
    )
    return ranked[:per_category]
