"""Brand substrate: catalog of impersonation targets and Alexa-style ranks.

§3.1 of the paper selects 702 unique brands by merging the top 50 sites of 17
Alexa categories (850 domains) with the 204 target brands tracked by
PhishTank, collapsing domains that share a registered name.  This package
reproduces that procedure over a synthetic-but-realistic brand universe.
"""

from repro.brands.alexa import AlexaRanking, ALEXA_CATEGORIES
from repro.brands.catalog import (
    Brand,
    BrandCatalog,
    build_paper_catalog,
    merge_brand_domains,
)

__all__ = [
    "ALEXA_CATEGORIES",
    "AlexaRanking",
    "Brand",
    "BrandCatalog",
    "build_paper_catalog",
    "merge_brand_domains",
]
