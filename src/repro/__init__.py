"""SquatPhi reproduction: squatting phishing search & detection (IMC 2018).

Public API tour:

>>> from repro import WorldConfig, build_world, SquatPhi, PipelineConfig
>>> world = build_world(WorldConfig(n_squat_domains=500))   # doctest: +SKIP
>>> result = SquatPhi(world, PipelineConfig()).run()        # doctest: +SKIP
>>> len(result.verified)                                    # doctest: +SKIP

Subsystems (importable individually):

* ``repro.squatting`` -- generation/detection of the five squat types;
* ``repro.dns`` -- zone store, punycode codec, snapshot format;
* ``repro.web`` -- HTML, layout, screenshots, hosting, crawling;
* ``repro.ocr`` / ``repro.vision`` -- OCR engine and image hashing;
* ``repro.features`` / ``repro.ml`` -- feature pipeline and classifiers;
* ``repro.phishworld`` -- the synthetic internet;
* ``repro.analysis`` -- evasion measurement and exhibit producers.
"""

from repro.brands import Brand, BrandCatalog, build_paper_catalog
from repro.core import PipelineConfig, PipelineResult, SquatPhi
from repro.phishworld import SyntheticInternet, WorldConfig, build_world
from repro.phishworld.world import tiny_config
from repro.squatting import SquatMatch, SquatType, SquattingDetector, SquattingGenerator

__version__ = "1.0.0"

__all__ = [
    "Brand",
    "BrandCatalog",
    "PipelineConfig",
    "PipelineResult",
    "SquatMatch",
    "SquatPhi",
    "SquatType",
    "SquattingDetector",
    "SquattingGenerator",
    "SyntheticInternet",
    "WorldConfig",
    "build_paper_catalog",
    "build_world",
    "tiny_config",
    "__version__",
]
