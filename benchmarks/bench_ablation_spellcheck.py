"""Ablation: OCR spell correction on/off (§5.2's correction stage).

The OCR engine's ~3% confusion noise turns "password" into "passwod" etc.;
the spell checker repairs those before embedding.  We measure keyword
survival — how often the canonical credential keywords appear in the OCR
token stream — with the corrector on and off.
"""

from repro.features.extraction import FeatureExtractor
from repro.ocr.engine import OCREngine
from repro.analysis.render import table

from exhibits import print_exhibit

KEYWORDS = ("password", "username", "email", "sign")


def keyword_survival(pages, use_spellcheck, brand_names):
    extractor = FeatureExtractor(
        ocr_engine=OCREngine(error_rate=0.08),   # exaggerated noise
        use_spellcheck=use_spellcheck,
        extra_lexicon=brand_names,
    )
    hits = 0
    opportunities = 0
    for page in pages:
        features = extractor.extract(page.html, page.screenshot_pixels)
        tokens = set(features.ocr_tokens)
        for keyword in KEYWORDS:
            opportunities += 1
            if keyword in tokens:
                hits += 1
    return hits / opportunities


def test_ablation_spellcheck(benchmark, bench_pipeline, bench_result):
    positives = [p for p in bench_result.ground_truth
                 if p.label == 1 and p.screenshot_pixels is not None][:40]
    brand_names = bench_pipeline.world.catalog.names()

    with_correction = benchmark.pedantic(
        keyword_survival, args=(positives, True, brand_names),
        rounds=1, iterations=1,
    )
    without_correction = keyword_survival(positives, False, brand_names)

    print_exhibit(
        "Ablation - OCR keyword survival with/without spell correction",
        table(["configuration", "keyword survival"],
              [["spellcheck ON", f"{100 * with_correction:.1f}%"],
               ["spellcheck OFF", f"{100 * without_correction:.1f}%"]]),
    )

    assert with_correction >= without_correction
    assert with_correction > 0.3
