"""Fig 11: CDF of verified phishing domains per brand.

Paper: the vast majority of targeted brands have fewer than 10 squatting
phishing pages; only a handful (google) reach high counts.
"""

from repro.analysis.figures import verified_phish_cdf
from repro.analysis.render import table

from exhibits import print_exhibit


def test_fig11_verified_cdf(benchmark, bench_result):
    points = benchmark(verified_phish_cdf, bench_result.verified)

    sampled = points[:: max(1, len(points) // 10)]
    print_exhibit(
        "Fig 11 - CDF of verified phishing domains per brand",
        table(["domains per brand", "% of brands ≤"],
              [[x, f"{y:.1f}%"] for x, y in sampled]),
    )

    assert points[-1][1] == 100.0
    # most brands have fewer than 10 verified phishing domains
    below_10 = max((y for x, y in points if x < 10), default=0.0)
    assert below_10 > 80.0
    # per-profile views also work
    web_points = verified_phish_cdf(bench_result.verified, profile="web")
    assert web_points and web_points[-1][1] == 100.0
