"""Fig 4 (table): the five brands with the most squatting domains.

Paper: vice (5.98%), porn (2.76%), bt (2.46%), apple (2.05%), ford (1.85%)
— brands with generic English words or very short names attract the most
squat registrations.
"""

from repro.analysis.figures import top_brands_by_count
from repro.analysis.render import table

from exhibits import print_exhibit

PAPER_HEAD = {"vice", "porn", "bt", "apple", "ford"}


def test_fig04_top_brands(benchmark, bench_squat_matches):
    rows = benchmark(top_brands_by_count, bench_squat_matches, 5)

    print_exhibit(
        "Fig 4 - top 5 brands by squatting-domain count",
        table(["brand", "squat domains", "percent"],
              [[brand, count, f"{pct:.2f}%"] for brand, count, pct in rows]),
    )

    head = {brand for brand, _, _ in rows}
    assert len(head & PAPER_HEAD) >= 3      # the magnet brands dominate
    assert rows[0][0] == "vice"             # vice leads, as in the paper
    assert 3.0 < rows[0][2] < 10.0          # ~6% of all squats
